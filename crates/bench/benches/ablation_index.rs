//! §3.4 ablation: `IndexedLogicalGraph` (per-label datasets) vs plain
//! `LogicalGraph` scans as the query's graph source.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, Criterion};
use gradoop_bench::harness::{dataset, graph_on};
use gradoop_core::{CypherEngine, MatchingConfig};
use gradoop_dataflow::{ExecutionConfig, ExecutionEnvironment};
use gradoop_ldbc::{BenchmarkQuery, LdbcConfig};

fn ablation_index(c: &mut Criterion) {
    let config = LdbcConfig::with_persons(600);
    let ds = dataset(&config);
    let text = BenchmarkQuery::Q1.text(Some(&ds.names.low));
    let env = ExecutionEnvironment::new(ExecutionConfig::with_workers(4));
    let graph = graph_on(&env, &ds.data);
    let indexed = graph.to_indexed();
    let engine = CypherEngine::with_statistics(ds.statistics.clone());
    let params = HashMap::new();

    let mut group = c.benchmark_group("ablation_label_index_q1");
    group.sample_size(10);
    group.bench_function("scan_logical_graph", |b| {
        b.iter(|| {
            engine
                .execute(&graph, &text, &params, MatchingConfig::cypher_default())
                .unwrap()
                .count()
        })
    });
    group.bench_function("indexed_logical_graph", |b| {
        b.iter(|| {
            engine
                .execute(&indexed, &text, &params, MatchingConfig::cypher_default())
                .unwrap()
                .count()
        })
    });
    group.finish();

    // Simulated-cost comparison (what the paper's motivation is about).
    env.reset_metrics();
    let _ = engine
        .execute(&graph, &text, &params, MatchingConfig::cypher_default())
        .unwrap()
        .count();
    let scan_seconds = env.simulated_seconds();
    env.reset_metrics();
    let _ = engine
        .execute(&indexed, &text, &params, MatchingConfig::cypher_default())
        .unwrap()
        .count();
    let indexed_seconds = env.simulated_seconds();
    println!(
        "ablation_index: scan {scan_seconds:.3} simulated s vs indexed {indexed_seconds:.3} simulated s"
    );
}

criterion_group!(benches, ablation_index);
criterion_main!(benches);
