//! §3.2 ablation: the greedy planner with graph statistics vs the same
//! planner with no label/selectivity information (modelling Flink's
//! missing statistics-based operator reordering).

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gradoop_bench::harness::{dataset, graph_on, uniform_statistics};
use gradoop_core::{CypherEngine, MatchingConfig};
use gradoop_dataflow::{ExecutionConfig, ExecutionEnvironment};
use gradoop_ldbc::{BenchmarkQuery, LdbcConfig};

fn ablation_planner(c: &mut Criterion) {
    let config = LdbcConfig::with_persons(300);
    let ds = dataset(&config);
    let env = ExecutionEnvironment::new(ExecutionConfig::with_workers(4));
    let graph = graph_on(&env, &ds.data);
    let informed = CypherEngine::with_statistics(ds.statistics.clone());
    let blind = CypherEngine::with_statistics(uniform_statistics(&ds.statistics));
    let params = HashMap::new();

    let mut group = c.benchmark_group("ablation_planner");
    group.sample_size(10);
    for query in [BenchmarkQuery::Q3, BenchmarkQuery::Q6] {
        let text = query.text(Some(&ds.names.low));
        // Same matches either way — only the operator order differs.
        let with = informed
            .execute(&graph, &text, &params, MatchingConfig::cypher_default())
            .unwrap()
            .count();
        let without = blind
            .execute(&graph, &text, &params, MatchingConfig::cypher_default())
            .unwrap()
            .count();
        assert_eq!(with, without);
        group.bench_with_input(
            BenchmarkId::new("greedy_with_statistics", query.to_string()),
            &text,
            |b, text| {
                b.iter(|| {
                    informed
                        .execute(&graph, text, &params, MatchingConfig::cypher_default())
                        .unwrap()
                        .count()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("no_statistics", query.to_string()),
            &text,
            |b, text| {
                b.iter(|| {
                    blind
                        .execute(&graph, text, &params, MatchingConfig::cypher_default())
                        .unwrap()
                        .count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, ablation_planner);
criterion_main!(benches);
