//! Figure 3 (speedup over workers) as a Criterion bench.
//!
//! Criterion measures wall time per execution; the *simulated* cluster
//! seconds per worker count — the quantity Figure 3 plots — are printed
//! once before the measurements. `cargo run -p gradoop-bench --bin repro
//! -- --fig3` prints the full figure data on the paper-sized datasets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gradoop_bench::harness::{dataset, run_query};
use gradoop_ldbc::{BenchmarkQuery, LdbcConfig};

fn fig3_speedup(c: &mut Criterion) {
    let config = LdbcConfig::with_persons(300);
    let names = dataset(&config).names.clone();
    let text = BenchmarkQuery::Q1.text(Some(&names.low));

    let mut group = c.benchmark_group("fig3_speedup_q1_low");
    group.sample_size(10);
    for workers in [1usize, 4, 16] {
        let m = run_query(&config, workers, &text);
        println!(
            "fig3: Q1 low, {workers:2} workers -> {:.2} simulated s, {} matches",
            m.simulated_seconds, m.matches
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| b.iter(|| run_query(&config, workers, &text).matches),
        );
    }
    group.finish();
}

criterion_group!(benches, fig3_speedup);
criterion_main!(benches);
