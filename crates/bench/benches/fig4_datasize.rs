//! Figure 4 (runtime vs data size at 16 workers) as a Criterion bench:
//! one operational (Q1) and one analytical (Q5) query on two dataset sizes
//! with a 10× ratio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gradoop_bench::harness::{dataset, run_query};
use gradoop_ldbc::{BenchmarkQuery, LdbcConfig};

fn fig4_datasize(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_datasize_16_workers");
    group.sample_size(10);
    for (label, persons) in [("small", 150usize), ("10x", 1500usize)] {
        let config = LdbcConfig::with_persons(persons);
        let names = dataset(&config).names.clone();
        for query in [BenchmarkQuery::Q1, BenchmarkQuery::Q5] {
            let text = query.text(Some(&names.low));
            let m = run_query(&config, 16, &text);
            println!(
                "fig4: {query} on {label} ({persons} persons) -> {:.2} simulated s, {} matches",
                m.simulated_seconds, m.matches
            );
            group.bench_with_input(
                BenchmarkId::new(format!("q{}", query.number()), label),
                &text,
                |b, text| b.iter(|| run_query(&config, 16, text).matches),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig4_datasize);
criterion_main!(benches);
