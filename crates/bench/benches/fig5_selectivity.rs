//! Figure 5 (runtime vs predicate selectivity at 4 workers) as a Criterion
//! bench: Queries 1–3 with high/medium/low-frequency first names.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gradoop_bench::harness::{dataset, run_query};
use gradoop_ldbc::{BenchmarkQuery, LdbcConfig, Selectivity};

fn fig5_selectivity(c: &mut Criterion) {
    let config = LdbcConfig::with_persons(300);
    let names = dataset(&config).names.clone();

    let mut group = c.benchmark_group("fig5_selectivity_4_workers");
    group.sample_size(10);
    for query in [BenchmarkQuery::Q1, BenchmarkQuery::Q2, BenchmarkQuery::Q3] {
        for selectivity in Selectivity::all() {
            let text = query.text(Some(names.name(selectivity)));
            let m = run_query(&config, 4, &text);
            println!(
                "fig5: {query} {selectivity} -> {:.2} simulated s, {} matches",
                m.simulated_seconds, m.matches
            );
            group.bench_with_input(
                BenchmarkId::new(format!("q{}", query.number()), selectivity.to_string()),
                &text,
                |b, text| b.iter(|| run_query(&config, 4, text).matches),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig5_selectivity);
criterion_main!(benches);
