//! §3.3 ablation: the compact byte-array embedding vs a naive boxed row
//! (`Vec` of enum entries + `Vec` of property values) — construction,
//! join-merge, column access and serialized size.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gradoop_core::Embedding;
use gradoop_dataflow::Data;
use gradoop_epgm::PropertyValue;

/// The straightforward alternative the paper's layout is measured against.
#[derive(Clone, Default)]
struct BoxedRow {
    entries: Vec<BoxedEntry>,
    properties: Vec<PropertyValue>,
}

#[derive(Clone)]
enum BoxedEntry {
    Id(u64),
    Path(Vec<u64>),
}

impl BoxedRow {
    fn push_id(&mut self, id: u64) {
        self.entries.push(BoxedEntry::Id(id));
    }
    fn push_path(&mut self, ids: &[u64]) {
        self.entries.push(BoxedEntry::Path(ids.to_vec()));
    }
    fn push_property(&mut self, value: &PropertyValue) {
        self.properties.push(value.clone());
    }
    fn id(&self, column: usize) -> u64 {
        match &self.entries[column] {
            BoxedEntry::Id(id) => *id,
            BoxedEntry::Path(_) => panic!("path"),
        }
    }
    fn path(&self, column: usize) -> Vec<u64> {
        match &self.entries[column] {
            BoxedEntry::Path(ids) => ids.clone(),
            BoxedEntry::Id(_) => panic!("id"),
        }
    }
    fn merge(&self, other: &BoxedRow, skip: &[usize]) -> BoxedRow {
        let mut merged = self.clone();
        for (index, entry) in other.entries.iter().enumerate() {
            if !skip.contains(&index) {
                merged.entries.push(entry.clone());
            }
        }
        merged.properties.extend(other.properties.iter().cloned());
        merged
    }
}

fn build_embedding() -> Embedding {
    let mut e = Embedding::new();
    e.push_id(10);
    e.push_path(&[5, 20, 7]);
    e.push_id(30);
    e.push_property(&PropertyValue::String("Alice".into()));
    e.push_property(&PropertyValue::String("Bob".into()));
    e
}

fn build_boxed() -> BoxedRow {
    let mut e = BoxedRow::default();
    e.push_id(10);
    e.push_path(&[5, 20, 7]);
    e.push_id(30);
    e.push_property(&PropertyValue::String("Alice".into()));
    e.push_property(&PropertyValue::String("Bob".into()));
    e
}

fn micro_embedding(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_embedding");

    group.bench_function("build/byte_array", |b| b.iter(build_embedding));
    group.bench_function("build/boxed_row", |b| b.iter(build_boxed));

    let left = build_embedding();
    let right = build_embedding();
    group.bench_function("merge/byte_array", |b| {
        b.iter(|| black_box(&left).merge(black_box(&right), &[0]))
    });
    let boxed_left = build_boxed();
    let boxed_right = build_boxed();
    group.bench_function("merge/boxed_row", |b| {
        b.iter(|| black_box(&boxed_left).merge(black_box(&boxed_right), &[0]))
    });

    group.bench_function("read_id/byte_array", |b| {
        b.iter(|| black_box(&left).id(black_box(2)))
    });
    group.bench_function("read_id/boxed_row", |b| {
        b.iter(|| black_box(&boxed_left).id(black_box(2)))
    });

    group.bench_function("read_path/byte_array", |b| {
        b.iter(|| black_box(&left).path(black_box(1)))
    });
    group.bench_function("read_path/boxed_row", |b| {
        b.iter(|| black_box(&boxed_left).path(black_box(1)))
    });

    group.bench_function("read_property/byte_array", |b| {
        b.iter(|| black_box(&left).property(black_box(1)))
    });

    group.bench_function("serialized_size/byte_array", |b| {
        b.iter(|| black_box(&left).byte_size())
    });
    group.finish();
}

criterion_group!(benches, micro_embedding);
criterion_main!(benches);
