//! `ExpandEmbeddings` microbenchmarks: variable-length path expansion over
//! chain- and web-shaped edge sets under both edge semantics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gradoop_core::embedding::{Embedding, EmbeddingMetaData, EntryType};
use gradoop_core::operators::{expand_embeddings, EmbeddingSet, ExpandConfig};
use gradoop_core::MatchingConfig;
use gradoop_dataflow::{CostModel, Dataset, ExecutionConfig, ExecutionEnvironment};

fn env() -> ExecutionEnvironment {
    ExecutionEnvironment::new(ExecutionConfig::with_workers(4).cost_model(CostModel::free()))
}

fn starts(env: &ExecutionEnvironment, ids: impl Iterator<Item = u64>) -> EmbeddingSet {
    let mut meta = EmbeddingMetaData::new();
    meta.add_entry("a", EntryType::Vertex);
    let data = env.from_collection(
        ids.map(|id| {
            let mut e = Embedding::new();
            e.push_id(id);
            e
        })
        .collect::<Vec<_>>(),
    );
    EmbeddingSet { data, meta }
}

fn config(lower: usize, upper: usize, matching: MatchingConfig) -> ExpandConfig {
    ExpandConfig {
        source_variable: "a".into(),
        edge_variable: "e".into(),
        target_variable: "b".into(),
        lower,
        upper,
        matching,
    }
}

fn micro_expand(c: &mut Criterion) {
    let env = env();
    let n = 2000u64;
    // A long chain: 0 -> 1 -> 2 -> ...
    let chain: Dataset<(u64, u64, u64)> = env.from_collection(
        (0..n - 1)
            .map(|i| (i, 100_000 + i, i + 1))
            .collect::<Vec<_>>(),
    );
    // A small-world web: every vertex points at 4 pseudo-random others.
    let web: Dataset<(u64, u64, u64)> = env.from_collection(
        (0..n)
            .flat_map(|i| {
                (0..4u64).map(move |k| (i, 200_000 + 4 * i + k, (i * 37 + k * 101 + 1) % n))
            })
            .collect::<Vec<_>>(),
    );

    let mut group = c.benchmark_group("micro_expand");
    group.sample_size(10);
    let input = starts(&env, 0..n);
    for (name, candidates) in [("chain", &chain), ("web", &web)] {
        for (semantics, matching) in [
            ("edge_iso", MatchingConfig::cypher_default()),
            ("homo", MatchingConfig::homomorphism()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_1..3"), semantics),
                candidates,
                |b, candidates| {
                    b.iter(|| {
                        expand_embeddings(&input, candidates, &config(1, 3, matching))
                            .data
                            .count()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, micro_expand);
criterion_main!(benches);
