//! Join-strategy microbenchmarks: repartition-hash vs broadcast vs
//! sort-merge on skewed and uniform key distributions (the shipping/local
//! strategy choice Flink's optimizer makes, Section 3.2).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gradoop_dataflow::{CostModel, ExecutionConfig, ExecutionEnvironment, JoinStrategy};

fn env(workers: usize) -> ExecutionEnvironment {
    ExecutionEnvironment::new(ExecutionConfig::with_workers(workers).cost_model(CostModel::free()))
}

fn micro_join(c: &mut Criterion) {
    let env = env(4);
    let n = 20_000u64;
    let left = env.from_collection(0..n);
    // Uniform keys: every key matches exactly once.
    let right_uniform = env.from_collection((0..n).map(|i| (i, i)).collect::<Vec<_>>());
    // Skewed keys: everything hashes to few keys (hot partitions).
    let right_skewed = env.from_collection((0..n).map(|i| (i % 16, i)).collect::<Vec<_>>());
    // A small build side for broadcasting.
    let right_small = env.from_collection((0..64u64).map(|i| (i, i)).collect::<Vec<_>>());

    let mut group = c.benchmark_group("micro_join");
    group.sample_size(10);
    for strategy in [
        JoinStrategy::RepartitionHash,
        JoinStrategy::RepartitionSortMerge,
    ] {
        group.bench_with_input(
            BenchmarkId::new("uniform", format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    left.join(
                        black_box(&right_uniform),
                        |l| *l,
                        |(k, _)| *k,
                        strategy,
                        |l, _| Some(*l),
                    )
                    .count()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("skewed", format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    left.join(
                        black_box(&right_skewed),
                        |l| *l,
                        |(k, _)| *k,
                        strategy,
                        |l, _| Some(*l),
                    )
                    .count()
                })
            },
        );
    }
    for strategy in [
        JoinStrategy::RepartitionHash,
        JoinStrategy::BroadcastHashSecond,
    ] {
        group.bench_with_input(
            BenchmarkId::new("small_build_side", format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    left.join(
                        black_box(&right_small),
                        |l| *l,
                        |(k, _)| *k,
                        strategy,
                        |l, _| Some(*l),
                    )
                    .count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, micro_join);
criterion_main!(benches);
