//! Front-end microbenchmarks: lexing + parsing the six benchmark queries,
//! query-graph construction and CNF normalization.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gradoop_cypher::{parse, QueryGraph};
use gradoop_ldbc::BenchmarkQuery;

fn micro_parser(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_parser");
    for query in BenchmarkQuery::all() {
        let text = query.text(Some("Jan"));
        group.bench_with_input(
            BenchmarkId::new("parse", query.to_string()),
            &text,
            |b, text| b.iter(|| parse(black_box(text)).unwrap()),
        );
        let ast = parse(&text).unwrap();
        group.bench_with_input(
            BenchmarkId::new("query_graph", query.to_string()),
            &ast,
            |b, ast| b.iter(|| QueryGraph::from_query(black_box(ast)).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, micro_parser);
criterion_main!(benches);
