//! PR 4 ablation: the zero-copy embedding kernels vs their allocating
//! predecessors — merge into a reusable scratch row vs a fresh row per
//! pair, the fused expand append vs clone-then-push, and the fused join
//! probe (merge + morphism check in scratch, clone only survivors).
//!
//! Besides wall-clock numbers, this bench *counts allocations* through a
//! wrapping global allocator and asserts the PR's acceptance criterion
//! before any timing runs: the fused join/merge kernel performs at most
//! one heap allocation per output embedding, and none per rejected pair.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gradoop_core::{Embedding, EmbeddingMetaData, EntryType, MatchingConfig, MorphismCheck};
use gradoop_epgm::PropertyValue;

/// Counts every heap allocation made through the global allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A two-column left row `(vertex, vertex)` with one string property.
fn left_row(a: u64, b: u64) -> Embedding {
    let mut e = Embedding::new();
    e.push_id(a);
    e.push_id(b);
    e.push_property(&PropertyValue::String("Alice".into()));
    e
}

/// A two-column right row sharing the join column 0 with the left.
fn right_row(a: u64, c: u64) -> Embedding {
    let mut e = Embedding::new();
    e.push_id(a);
    e.push_id(c);
    e.push_property(&PropertyValue::Long(1984));
    e
}

fn merged_meta() -> EmbeddingMetaData {
    let mut meta = EmbeddingMetaData::new();
    meta.add_entry("a", EntryType::Vertex);
    meta.add_entry("b", EntryType::Vertex);
    meta.add_entry("c", EntryType::Vertex);
    meta.add_property("a", "name");
    meta.add_property("c", "yob");
    meta
}

/// Asserts the PR's allocation budget: merging into a warmed scratch row
/// and cloning only accepted results costs at most one allocation per
/// output embedding, and rejected pairs cost none.
fn allocation_audit() {
    let check = MorphismCheck::new(&merged_meta(), &MatchingConfig::isomorphism());
    let mut scratch = Embedding::new();
    let mut ids = Vec::new();

    // Warm the scratch buffers so their capacity is settled.
    left_row(1, 2).merge_into(&right_row(1, 3), &[0], &mut scratch);
    assert!(check.check(&scratch, &mut ids));

    const PAIRS: u64 = 1000;
    let mut outputs = Vec::with_capacity(PAIRS as usize);
    let before = allocations();
    for i in 0..PAIRS {
        // Distinct end vertices: every pair passes the isomorphism check.
        let left = black_box(left_row(1, 2));
        let right = black_box(right_row(1, 10 + i));
        let setup = allocations();
        left.merge_into(&right, &[0], &mut scratch);
        if check.check(&scratch, &mut ids) {
            outputs.push(scratch.clone());
        }
        assert!(
            allocations() - setup <= 1,
            "fused join kernel must allocate at most once per output"
        );
    }
    let accepted = allocations() - before;
    drop(outputs);

    let before = allocations();
    for _ in 0..PAIRS {
        // b == c: the isomorphism check rejects, so nothing is cloned.
        let left = black_box(left_row(1, 2));
        let right = black_box(right_row(1, 2));
        let setup = allocations();
        left.merge_into(&right, &[0], &mut scratch);
        if check.check(&scratch, &mut ids) {
            unreachable!("duplicate vertex must be rejected");
        }
        assert_eq!(
            allocations(),
            setup,
            "rejected pairs must not allocate in the fused kernel"
        );
    }
    let rejected = allocations() - before;

    // `accepted` includes building the input rows themselves; the kernel's
    // own share is visible as the difference from the rejected loop.
    println!(
        "allocation audit: {PAIRS} accepted pairs -> {} allocs/pair total, \
         kernel share {} alloc/output; rejected pairs -> kernel share 0 \
         (loop total {} allocs/pair, all input construction)",
        accepted / PAIRS,
        (accepted - rejected) / PAIRS,
        rejected / PAIRS,
    );
    assert_eq!(
        (accepted - rejected) / PAIRS,
        1,
        "exactly one allocation per accepted output embedding"
    );
}

fn micro_zero_copy(c: &mut Criterion) {
    allocation_audit();

    let mut group = c.benchmark_group("micro_zero_copy");

    let left = left_row(1, 2);
    let right = right_row(1, 3);

    // Join-merge: fresh row per pair vs reuse of one scratch row.
    group.bench_function("merge/fresh_alloc", |b| {
        b.iter(|| black_box(&left).merge(black_box(&right), &[0]))
    });
    let mut scratch = Embedding::new();
    group.bench_function("merge/into_scratch", |b| {
        b.iter(|| {
            black_box(&left).merge_into(black_box(&right), &[0], &mut scratch);
            scratch.id(2)
        })
    });

    // The full fused probe: merge + morphism check, clone only survivors.
    let check = MorphismCheck::new(&merged_meta(), &MatchingConfig::isomorphism());
    let mut ids = Vec::new();
    group.bench_function("probe/fused_check_clone", |b| {
        b.iter(|| {
            black_box(&left).merge_into(black_box(&right), &[0], &mut scratch);
            check.check(&scratch, &mut ids).then(|| scratch.clone())
        })
    });

    // Variable-length expand: clone + push vs the single-allocation append.
    let via = [100u64, 7, 101];
    group.bench_function("expand/clone_then_push", |b| {
        b.iter(|| {
            let mut extended = black_box(&left).clone();
            extended.push_path(black_box(&via));
            extended.push_id(black_box(9));
            extended
        })
    });
    group.bench_function("expand/fused_append", |b| {
        b.iter(|| black_box(&left).extend_with_path_and_id(black_box(&via), Some(black_box(9))))
    });

    group.finish();
}

criterion_group!(benches, micro_zero_copy);
criterion_main!(benches);
