//! Table 3 (intermediate result sizes) as a Criterion bench: the four
//! incremental patterns, measured with the low-selectivity first name.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gradoop_bench::harness::{dataset, run_query};
use gradoop_ldbc::{table3_patterns, LdbcConfig};

fn table3_intermediate(c: &mut Criterion) {
    let config = LdbcConfig::with_persons(300);
    let names = dataset(&config).names.clone();

    let mut group = c.benchmark_group("table3_patterns_low_selectivity");
    group.sample_size(10);
    for (index, (pattern, text)) in table3_patterns(&names.low).into_iter().enumerate() {
        let m = run_query(&config, 4, &text);
        println!("table3: {pattern} -> {} rows", m.matches);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("pattern{}", index + 1)),
            &text,
            |b, text| b.iter(|| run_query(&config, 4, text).matches),
        );
    }
    group.finish();
}

criterion_group!(benches, table3_intermediate);
criterion_main!(benches);
