//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```sh
//! cargo run --release -p gradoop-bench --bin repro            # everything
//! cargo run --release -p gradoop-bench --bin repro -- --fig3  # one artifact
//! cargo run --release -p gradoop-bench --bin repro -- --quick # small datasets
//! cargo run --release -p gradoop-bench --bin repro -- --smoke # CI smoke run
//! ```
//!
//! Runtimes are **simulated cluster seconds** (per-worker makespans with
//! network and spill costs, see `gradoop-dataflow`), which is what
//! reproduces the paper's scaling behaviour; absolute numbers differ from
//! the paper because the datasets are rescaled ~1000× (see DESIGN.md).

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use gradoop_bench::figure1::{figure1_graph, FIGURE1_QUERIES};
use gradoop_bench::gate::{compare, BenchReport, Direction};
use gradoop_bench::harness::{self, Measurement, ScaleFactor};
use gradoop_bench::report::{bytes, seconds, speedup, Table};
use gradoop_core::{
    CypherEngine, Embedding, EmbeddingBatch, EmbeddingMetaData, EntryType, JsonlQueryLog,
    MatchingConfig, MorphismCheck, PlanMode, ProfileNode,
};
use gradoop_dataflow::{
    chrome_trace_json, CollectingSink, CostModel, Dataset, ExecutionConfig, ExecutionEnvironment,
    FailureSchedule, FaultConfig, MetricsRegistry,
};
use gradoop_epgm::{
    properties, Edge, GradoopId, GraphHead, LogicalGraph, Properties, PropertyValue, Vertex,
};
use gradoop_ldbc::{
    generate_graph, table3_patterns, BenchmarkQuery, LdbcConfig, Selectivity, SelectivityNames,
};

/// Counts heap allocations so `--bench-pr4` can report the before/after
/// allocation budget of the join/merge kernels. The single relaxed
/// fetch-add is negligible next to the simulated-cost bookkeeping.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

const WORKER_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// Lazily memoized measurements so `--all` never repeats a run.
struct Memo {
    scale: f64,
    cache: HashMap<(usize, &'static str, Option<Selectivity>, usize), Measurement>,
}

impl Memo {
    fn new(scale: f64) -> Self {
        Memo {
            scale,
            cache: HashMap::new(),
        }
    }

    fn get(
        &mut self,
        query: BenchmarkQuery,
        sf: ScaleFactor,
        selectivity: Option<Selectivity>,
        workers: usize,
    ) -> Measurement {
        let key = (query.number(), sf.label(), selectivity, workers);
        if let Some(found) = self.cache.get(&key) {
            return found.clone();
        }
        let config = sf.config(self.scale);
        let names = harness::dataset(&config).names.clone();
        let text = query.text(selectivity.map(|s| names.name(s)));
        let measurement = harness::run_query(&config, workers, &text);
        self.cache.insert(key, measurement.clone());
        measurement
    }
}

fn fig3(memo: &mut Memo) {
    println!("== Figure 3: speedup over workers ==");
    println!("(operational queries on SF 100 with low selectivity; analytical on SF 10)\n");
    let mut table = Table::new(
        ["series", "1", "2", "4", "8", "16"]
            .iter()
            .map(|s| s.to_string()),
    );
    let series: [(BenchmarkQuery, ScaleFactor, Option<Selectivity>); 6] = [
        (
            BenchmarkQuery::Q1,
            ScaleFactor::Sf100,
            Some(Selectivity::Low),
        ),
        (
            BenchmarkQuery::Q2,
            ScaleFactor::Sf100,
            Some(Selectivity::Low),
        ),
        (
            BenchmarkQuery::Q3,
            ScaleFactor::Sf100,
            Some(Selectivity::Low),
        ),
        (BenchmarkQuery::Q4, ScaleFactor::Sf10, None),
        (BenchmarkQuery::Q5, ScaleFactor::Sf10, None),
        (BenchmarkQuery::Q6, ScaleFactor::Sf10, None),
    ];
    for (query, sf, selectivity) in series {
        let base = memo.get(query, sf, selectivity, 1).simulated_seconds;
        let mut cells = vec![format!(
            "Q{}.{}",
            query.number(),
            sf.label().replace(' ', "")
        )];
        for workers in WORKER_COUNTS {
            let m = memo.get(query, sf, selectivity, workers);
            cells.push(format!(
                "{} {}",
                seconds(m.simulated_seconds),
                speedup(base, m.simulated_seconds)
            ));
        }
        table.row(cells);
    }
    println!("{table}");
}

fn fig4(memo: &mut Memo) {
    println!("== Figure 4: data size increase (16 workers) ==\n");
    let mut table = Table::new(["query", "SF 10 [s]", "SF 100 [s]", "ratio"]);
    for query in BenchmarkQuery::all() {
        let selectivity = query.is_operational().then_some(Selectivity::Low);
        let small = memo.get(query, ScaleFactor::Sf10, selectivity, 16);
        let large = memo.get(query, ScaleFactor::Sf100, selectivity, 16);
        table.row([
            query.to_string(),
            seconds(small.simulated_seconds),
            seconds(large.simulated_seconds),
            format!(
                "{:.1}x",
                large.simulated_seconds / small.simulated_seconds.max(1e-9)
            ),
        ]);
    }
    println!("{table}");
}

fn fig5(memo: &mut Memo) {
    println!("== Figure 5: query selectivity (4 workers, SF 10) ==\n");
    let mut table = Table::new(["query", "high [s]", "medium [s]", "low [s]"]);
    for query in [BenchmarkQuery::Q1, BenchmarkQuery::Q2, BenchmarkQuery::Q3] {
        let mut cells = vec![query.to_string()];
        for selectivity in Selectivity::all() {
            let m = memo.get(query, ScaleFactor::Sf10, Some(selectivity), 4);
            cells.push(seconds(m.simulated_seconds));
        }
        table.row(cells);
    }
    println!("{table}");
}

fn table3(scale: f64) {
    println!("== Table 3: intermediate result sizes (SF 10, measured by PROFILE) ==\n");
    let config = ScaleFactor::Sf10.config(scale);
    let dataset = harness::dataset(&config);
    let names = dataset.names.clone();
    let mut table = Table::new(["pattern", "High", "Medium", "Low"]);
    let patterns: Vec<&'static str> = table3_patterns("x")
        .into_iter()
        .map(|(name, _)| name)
        .collect();
    let mut low_profiles = Vec::new();
    for pattern in &patterns {
        let mut cells = vec![pattern.to_string()];
        for selectivity in Selectivity::all() {
            let name = names.name(selectivity).to_string();
            let text = table3_patterns(&name)
                .into_iter()
                .find(|(p, _)| p == pattern)
                .map(|(_, text)| text)
                .expect("pattern exists");
            let profile = harness::profile_query(&config, 4, &text);
            cells.push(format!(
                "{} ({})",
                profile.matches,
                profile.root.intermediate_rows()
            ));
            if selectivity == Selectivity::Low {
                low_profiles.push((pattern.to_string(), profile));
            }
        }
        table.row(cells);
    }
    println!("(cells are matches (total intermediate embeddings), per PROFILE)");
    println!("{table}");

    shuffle_avoidance(&config, &names);
    fault_tolerance(&config, &names);

    println!("-- per-operator intermediate results (low selectivity, from PROFILE)");
    let mut breakdown = Table::new(["pattern", "operator", "rows out", "q-error"]);
    for (pattern, profile) in &low_profiles {
        let mut nodes = Vec::new();
        fn walk<'a>(
            node: &'a gradoop_core::ProfileNode,
            out: &mut Vec<&'a gradoop_core::ProfileNode>,
        ) {
            out.push(node);
            for child in &node.children {
                walk(child, out);
            }
        }
        walk(&profile.root, &mut nodes);
        for (index, node) in nodes.iter().enumerate() {
            breakdown.row([
                if index == 0 {
                    pattern.clone()
                } else {
                    String::new()
                },
                node.operator.clone(),
                node.rows_out.to_string(),
                format!("{:.1}", node.estimate_error),
            ]);
        }
    }
    println!("{breakdown}");
}

/// Before/after comparison for the shuffle-avoidance work: the same queries
/// with partition-aware FORWARD elision + loop-invariant candidate caching
/// enabled (default) and disabled (naive always-reshuffle execution).
/// Matches are asserted identical; only costs may differ.
fn shuffle_avoidance(config: &LdbcConfig, names: &SelectivityNames) {
    println!("-- shuffle avoidance: partition-aware vs naive (low selectivity, 4 workers)");
    let mut comparisons: Vec<(String, String)> = table3_patterns(&names.low)
        .into_iter()
        .skip(2) // the single-scan and one-join patterns barely shuffle
        .map(|(name, text)| (name.to_string(), text))
        .collect();
    // Q2/Q3 add variable-length expansions, where the loop-invariant
    // candidate index saves one candidate shuffle per superstep.
    for query in [BenchmarkQuery::Q2, BenchmarkQuery::Q3] {
        comparisons.push((query.to_string(), query.text(Some(&names.low))));
    }
    let mut table = Table::new([
        "query",
        "aware [s]",
        "naive [s]",
        "speedup",
        "shuffled aware",
        "shuffled naive",
    ]);
    for (label, text) in comparisons {
        let aware = harness::run_query_with(config, 4, &text, true);
        let naive = harness::run_query_with(config, 4, &text, false);
        assert_eq!(
            aware.matches, naive.matches,
            "shuffle avoidance changed the result of {label}"
        );
        table.row([
            label,
            seconds(aware.simulated_seconds),
            seconds(naive.simulated_seconds),
            speedup(naive.simulated_seconds, aware.simulated_seconds),
            bytes(aware.bytes_shuffled),
            bytes(naive.bytes_shuffled),
        ]);
    }
    println!("{table}");
}

/// Fault-tolerance ablation. Three experiments, each asserting its own
/// acceptance criterion:
///
/// 1. every Table-3 pattern (plus the variable-length Q2/Q3) runs once
///    fault-free and once under a non-empty failure schedule (worker crash,
///    lost partition, straggler, superstep crash) — match counts and sorted
///    result rows must be byte-identical, and recovery must actually have
///    happened;
/// 2. `PROFILE` of a faulted query must report the recovery attempts and
///    their simulated cost in its tree;
/// 3. a checkpoint-interval sweep on Q3's deep `replyOf*1..10` expansion
///    shows checkpointed recovery beating restart-from-scratch.
fn fault_tolerance(config: &LdbcConfig, names: &SelectivityNames) {
    println!("-- fault tolerance: injected failures vs fault-free (low selectivity, 4 workers)");
    let mut comparisons: Vec<(String, String)> = table3_patterns(&names.low)
        .into_iter()
        .map(|(name, text)| (name.to_string(), text))
        .collect();
    for query in [BenchmarkQuery::Q2, BenchmarkQuery::Q3] {
        comparisons.push((query.to_string(), query.text(Some(&names.low))));
    }
    let mut table = Table::new([
        "query",
        "matches",
        "identical",
        "retries",
        "t_recovery [s]",
        "faulted [s]",
        "clean [s]",
    ]);
    for (label, text) in comparisons {
        let clean = harness::run_query(config, 4, &text);
        // The crash at stage 0 always fires; the later events fire on
        // queries with enough stages (joins) or supersteps (Q2/Q3).
        let schedule = FailureSchedule::none()
            .crash_at_stage(0, 0)
            .lost_partition_at_stage(2, 1)
            .straggler_at_stage(4, 2, 4.0)
            .crash_at_superstep(2, 3);
        let faulted = harness::run_query_faulted(
            config,
            4,
            &text,
            FaultConfig::new(schedule).checkpoint_interval(2),
        );
        assert_eq!(
            clean.matches, faulted.matches,
            "fault injection changed the match count of {label}"
        );
        assert_eq!(
            clean.result_digest, faulted.result_digest,
            "fault injection changed the result rows of {label}"
        );
        assert!(
            faulted.recovery_attempts > 0,
            "the schedule must actually fire on {label}"
        );
        assert!(
            faulted.simulated_seconds > clean.simulated_seconds,
            "recovery must cost simulated time on {label}"
        );
        table.row([
            label,
            faulted.matches.to_string(),
            "yes".to_string(),
            faulted.recovery_attempts.to_string(),
            seconds(faulted.recovery_seconds),
            seconds(faulted.simulated_seconds),
            seconds(clean.simulated_seconds),
        ]);
    }
    println!("(identical = equal match counts and byte-identical sorted result rows)");
    println!("{table}");

    println!("-- PROFILE under faults (Q1, worker crash at scan + lost partition)");
    let text = BenchmarkQuery::Q1.text(Some(&names.low));
    let profile = harness::profile_query_faulted(
        config,
        4,
        &text,
        FaultConfig::new(
            FailureSchedule::none()
                .crash_at_stage(0, 0)
                .lost_partition_at_stage(2, 1),
        ),
    );
    assert!(
        profile.recovery_attempts > 0,
        "PROFILE must report the injected recovery attempts"
    );
    assert!(
        profile.recovery_seconds > 0.0,
        "PROFILE must report the simulated recovery cost"
    );
    println!("{}", profile.to_text());

    println!("-- checkpoint interval ablation (Q3, crash at superstep 7, 4 workers)");
    // Q3's `replyOf*1..10` expansion runs deep (8+ supersteps even on the
    // smoke dataset, reply chains go to depth 9); a crash late in the
    // iteration makes restart-from-scratch redo six supersteps while a
    // checkpointed run redoes at most the interval.
    let text = BenchmarkQuery::Q3.text(Some(&names.low));
    let clean = harness::run_query(config, 4, &text);
    let schedule = FailureSchedule::none().crash_at_superstep(7, 0);
    let mut table = Table::new([
        "checkpoint interval",
        "matches",
        "restores",
        "restored",
        "ckpt",
        "simulated [s]",
        "vs scratch",
    ]);
    let mut scratch_seconds = f64::NAN;
    let mut checkpointed_restores = 0u64;
    for interval in [0usize, 1, 2, 4] {
        let m = harness::run_query_faulted(
            config,
            4,
            &text,
            FaultConfig::new(schedule.clone()).checkpoint_interval(interval),
        );
        assert_eq!(
            m.matches, clean.matches,
            "checkpoint interval {interval} changed the match count"
        );
        assert_eq!(
            m.result_digest, clean.result_digest,
            "checkpoint interval {interval} changed the result rows"
        );
        assert!(
            m.recovery_attempts > 0,
            "the superstep crash must fire (interval {interval})"
        );
        if interval == 0 {
            // Restart-from-scratch baseline: the crash rolls the iteration
            // back to the initial working set.
            scratch_seconds = m.simulated_seconds;
        } else if m.restored_bytes > 0 {
            // A checkpoint preceded the crash: recovery re-runs fewer
            // supersteps and must beat the scratch restart even after
            // paying for the checkpoint writes.
            checkpointed_restores += 1;
            assert!(
                m.simulated_seconds < scratch_seconds,
                "checkpoint interval {interval} ({}s) must beat restart \
                 from scratch ({scratch_seconds}s)",
                m.simulated_seconds
            );
        }
        table.row([
            if interval == 0 {
                "0 (scratch)".to_string()
            } else {
                interval.to_string()
            },
            m.matches.to_string(),
            m.recovery_attempts.to_string(),
            bytes(m.restored_bytes),
            bytes(m.checkpoint_bytes),
            seconds(m.simulated_seconds),
            if interval == 0 {
                "-".to_string()
            } else {
                speedup(scratch_seconds, m.simulated_seconds)
            },
        ]);
    }
    assert!(
        checkpointed_restores > 0,
        "at least one interval must recover from a real checkpoint"
    );
    println!("{table}");
}

fn profiles(scale: f64) {
    println!("== Profiled operational queries (PROFILE, 4 workers, SF 10, low selectivity) ==\n");
    let config = ScaleFactor::Sf10.config(scale);
    let names = harness::dataset(&config).names.clone();
    for query in [BenchmarkQuery::Q1, BenchmarkQuery::Q2, BenchmarkQuery::Q3] {
        let text = query.text(Some(&names.low));
        let profile = harness::profile_query(&config, 4, &text);
        println!("-- {query}: {}\n{}", query.title(), profile.to_text());
    }
}

fn table4(memo: &mut Memo) {
    println!("== Table 4: query runtimes in seconds (speedup) ==\n");
    let mut table = Table::new(["query", "selectivity", "SF", "1", "2", "4", "8", "16"]);
    for query in [BenchmarkQuery::Q1, BenchmarkQuery::Q2, BenchmarkQuery::Q3] {
        for selectivity in [Selectivity::Low, Selectivity::Medium, Selectivity::High] {
            for sf in ScaleFactor::all() {
                let base = memo.get(query, sf, Some(selectivity), 1).simulated_seconds;
                let mut cells = vec![
                    query.to_string(),
                    selectivity.to_string(),
                    sf.label().to_string(),
                ];
                for workers in WORKER_COUNTS {
                    let m = memo.get(query, sf, Some(selectivity), workers);
                    cells.push(format!(
                        "{} {}",
                        seconds(m.simulated_seconds),
                        speedup(base, m.simulated_seconds)
                    ));
                }
                table.row(cells);
            }
        }
    }
    // Analytical queries: the paper runs the full worker grid on SF 10 and
    // SF 100 only on 16 workers.
    for query in [BenchmarkQuery::Q4, BenchmarkQuery::Q5, BenchmarkQuery::Q6] {
        let base = memo
            .get(query, ScaleFactor::Sf10, None, 1)
            .simulated_seconds;
        let mut cells = vec![query.to_string(), "-".to_string(), "SF 10".to_string()];
        for workers in WORKER_COUNTS {
            let m = memo.get(query, ScaleFactor::Sf10, None, workers);
            cells.push(format!(
                "{} {}",
                seconds(m.simulated_seconds),
                speedup(base, m.simulated_seconds)
            ));
        }
        table.row(cells);
        let m16 = memo.get(query, ScaleFactor::Sf100, None, 16);
        table.row([
            query.to_string(),
            "-".to_string(),
            "SF 100".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            seconds(m16.simulated_seconds),
        ]);
    }
    println!("{table}");
}

fn cardinalities(memo: &mut Memo) {
    println!("== Appendix: result cardinalities ==\n");
    let mut table = Table::new(["query", "SF", "High", "Medium", "Low"]);
    for query in [BenchmarkQuery::Q1, BenchmarkQuery::Q2, BenchmarkQuery::Q3] {
        for sf in ScaleFactor::all() {
            let mut cells = vec![query.to_string(), sf.label().to_string()];
            for selectivity in Selectivity::all() {
                let m = memo.get(query, sf, Some(selectivity), 4);
                cells.push(m.matches.to_string());
            }
            table.row(cells);
        }
    }
    for query in [BenchmarkQuery::Q4, BenchmarkQuery::Q5, BenchmarkQuery::Q6] {
        for sf in ScaleFactor::all() {
            let workers = if sf == ScaleFactor::Sf100 { 16 } else { 4 };
            let m = memo.get(query, sf, None, workers);
            table.row([
                query.to_string(),
                sf.label().to_string(),
                "-".to_string(),
                "-".to_string(),
                m.matches.to_string(),
            ]);
        }
    }
    println!("{table}");
}

fn plans(scale: f64) {
    println!("== Query plans (EXPLAIN: greedy planner with statistics, SF 10) ==\n");
    let config = ScaleFactor::Sf10.config(scale);
    let dataset = harness::dataset(&config);
    let names = dataset.names.clone();
    let engine = CypherEngine::with_statistics(dataset.statistics.clone());
    for query in BenchmarkQuery::all() {
        let text = query.text(Some(&names.low));
        let explain = engine
            .explain(&text)
            .unwrap_or_else(|e| panic!("{query}: {e}"));
        println!("-- {query}: {}\n{}", query.title(), explain.to_text());
    }
}

fn ablations(scale: f64) {
    println!("== Ablations ==\n");
    let config = ScaleFactor::Sf10.config(scale);
    let dataset = harness::dataset(&config);
    let names = dataset.names.clone();

    // §3.2: greedy planner with statistics vs without (Flink's default has
    // no statistics-based reordering).
    println!("-- query planner: with vs without graph statistics (Q3, 4 workers)");
    let text = BenchmarkQuery::Q3.text(Some(&names.low));
    let with_stats = harness::run_query(&config, 4, &text);
    let env = ExecutionEnvironment::new(ExecutionConfig::with_workers(4));
    let graph = harness::graph_on(&env, &dataset.data);
    let blind_engine =
        CypherEngine::with_statistics(harness::uniform_statistics(&dataset.statistics));
    env.reset_metrics();
    let result = blind_engine
        .execute(
            &graph,
            &text,
            &HashMap::new(),
            MatchingConfig::cypher_default(),
        )
        .expect("query runs");
    let blind_matches = result.count();
    let blind_seconds = env.simulated_seconds();
    let mut table = Table::new(["planner", "matches", "simulated [s]"]);
    table.row([
        "greedy + statistics".to_string(),
        with_stats.matches.to_string(),
        seconds(with_stats.simulated_seconds),
    ]);
    table.row([
        "no statistics".to_string(),
        blind_matches.to_string(),
        seconds(blind_seconds),
    ]);
    println!("{table}");

    // §3.4: IndexedLogicalGraph vs full scans (Q1).
    println!("-- graph representation: label index vs full scan (Q1, 4 workers)");
    let text = BenchmarkQuery::Q1.text(Some(&names.low));
    let engine = CypherEngine::with_statistics(dataset.statistics.clone());
    let env = ExecutionEnvironment::new(ExecutionConfig::with_workers(4));
    let graph = harness::graph_on(&env, &dataset.data);
    let indexed = graph.to_indexed();
    env.reset_metrics();
    let scan_matches = engine
        .execute(
            &graph,
            &text,
            &HashMap::new(),
            MatchingConfig::cypher_default(),
        )
        .expect("query runs")
        .count();
    let scan_seconds = env.simulated_seconds();
    env.reset_metrics();
    let index_matches = engine
        .execute(
            &indexed,
            &text,
            &HashMap::new(),
            MatchingConfig::cypher_default(),
        )
        .expect("query runs")
        .count();
    let index_seconds = env.simulated_seconds();
    assert_eq!(scan_matches, index_matches);
    let mut table = Table::new(["representation", "matches", "simulated [s]"]);
    table.row([
        "LogicalGraph (scan)".to_string(),
        scan_matches.to_string(),
        seconds(scan_seconds),
    ]);
    table.row([
        "IndexedLogicalGraph".to_string(),
        index_matches.to_string(),
        seconds(index_seconds),
    ]);
    println!("{table}");
}

/// Emits `BENCH_pr4.json` — the perf-trajectory record for the PR-4
/// morsel-stealing + zero-copy work: before/after allocation counts of the
/// join/merge kernel, the skewed-stage makespan with and without stealing,
/// and simulated makespans of the Figure 1 queries under both schedules.
fn bench_pr4() {
    println!("== BENCH_pr4: work stealing + zero-copy kernels ==\n");

    // -- Allocation budget of the join kernel, counted pair by pair.
    let mut left = Embedding::new();
    left.push_id(1);
    left.push_id(2);
    left.push_property(&PropertyValue::String("Alice".into()));
    let mut right = Embedding::new();
    right.push_id(1);
    right.push_id(3);
    right.push_property(&PropertyValue::Long(1984));
    let mut meta = EmbeddingMetaData::new();
    meta.add_entry("a", EntryType::Vertex);
    meta.add_entry("b", EntryType::Vertex);
    meta.add_entry("c", EntryType::Vertex);
    meta.add_property("a", "name");
    meta.add_property("c", "yob");
    let check = MorphismCheck::new(&meta, &MatchingConfig::isomorphism());

    const PAIRS: u64 = 10_000;
    // Before: the clone-then-append kernel — a fresh merged row and a fresh
    // id staging buffer per probed pair, kept or not.
    let before_start = allocations();
    for _ in 0..PAIRS {
        let merged = left.merge(&right, &[0]);
        let mut ids = Vec::new();
        assert!(check.check(&merged, &mut ids));
        std::hint::black_box(merged);
    }
    let naive_per_pair = (allocations() - before_start) as f64 / PAIRS as f64;

    // After: merge into a reused scratch row, check with a reused staging
    // buffer, clone only survivors — one exact-sized allocation per output.
    let mut scratch = Embedding::new();
    let mut ids = Vec::new();
    left.merge_into(&right, &[0], &mut scratch);
    assert!(check.check(&scratch, &mut ids));
    let after_start = allocations();
    for _ in 0..PAIRS {
        left.merge_into(&right, &[0], &mut scratch);
        assert!(check.check(&scratch, &mut ids));
        std::hint::black_box(scratch.clone());
    }
    let fused_accepted = (allocations() - after_start) as f64 / PAIRS as f64;

    // Rejected pairs (duplicate end vertex) must cost nothing.
    let mut reject = Embedding::new();
    reject.push_id(1);
    reject.push_id(2);
    reject.push_property(&PropertyValue::Long(7));
    let reject_start = allocations();
    for _ in 0..PAIRS {
        left.merge_into(&reject, &[0], &mut scratch);
        assert!(!check.check(&scratch, &mut ids));
    }
    let fused_rejected = (allocations() - reject_start) as f64 / PAIRS as f64;

    let mut table = Table::new(["kernel", "allocs/pair"]);
    table.row([
        "clone-then-append (before)".into(),
        format!("{naive_per_pair:.2}"),
    ]);
    table.row([
        "fused scratch, accepted (after)".into(),
        format!("{fused_accepted:.2}"),
    ]);
    table.row([
        "fused scratch, rejected (after)".into(),
        format!("{fused_rejected:.2}"),
    ]);
    println!("{table}");
    assert!(
        fused_accepted <= 1.0,
        "fused kernel must allocate at most once per output embedding"
    );
    assert_eq!(fused_rejected, 0.0, "rejected pairs must not allocate");

    // -- Skewed-stage makespan: one partition 4x the others (the PR's
    // acceptance criterion), static schedule vs morsel stealing.
    let skew_model = || CostModel {
        cpu_seconds_per_record: 1.0,
        stage_overhead_seconds: 0.0,
        ..CostModel::free()
    };
    let skewed: Vec<Vec<u64>> = vec![
        (0..64).collect(),
        (64..80).collect(),
        (80..96).collect(),
        (96..112).collect(),
    ];
    let run_skew = |stealing: bool| -> (f64, Vec<u64>) {
        let config = ExecutionConfig::with_workers(4).cost_model(skew_model());
        let config = if stealing {
            config.work_stealing(true).morsel_size(4)
        } else {
            config
        };
        let env = ExecutionEnvironment::new(config);
        let mapped = Dataset::from_partitions(env.clone(), skewed.clone()).map(|x| x * 3);
        let seconds = env.simulated_seconds();
        (seconds, mapped.collect())
    };
    let (static_skew_seconds, static_rows) = run_skew(false);
    let (stolen_skew_seconds, stolen_rows) = run_skew(true);
    assert_eq!(
        static_rows, stolen_rows,
        "stealing must not reorder results"
    );
    let improvement = 100.0 * (1.0 - stolen_skew_seconds / static_skew_seconds);
    println!(
        "-- skewed stage (64/16/16/16 records, 4 workers): static {} vs \
         stolen {} ({improvement:.0}% faster)\n",
        seconds(static_skew_seconds),
        seconds(stolen_skew_seconds)
    );
    assert!(
        improvement >= 25.0,
        "stealing must cut the skewed makespan by >= 25%"
    );

    // -- Ablation: stealing on/off x morsel size on the same skewed stage
    // (recorded in EXPERIMENTS.md).
    let mut table = Table::new(["morsel size", "static [s]", "stolen [s]", "improvement"]);
    for morsel_size in [1usize, 4, 16, 32, 64] {
        let env = ExecutionEnvironment::new(
            ExecutionConfig::with_workers(4)
                .cost_model(skew_model())
                .work_stealing(true)
                .morsel_size(morsel_size),
        );
        let mapped = Dataset::from_partitions(env.clone(), skewed.clone()).map(|x| x * 3);
        let stolen = env.simulated_seconds();
        assert_eq!(mapped.collect(), static_rows);
        table.row([
            morsel_size.to_string(),
            seconds(static_skew_seconds),
            seconds(stolen),
            format!("{:.0}%", 100.0 * (1.0 - stolen / static_skew_seconds)),
        ]);
    }
    println!("-- ablation: morsel size on the 64/16/16/16 stage (4 workers)");
    println!("{table}");

    // -- Figure 1 queries: simulated makespan under both schedules, with
    // byte-identical result digests asserted.
    let run_figure1 = |query: &str, stealing: bool| -> (u64, f64, u64, u64) {
        let config = ExecutionConfig::with_workers(4);
        let config = if stealing {
            config.work_stealing(true).morsel_size(1)
        } else {
            config
        };
        let env = ExecutionEnvironment::new(config);
        let graph = figure1_graph(&env);
        let engine = CypherEngine::for_graph(&graph);
        let result = engine
            .execute(
                &graph,
                query,
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .unwrap_or_else(|e| panic!("{query}: {e}"));
        let digest = harness::result_digest(&result);
        let metrics = env.metrics();
        (
            digest,
            env.simulated_seconds(),
            metrics.morsels,
            metrics.stolen_morsels,
        )
    };
    let mut table = Table::new(["query", "static [s]", "stolen [s]", "morsels", "stolen"]);
    let mut query_entries = Vec::new();
    for query in FIGURE1_QUERIES {
        let (static_digest, static_seconds, _, _) = run_figure1(query, false);
        let (stolen_digest, stolen_seconds, morsels, stolen) = run_figure1(query, true);
        assert_eq!(
            static_digest, stolen_digest,
            "stealing changed the result of {query}"
        );
        table.row([
            query.to_string(),
            seconds(static_seconds),
            seconds(stolen_seconds),
            morsels.to_string(),
            stolen.to_string(),
        ]);
        query_entries.push(format!(
            "    {{\"query\": {query:?}, \"static_seconds\": {static_seconds:.6}, \
             \"stolen_seconds\": {stolen_seconds:.6}, \"morsels\": {morsels}, \
             \"stolen_morsels\": {stolen}}}"
        ));
    }
    println!("{table}");

    let json = [
        "{".to_string(),
        "  \"pr\": 4,".to_string(),
        "  \"title\": \"Morsel-driven work stealing + zero-copy embedding kernels\",".to_string(),
        "  \"allocations_per_pair\": {".to_string(),
        format!("    \"clone_then_append_before\": {naive_per_pair:.2},"),
        format!("    \"fused_scratch_accepted\": {fused_accepted:.2},"),
        format!("    \"fused_scratch_rejected\": {fused_rejected:.2}"),
        "  },".to_string(),
        "  \"skewed_stage\": {".to_string(),
        format!("    \"static_seconds\": {static_skew_seconds:.6},"),
        format!("    \"stolen_seconds\": {stolen_skew_seconds:.6},"),
        format!("    \"improvement_percent\": {improvement:.1}"),
        "  },".to_string(),
        "  \"figure1_queries\": [".to_string(),
        query_entries.join(",\n"),
        "  ]".to_string(),
        "}".to_string(),
        String::new(),
    ]
    .join("\n");
    std::fs::write("BENCH_pr4.json", json).expect("write BENCH_pr4.json");
    println!("wrote BENCH_pr4.json\n");
}

/// Emits `BENCH_pr6.json` — the standardized perf-gate report: Figure 1
/// query makespans, operator throughput, kernel/query allocation counts and
/// the morsel-stealing skewed-stage makespan, each with its regression
/// threshold. With `check_baseline`, diffs the fresh report against the
/// committed `BENCH_pr6_baseline.json` and exits non-zero on regression.
/// ORDER BY paging micro-benchmark: a LIMIT-bearing ORDER BY runs as
/// per-partition top-k + k-way merge instead of a full distributed sort.
/// Prints simulated seconds, wall time, and the sort operator EXPLAIN
/// chose, over a single-label scan of `n` vertices.
fn orderby_micro(n: u64) {
    println!("== ORDER BY paging: per-partition top-k + merge vs full sort ({n} rows) ==\n");
    let build = |env: &ExecutionEnvironment| -> LogicalGraph {
        let vertices: Vec<Vertex> = (0..n)
            .map(|i| {
                // Fibonacci-hash the index so the sort sees shuffled keys.
                let p = (i.wrapping_mul(2_654_435_761) % 10_007) as i64;
                Vertex::new(GradoopId(i + 1), "N", properties! {"p" => p})
            })
            .collect();
        LogicalGraph::from_data(
            env,
            GraphHead::new(GradoopId(0), "orderby", Properties::new()),
            vertices,
            Vec::new(),
        )
    };
    let mut table = Table::new(["query", "simulated_s", "wall_ms", "sort operator"]);
    for (name, query) in [
        ("ORDER BY", "MATCH (a:N) RETURN a.p ORDER BY a.p"),
        (
            "ORDER BY LIMIT 10",
            "MATCH (a:N) RETURN a.p ORDER BY a.p LIMIT 10",
        ),
        (
            "ORDER BY SKIP 20 LIMIT 10",
            "MATCH (a:N) RETURN a.p ORDER BY a.p SKIP 20 LIMIT 10",
        ),
    ] {
        let env = ExecutionEnvironment::new(ExecutionConfig::with_workers(4));
        let graph = build(&env);
        let engine = CypherEngine::for_graph(&graph);
        let explain = engine.explain(query).expect("explain").root.to_text();
        let operator = explain
            .lines()
            .map(str::trim)
            .find(|line| line.contains("order_by"))
            .unwrap_or("?")
            .to_string();
        env.reset_metrics();
        let start = std::time::Instant::now();
        let result = engine
            .run(
                &graph,
                query,
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .unwrap_or_else(|e| panic!("{query}: {e}"));
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(&result.rows);
        table.row([
            name.into(),
            format!("{:.6}", env.metrics().simulated_seconds),
            format!("{wall_ms:.1}"),
            operator,
        ]);
    }
    println!("{table}");
}

fn bench_pr6(check_baseline: bool) {
    println!("== BENCH_pr6: telemetry perf-regression gate ==\n");
    let mut report = BenchReport::new();

    // -- Figure 1 query makespans (simulated seconds: fully deterministic,
    // so the gate can be tight).
    let mut table = Table::new(["metric", "value", "gate"]);
    for (index, query) in FIGURE1_QUERIES.iter().enumerate() {
        let env = ExecutionEnvironment::new(ExecutionConfig::with_workers(4));
        let graph = figure1_graph(&env);
        let engine = CypherEngine::for_graph(&graph);
        env.reset_metrics();
        let query_allocs_before = allocations();
        engine
            .execute(
                &graph,
                query,
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .unwrap_or_else(|e| panic!("{query}: {e}"));
        let query_allocs = allocations() - query_allocs_before;
        let metrics = env.metrics();
        let name = format!("figure1.q{}.simulated_seconds", index + 1);
        table.row([
            name.clone(),
            format!("{:.6}", metrics.simulated_seconds),
            "1.25x lower".into(),
        ]);
        report.add(
            name,
            metrics.simulated_seconds,
            1.25,
            Direction::LowerIsBetter,
        );
        // Allocation counts vary with thread scheduling: generous gate.
        let name = format!("figure1.q{}.allocations", index + 1);
        table.row([name.clone(), query_allocs.to_string(), "2.00x lower".into()]);
        report.add(name, query_allocs as f64, 2.0, Direction::LowerIsBetter);
    }

    // -- Operator throughput from PROFILE (rows per simulated second over
    // the whole plan tree; deterministic).
    {
        let env = ExecutionEnvironment::new(ExecutionConfig::with_workers(4));
        let graph = figure1_graph(&env);
        let engine = CypherEngine::for_graph(&graph);
        let profile = engine
            .profile(
                &graph,
                FIGURE1_QUERIES[0],
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .expect("profile runs");
        let rows: u64 = profile
            .root
            .operator_rows()
            .iter()
            .map(|(_, rows)| rows)
            .sum();
        let throughput = rows as f64 / profile.simulated_seconds.max(1e-9);
        table.row([
            "operators.rows_per_simulated_second".into(),
            format!("{throughput:.3}"),
            "1.25x higher".into(),
        ]);
        report.add(
            "operators.rows_per_simulated_second",
            throughput,
            1.25,
            Direction::HigherIsBetter,
        );
    }

    // -- Join-kernel allocation budget (single-threaded and deterministic:
    // the PR-4 fused merge kernel must stay at <= 1 allocation per output).
    {
        let mut left = Embedding::new();
        left.push_id(1);
        left.push_id(2);
        let mut right = Embedding::new();
        right.push_id(1);
        right.push_id(3);
        let mut meta = EmbeddingMetaData::new();
        meta.add_entry("a", EntryType::Vertex);
        meta.add_entry("b", EntryType::Vertex);
        meta.add_entry("c", EntryType::Vertex);
        let check = MorphismCheck::new(&meta, &MatchingConfig::isomorphism());
        let mut scratch = Embedding::new();
        let mut ids = Vec::new();
        left.merge_into(&right, &[0], &mut scratch);
        assert!(check.check(&scratch, &mut ids));
        const PAIRS: u64 = 10_000;
        let start = allocations();
        for _ in 0..PAIRS {
            left.merge_into(&right, &[0], &mut scratch);
            assert!(check.check(&scratch, &mut ids));
            std::hint::black_box(scratch.clone());
        }
        let allocs_per_pair = (allocations() - start) as f64 / PAIRS as f64;
        table.row([
            "kernel.allocs_per_pair".into(),
            format!("{allocs_per_pair:.2}"),
            "1.50x lower".into(),
        ]);
        report.add(
            "kernel.allocs_per_pair",
            allocs_per_pair,
            1.5,
            Direction::LowerIsBetter,
        );
    }

    // -- Morsel stealing on the skewed 64/16/16/16 stage (simulated
    // makespan, deterministic schedule).
    {
        let skewed: Vec<Vec<u64>> = vec![
            (0..64).collect(),
            (64..80).collect(),
            (80..96).collect(),
            (96..112).collect(),
        ];
        let run_skew = |stealing: bool| -> f64 {
            let config = ExecutionConfig::with_workers(4).cost_model(CostModel {
                cpu_seconds_per_record: 1.0,
                stage_overhead_seconds: 0.0,
                ..CostModel::free()
            });
            let config = if stealing {
                config.work_stealing(true).morsel_size(4)
            } else {
                config
            };
            let env = ExecutionEnvironment::new(config);
            let mapped = Dataset::from_partitions(env.clone(), skewed.clone()).map(|x| x * 3);
            std::hint::black_box(mapped.collect());
            env.simulated_seconds()
        };
        let static_seconds = run_skew(false);
        let stolen_seconds = run_skew(true);
        table.row([
            "morsel.skewed_static_seconds".into(),
            format!("{static_seconds:.6}"),
            "1.25x lower".into(),
        ]);
        table.row([
            "morsel.skewed_stolen_seconds".into(),
            format!("{stolen_seconds:.6}"),
            "1.25x lower".into(),
        ]);
        report.add(
            "morsel.skewed_static_seconds",
            static_seconds,
            1.25,
            Direction::LowerIsBetter,
        );
        report.add(
            "morsel.skewed_stolen_seconds",
            stolen_seconds,
            1.25,
            Direction::LowerIsBetter,
        );
    }

    // -- Aggregation-pipeline makespan: WITH aggregation barrier +
    // OPTIONAL MATCH + top-k ORDER BY through the multi-clause executor
    // (simulated seconds, deterministic).
    {
        let env = ExecutionEnvironment::new(ExecutionConfig::with_workers(4));
        let graph = figure1_graph(&env);
        let engine = CypherEngine::for_graph(&graph);
        env.reset_metrics();
        let result = engine
            .run(
                &graph,
                "MATCH (a:Person)-[e:knows]->(b:Person) \
                 WITH a, count(*) AS degree \
                 OPTIONAL MATCH (a)-[s:studyAt]->(u:University) \
                 RETURN a.name, degree ORDER BY degree DESC, a.name LIMIT 3",
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .expect("aggregation pipeline runs");
        assert!(
            !result.rows.is_empty(),
            "aggregation pipeline produced no rows"
        );
        let seconds = env.metrics().simulated_seconds;
        table.row([
            "pipeline.aggregation_simulated_seconds".into(),
            format!("{seconds:.6}"),
            "1.25x lower".into(),
        ]);
        report.add(
            "pipeline.aggregation_simulated_seconds",
            seconds,
            1.25,
            Direction::LowerIsBetter,
        );
    }

    println!("{table}");
    std::fs::write("BENCH_pr6.json", report.to_json()).expect("write BENCH_pr6.json");
    println!("wrote BENCH_pr6.json");
    println!(
        "-- metrics registry snapshot:\n{}\n",
        MetricsRegistry::global().snapshot().to_json()
    );

    if check_baseline {
        let baseline_text = std::fs::read_to_string("BENCH_pr6_baseline.json")
            .expect("read BENCH_pr6_baseline.json (run from the repo root)");
        let baseline = BenchReport::parse(&baseline_text).expect("parse baseline");
        let outcome = compare(&baseline, &report);
        println!("-- gate vs committed baseline:");
        print!("{}", outcome.summary());
        if !outcome.is_pass() {
            println!("bench gate FAILED");
            std::process::exit(1);
        }
        println!("bench gate OK");
    }
}

/// Builds the cyclic-pattern benchmark graph: a directed ring of `n`
/// `Person` vertices where every vertex additionally has forward chords to
/// `i+2` and `i+3` (out-degree 3). The chords close 3·n directed wedges
/// `a → b → c, a → c`, so cyclic queries have real matches while binary
/// plans must materialize every open 2-path first.
fn cyclic_graph(env: &ExecutionEnvironment, n: u64) -> LogicalGraph {
    let vertices: Vec<Vertex> = (0..n)
        .map(|i| Vertex::new(GradoopId(i + 1), "Person", properties! {"vid" => i as i64}))
        .collect();
    let mut edges = Vec::new();
    let mut id = 10_000;
    for i in 0..n {
        for hop in [1, 2, 3] {
            let j = (i + hop) % n;
            edges.push(Edge::new(
                GradoopId(id),
                "knows",
                GradoopId(i + 1),
                GradoopId(j + 1),
                Properties::new(),
            ));
            id += 1;
        }
    }
    LogicalGraph::from_data(
        env,
        GraphHead::new(GradoopId(0), "cyclic", Properties::new()),
        vertices,
        edges,
    )
}

/// The largest intermediate result any plan node below the root
/// materialized — the quantity worst-case-optimal joins exist to bound.
/// The root's own output is the final result, not an intermediate.
fn max_intermediate_rows(root: &ProfileNode) -> u64 {
    fn walk(node: &ProfileNode, out: &mut u64) {
        for child in &node.children {
            *out = (*out).max(child.rows_out);
            walk(child, out);
        }
    }
    let mut out = 0;
    walk(root, &mut out);
    out
}

/// Emits `BENCH_pr8.json` — the cyclic-pattern perf gate: triangle and
/// diamond queries under forced-binary vs forced-WCO planning, reporting
/// each plan's largest materialized intermediate and simulated makespan.
/// The triangle's intermediate-row reduction is hard-asserted at ≥ 2×.
/// With `check_baseline`, diffs against `BENCH_pr8_baseline.json` and
/// exits non-zero on regression.
fn bench_pr8(check_baseline: bool) {
    println!("== BENCH_pr8: worst-case-optimal joins on cyclic patterns ==\n");
    let mut report = BenchReport::new();
    let n = 60u64;
    let mut table = Table::new([
        "pattern",
        "plan",
        "max intermediate rows",
        "simulated_s",
        "matches",
    ]);
    for (pattern, query) in [
        (
            "triangle",
            "MATCH (a:Person)-[e1:knows]->(b:Person), (b)-[e2:knows]->(c:Person), \
             (a)-[e3:knows]->(c) RETURN *",
        ),
        (
            "diamond",
            "MATCH (a:Person)-[e1:knows]->(b:Person), (b)-[e2:knows]->(c:Person), \
             (c)-[e3:knows]->(d:Person), (a)-[e4:knows]->(d), (a)-[e5:knows]->(c) RETURN *",
        ),
    ] {
        let mut measured = Vec::new();
        for (mode_name, mode) in [
            ("binary", PlanMode::ForceBinary),
            ("wco", PlanMode::ForceWco),
        ] {
            let env = ExecutionEnvironment::new(ExecutionConfig::with_workers(4));
            let graph = cyclic_graph(&env, n);
            let engine = CypherEngine::for_graph(&graph).with_plan_mode(mode);
            let explain = engine.explain(query).expect("explain").root.to_text();
            match mode {
                PlanMode::ForceWco => assert!(
                    explain.contains("wco intersect"),
                    "{pattern}: forced-WCO plan has no intersect:\n{explain}"
                ),
                _ => assert!(
                    !explain.contains("wco intersect"),
                    "{pattern}: forced-binary plan contains an intersect:\n{explain}"
                ),
            }
            env.reset_metrics();
            let profile = engine
                .profile(
                    &graph,
                    query,
                    &HashMap::new(),
                    MatchingConfig::cypher_default(),
                )
                .unwrap_or_else(|e| panic!("{query}: {e}"));
            let rows = max_intermediate_rows(&profile.root);
            let seconds = env.metrics().simulated_seconds;
            assert!(profile.matches > 0, "{pattern}: no matches");
            table.row([
                pattern.into(),
                mode_name.into(),
                rows.to_string(),
                format!("{seconds:.6}"),
                profile.matches.to_string(),
            ]);
            report.add(
                format!("wco.{pattern}.{mode_name}.max_intermediate_rows"),
                rows as f64,
                1.25,
                Direction::LowerIsBetter,
            );
            report.add(
                format!("wco.{pattern}.{mode_name}.simulated_seconds"),
                seconds,
                1.25,
                Direction::LowerIsBetter,
            );
            measured.push((rows, profile.matches));
        }
        let (binary, wco) = (measured[0], measured[1]);
        assert_eq!(
            binary.1, wco.1,
            "{pattern}: binary and WCO plans disagree on the match count"
        );
        let reduction = binary.0 as f64 / wco.0 as f64;
        println!(
            "{pattern}: intermediate-row reduction {reduction:.2}x (binary {} → wco {})\n",
            binary.0, wco.0
        );
        report.add(
            format!("wco.{pattern}.intermediate_reduction"),
            reduction,
            1.25,
            Direction::HigherIsBetter,
        );
        if pattern == "triangle" {
            assert!(
                reduction >= 2.0,
                "triangle intermediate-row reduction {reduction:.2}x below the required 2x"
            );
        }
    }
    println!("{table}");
    std::fs::write("BENCH_pr8.json", report.to_json()).expect("write BENCH_pr8.json");
    println!("wrote BENCH_pr8.json");

    if check_baseline {
        let baseline_text = std::fs::read_to_string("BENCH_pr8_baseline.json")
            .expect("read BENCH_pr8_baseline.json (run from the repo root)");
        let baseline = BenchReport::parse(&baseline_text).expect("parse baseline");
        let outcome = compare(&baseline, &report);
        println!("-- gate vs committed baseline:");
        print!("{}", outcome.summary());
        if !outcome.is_pass() {
            println!("bench gate FAILED");
            std::process::exit(1);
        }
        println!("bench gate OK");
    }
}

/// Wall-clock best-of-`reps` timing for `f`: returns the fastest run's
/// seconds plus the (deterministic) result so callers can cross-check the
/// kernels against each other.
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps {
        let start = std::time::Instant::now();
        let value = f();
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(value);
    }
    (best, result.expect("reps >= 1"))
}

/// Emits `BENCH_pr9.json` — the columnar-batch perf gate: rows/sec of the
/// hot operator kernels (predicate filter, hash-join probe, expand) in
/// their row-at-a-time and batched (selection-vector) forms, over the same
/// embeddings. Both forms must agree result-for-result, the batched filter
/// is hard-asserted at ≥ 2× and the batched join probe at ≥ 1.5×. With
/// `check_baseline`, diffs against `BENCH_pr9_baseline.json` and exits
/// non-zero on regression. Wall-clock throughput varies across machines,
/// so absolute rates get generous gates and the row-vs-batched *speedups*
/// (machine-relative) carry the tight ones.
fn bench_pr9(check_baseline: bool) {
    use gradoop_core::embedding::EmbeddingBindings;
    use gradoop_core::operators::{
        expand_batched, hash_probe_batched, CompiledFilter, IdHashTable, NeighborIndex,
    };
    use gradoop_cypher::parse;
    use gradoop_cypher::predicates::cnf::to_cnf;
    use gradoop_cypher::predicates::eval::eval_clause;

    println!("== BENCH_pr9: columnar morsel batches — batched kernels vs row-at-a-time ==\n");
    let mut report = BenchReport::new();

    const ROWS: usize = 200_000;
    const MORSEL: usize = 2_048;
    const REPS: usize = 7;

    // Shared input: (a)-[e]->(b) embeddings with a.name, a.age and b.age
    // properties. a.age is NULL on ~8% of rows so the kernels pay the
    // three-valued cost they pay in production; a.name draws from a small
    // string domain (the dictionary's sweet spot, and the shape of LDBC's
    // firstName/gender filters); b ids collide (the probe side fans out).
    let mut meta = EmbeddingMetaData::new();
    meta.add_entry("a", EntryType::Vertex);
    meta.add_entry("e", EntryType::Edge);
    meta.add_entry("b", EntryType::Vertex);
    meta.add_property("a", "name");
    meta.add_property("a", "age");
    meta.add_property("b", "age");
    let b_universe = ROWS as u64 / 2;
    let rows: Vec<Embedding> = (0..ROWS as u64)
        .map(|i| {
            let mut row = Embedding::new();
            row.push_id(i);
            row.push_id(1_000_000 + i);
            row.push_id(i.wrapping_mul(2_654_435_761) % b_universe);
            row.push_property(&PropertyValue::String(format!("p{}", i % 40)));
            if i % 13 == 0 {
                row.push_property(&PropertyValue::Null);
            } else {
                row.push_property(&PropertyValue::Long(
                    (i.wrapping_mul(2_654_435_761) % 90) as i64,
                ));
            }
            row.push_property(&PropertyValue::Long(((i * 7) % 90) as i64));
            row
        })
        .collect();

    let mut table = Table::new(["operator", "row [Mrows/s]", "batched [Mrows/s]", "speedup"]);
    let mrows = |seconds: f64| ROWS as f64 / seconds / 1e6;
    let add_operator = |report: &mut BenchReport,
                        table: &mut Table,
                        name: &str,
                        row_seconds: f64,
                        batched_seconds: f64| {
        let speedup = row_seconds / batched_seconds;
        table.row([
            name.to_string(),
            format!("{:.2}", mrows(row_seconds)),
            format!("{:.2}", mrows(batched_seconds)),
            format!("{speedup:.2}x"),
        ]);
        report.add(
            format!("pr9.{name}.row_rows_per_second"),
            ROWS as f64 / row_seconds,
            3.0,
            Direction::HigherIsBetter,
        );
        report.add(
            format!("pr9.{name}.batched_rows_per_second"),
            ROWS as f64 / batched_seconds,
            3.0,
            Direction::HigherIsBetter,
        );
        report.add(
            format!("pr9.{name}.speedup"),
            speedup,
            2.0,
            Direction::HigherIsBetter,
        );
        speedup
    };

    // -- Filter: the row path evaluates the CNF tree per row, decoding
    // every touched property; the batched path compiles literal atoms to
    // dictionary truth tables and scans primitive code columns.
    let query = parse(
        "MATCH (a)-[e]->(b) \
         WHERE a.age >= 18 AND a.age < 65 AND a.name <> 'p17' AND b.age <> 30 RETURN *",
    )
    .expect("filter query parses");
    let clauses = to_cnf(&query.where_clause.expect("has WHERE")).clauses;
    let (filter_row_seconds, row_kept) = best_of(REPS, || {
        let mut kept = 0usize;
        for row in &rows {
            let bindings = EmbeddingBindings {
                embedding: row,
                meta: &meta,
            };
            if clauses.iter().all(|clause| eval_clause(clause, &bindings)) {
                kept += 1;
            }
        }
        kept
    });
    let compiled = CompiledFilter::compile(&clauses, &meta);
    let (filter_batched_seconds, batched_kept) = best_of(REPS, || {
        let mut kept = 0usize;
        for chunk in rows.chunks(MORSEL) {
            let mut batch = EmbeddingBatch::new(chunk, &meta);
            compiled.apply(&mut batch);
            kept += batch.selected_count();
        }
        kept
    });
    assert_eq!(row_kept, batched_kept, "filter kernels disagree");
    assert!(
        row_kept > 0 && row_kept < ROWS,
        "filter selectivity must be partial ({row_kept}/{ROWS})"
    );
    let filter_speedup = add_operator(
        &mut report,
        &mut table,
        "filter",
        filter_row_seconds,
        filter_batched_seconds,
    );

    // -- Hash-join probe: the row path extracts the join key per embedding
    // and probes a SipHash `HashMap`; the batched path gathers the id
    // column once and probes the open-addressed multiply-shift table.
    let build_keys: Vec<u64> = (0..b_universe).collect();
    let mut row_index: HashMap<u64, Vec<u32>> = HashMap::new();
    for (index, &key) in build_keys.iter().enumerate() {
        row_index.entry(key).or_default().push(index as u32);
    }
    let mut row_pairs_out: Vec<(u32, u32)> = Vec::new();
    let (join_row_seconds, row_pairs) = best_of(REPS, || {
        row_pairs_out.clear();
        for (probe, row) in rows.iter().enumerate() {
            if let Some(matches) = row_index.get(&row.id(2)) {
                for &build in matches {
                    row_pairs_out.push((probe as u32, build));
                }
            }
        }
        row_pairs_out.len()
    });
    let id_table = IdHashTable::build(&build_keys);
    let mut batched_pairs_out: Vec<(u32, u32)> = Vec::new();
    let (join_batched_seconds, batched_pairs) = best_of(REPS, || {
        let mut pairs = 0usize;
        for chunk in rows.chunks(MORSEL) {
            let mut batch = EmbeddingBatch::new(chunk, &meta);
            batch.ensure_ids(2);
            batched_pairs_out.clear();
            hash_probe_batched(
                &id_table,
                batch.ids(2).expect("b is an id column"),
                batch.selection(),
                &mut batched_pairs_out,
            );
            pairs += batched_pairs_out.len();
        }
        pairs
    });
    assert_eq!(row_pairs, batched_pairs, "join probes disagree");
    assert_eq!(
        row_pairs, ROWS,
        "every probe row has exactly one build match"
    );
    let join_speedup = add_operator(
        &mut report,
        &mut table,
        "join_probe",
        join_row_seconds,
        join_batched_seconds,
    );

    // -- Expand: enumerate (edge, target) candidates per selected source.
    // Row path: per-embedding id decode + `HashMap` adjacency; batched:
    // gathered source column through the `NeighborIndex`.
    let triples: Vec<(u64, u64, u64)> = (0..b_universe)
        .flat_map(|source| {
            (0..3u64).map(move |hop| {
                (
                    source,
                    2_000_000 + source * 3 + hop,
                    (source + hop + 1) % b_universe,
                )
            })
        })
        .collect();
    let mut row_adjacency: HashMap<u64, Vec<(u64, u64)>> = HashMap::new();
    for &(source, edge, target) in &triples {
        row_adjacency
            .entry(source)
            .or_default()
            .push((edge, target));
    }
    let mut row_expand_out: Vec<(u32, u64, u64)> = Vec::new();
    let (expand_row_seconds, row_candidates) = best_of(REPS, || {
        row_expand_out.clear();
        for (probe, row) in rows.iter().enumerate() {
            if let Some(neighbors) = row_adjacency.get(&row.id(2)) {
                for &(edge, target) in neighbors {
                    row_expand_out.push((probe as u32, edge, target));
                }
            }
        }
        row_expand_out.len()
    });
    let neighbor_index = NeighborIndex::build(&triples);
    let mut batched_expand_out: Vec<(u32, u64, u64)> = Vec::new();
    let (expand_batched_seconds, batched_candidates) = best_of(REPS, || {
        let mut candidates = 0usize;
        for chunk in rows.chunks(MORSEL) {
            let mut batch = EmbeddingBatch::new(chunk, &meta);
            batch.ensure_ids(2);
            batched_expand_out.clear();
            expand_batched(
                &neighbor_index,
                batch.ids(2).expect("b is an id column"),
                batch.selection(),
                &mut batched_expand_out,
            );
            candidates += batched_expand_out.len();
        }
        candidates
    });
    assert_eq!(row_candidates, batched_candidates, "expands disagree");
    assert_eq!(row_candidates, ROWS * 3, "out-degree 3 per source");
    add_operator(
        &mut report,
        &mut table,
        "expand",
        expand_row_seconds,
        expand_batched_seconds,
    );

    println!("{table}");
    println!(
        "filter speedup {filter_speedup:.2}x (required >= 2.0x), \
         join probe speedup {join_speedup:.2}x (required >= 1.5x)\n"
    );
    assert!(
        filter_speedup >= 2.0,
        "batched filter speedup {filter_speedup:.2}x below the required 2x"
    );
    assert!(
        join_speedup >= 1.5,
        "batched join probe speedup {join_speedup:.2}x below the required 1.5x"
    );

    std::fs::write("BENCH_pr9.json", report.to_json()).expect("write BENCH_pr9.json");
    println!("wrote BENCH_pr9.json");

    if check_baseline {
        let baseline_text = std::fs::read_to_string("BENCH_pr9_baseline.json")
            .expect("read BENCH_pr9_baseline.json (run from the repo root)");
        let baseline = BenchReport::parse(&baseline_text).expect("parse baseline");
        let outcome = compare(&baseline, &report);
        println!("-- gate vs committed baseline:");
        print!("{}", outcome.summary());
        if !outcome.is_pass() {
            println!("bench gate FAILED");
            std::process::exit(1);
        }
        println!("bench gate OK");
    }
}

/// Emits `BENCH_pr10.json` — the concurrent query-server gate: a mixed
/// Q1–Q6 workload from 8 client threads over one shared immutable
/// snapshot. Deterministic gates: results byte-identical to serial
/// execution, plan-cache hit rate and miss count (misses grow when shape
/// normalization regresses and distinct literals stop sharing plans),
/// deadline classification and overload rejection. Wall-clock gates (QPS,
/// p99 latency) carry generous thresholds — they catch order-of-magnitude
/// regressions, not noise. With `check_baseline`, diffs against
/// `BENCH_pr10_baseline.json` and exits non-zero on regression.
fn bench_pr10(check_baseline: bool) {
    use gradoop_core::{canonical_row, TableResult};
    use gradoop_cypher::Literal;
    use gradoop_server::{GraphSnapshot, QueryServer, ServerConfig, ServerError};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    println!("== BENCH_pr10: concurrent query server — mixed Q1–Q6 workload ==\n");
    let mut report = BenchReport::new();

    const CLIENTS: usize = 8;
    const ROUNDS: usize = 2;
    let names = ["Jan", "Maria", "Chen", "Ali"];

    // Order-insensitive digest: equal digests ⇔ byte-identical result sets.
    fn digest(table: &TableResult) -> String {
        let mut rows: Vec<String> = table.rows.iter().map(|row| canonical_row(row)).collect();
        if !table.ordered {
            rows.sort();
        }
        format!("{}|{}", table.columns.join(","), rows.join(";"))
    }

    let env =
        ExecutionEnvironment::new(ExecutionConfig::with_workers(4).cost_model(CostModel::free()));
    let graph = generate_graph(&env, &LdbcConfig::with_persons(200));
    println!(
        "snapshot: {} vertices, {} edges",
        graph.vertex_count(),
        graph.edge_count()
    );
    let server = QueryServer::new(
        GraphSnapshot::of(graph),
        ServerConfig {
            max_in_flight: CLIENTS,
            admission_timeout: Duration::from_millis(50),
            ..ServerConfig::default()
        },
    );

    // The mixed workload: operational queries (1–3) parameterized across a
    // spread of first names, analytical queries (4–6) as-is. The three
    // operational shapes each collapse to one plan-cache entry regardless
    // of the bound name.
    let mut workload: Vec<(String, HashMap<String, Literal>)> = Vec::new();
    for query in BenchmarkQuery::all() {
        if query.is_operational() {
            for name in names {
                workload.push((
                    query.parameterized_text(),
                    HashMap::from([("firstName".to_string(), Literal::String(name.to_string()))]),
                ));
            }
        } else {
            workload.push((query.text(None), HashMap::new()));
        }
    }

    // Serial reference pass: one session, one query at a time. Also warms
    // the plan cache — every distinct shape misses exactly once here.
    let reference_session = server.session();
    let expected: Vec<String> = workload
        .iter()
        .map(|(text, params)| {
            digest(
                &reference_session
                    .query(text, params)
                    .unwrap_or_else(|e| panic!("serial reference: {e}")),
            )
        })
        .collect();
    let warmup_stats = server.stats().plan_cache;
    println!(
        "serial reference: {} queries, {} distinct plan shapes",
        workload.len(),
        warmup_stats.misses
    );

    // Concurrent phase: every client runs the full workload ROUNDS times,
    // start offsets staggered so clients overlap on different queries.
    let workload = Arc::new(workload);
    let expected = Arc::new(expected);
    let started = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let server = Arc::clone(&server);
            let workload = Arc::clone(&workload);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let session = server.session();
                let mut mismatches = 0usize;
                for round in 0..ROUNDS {
                    for step in 0..workload.len() {
                        let index = (step + client * 2 + round) % workload.len();
                        let (text, params) = &workload[index];
                        let table = session
                            .query(text, params)
                            .unwrap_or_else(|e| panic!("client {client}: {e}"));
                        if digest(&table) != expected[index] {
                            mismatches += 1;
                        }
                    }
                }
                mismatches
            })
        })
        .collect();
    let mismatches: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let concurrent_wall = started.elapsed().as_secs_f64();
    let concurrent_queries = CLIENTS * ROUNDS * workload.len();
    let qps = concurrent_queries as f64 / concurrent_wall;
    let p99 = server.stats().p99_latency_seconds;
    let cache = server.stats().plan_cache;

    // Deadline probe: a zero budget must classify, never return rows.
    let deadline_session = server.session();
    let deadline_classified = matches!(
        deadline_session.query_with_deadline(
            &BenchmarkQuery::Q5.text(None),
            &HashMap::new(),
            Some(Duration::ZERO),
        ),
        Err(ServerError::DeadlineExceeded(_))
    );

    // Overload probe: with every slot reserved, an arrival is rejected
    // after the admission timeout without executing.
    let slots: Vec<_> = (0..CLIENTS)
        .map(|_| {
            server
                .admission()
                .admit(Duration::ZERO)
                .expect("reserve idle slot")
        })
        .collect();
    let overload_rejected = matches!(
        deadline_session.query(&BenchmarkQuery::Q1.text(Some("Jan")), &HashMap::new()),
        Err(ServerError::Overloaded(_))
    );
    drop(slots);

    let mut table = Table::new(["metric", "value"]);
    table.row(["clients".to_string(), CLIENTS.to_string()]);
    table.row([
        "concurrent queries".to_string(),
        concurrent_queries.to_string(),
    ]);
    table.row(["result mismatches".to_string(), mismatches.to_string()]);
    table.row([
        "plan cache hit rate".to_string(),
        format!("{:.3}", cache.hit_rate()),
    ]);
    table.row(["plan cache misses".to_string(), cache.misses.to_string()]);
    table.row(["QPS (wall)".to_string(), format!("{qps:.0}")]);
    table.row(["p99 latency".to_string(), seconds(p99)]);
    table.row([
        "deadline classified".to_string(),
        deadline_classified.to_string(),
    ]);
    table.row([
        "overload rejected".to_string(),
        overload_rejected.to_string(),
    ]);
    println!("{}", table.render());

    assert_eq!(
        mismatches, 0,
        "concurrent results diverged from serial execution"
    );
    assert!(
        cache.hit_rate() > 0.9,
        "plan-cache hit rate {:.3} not above 0.9 on the parameterized re-run",
        cache.hit_rate()
    );
    assert!(deadline_classified, "zero-budget query was not classified");
    assert!(overload_rejected, "full server did not reject the arrival");

    report.add(
        "pr10.results_identical",
        if mismatches == 0 { 1.0 } else { 0.0 },
        1.0,
        Direction::HigherIsBetter,
    );
    report.add(
        "pr10.cache_hit_rate",
        cache.hit_rate(),
        1.02,
        Direction::HigherIsBetter,
    );
    report.add(
        "pr10.cache_misses",
        cache.misses as f64,
        1.0,
        Direction::LowerIsBetter,
    );
    report.add(
        "pr10.deadline_classified",
        if deadline_classified { 1.0 } else { 0.0 },
        1.0,
        Direction::HigherIsBetter,
    );
    report.add(
        "pr10.overload_rejected",
        if overload_rejected { 1.0 } else { 0.0 },
        1.0,
        Direction::HigherIsBetter,
    );
    report.add("pr10.qps", qps, 3.0, Direction::HigherIsBetter);
    report.add(
        "pr10.p99_latency_seconds",
        p99,
        3.0,
        Direction::LowerIsBetter,
    );

    std::fs::write("BENCH_pr10.json", report.to_json()).expect("write BENCH_pr10.json");
    println!("wrote BENCH_pr10.json");

    if check_baseline {
        let baseline_text = std::fs::read_to_string("BENCH_pr10_baseline.json")
            .expect("read BENCH_pr10_baseline.json (run from the repo root)");
        let baseline = BenchReport::parse(&baseline_text).expect("parse baseline");
        let outcome = compare(&baseline, &report);
        println!("-- gate vs committed baseline:");
        print!("{}", outcome.summary());
        if !outcome.is_pass() {
            println!("bench gate FAILED");
            std::process::exit(1);
        }
        println!("bench gate OK");
    }
}

/// Runs the Figure 1 queries with a collecting trace sink and writes the
/// Chrome trace-event timeline (`chrome://tracing` / Perfetto loadable) to
/// `path`. With `query_log_path`, the engine's query log additionally
/// streams one JSONL record per query to that file.
fn trace_out(path: &str, query_log_path: Option<&str>) {
    use std::sync::Arc;
    let env = ExecutionEnvironment::new(ExecutionConfig::with_workers(4));
    let sink = Arc::new(CollectingSink::new());
    env.set_trace_sink(Some(sink.clone()));
    let graph = figure1_graph(&env);
    let mut engine = CypherEngine::for_graph(&graph);
    if let Some(log_path) = query_log_path {
        let log = JsonlQueryLog::create(std::path::Path::new(log_path))
            .unwrap_or_else(|e| panic!("open {log_path}: {e}"));
        engine = engine.with_query_log(Arc::new(log));
    }
    for query in FIGURE1_QUERIES {
        engine
            .execute(
                &graph,
                query,
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .unwrap_or_else(|e| panic!("{query}: {e}"));
    }
    let trace = sink.snapshot();
    std::fs::write(path, chrome_trace_json(&trace)).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!(
        "wrote Chrome trace-event timeline to {path} ({} stages, {} spans)",
        trace.stages.len(),
        trace.spans.len()
    );
    if let Some(log_path) = query_log_path {
        println!(
            "wrote query log to {log_path} ({} queries)",
            FIGURE1_QUERIES.len()
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    if has("--smoke") {
        // CI smoke run: exercise the harness end to end (generation,
        // planning, execution, PROFILE, the shuffle-avoidance ablation) on
        // a tiny dataset and exit. Any panic or result mismatch fails CI.
        let scale = 0.04;
        println!("Smoke run at scale {scale} (tiny datasets, table 3 + figure 5 only).\n");
        let mut memo = Memo::new(scale);
        table3(scale);
        fig5(&mut memo);
        println!("smoke OK");
        return;
    }
    if has("--orderby") {
        // ORDER BY paging micro-benchmark: top-k + merge vs full sort.
        let rows = value_of("--rows")
            .and_then(|n| n.parse().ok())
            .unwrap_or(20_000);
        orderby_micro(rows);
        return;
    }
    if has("--cyclic") {
        // Cyclic-pattern perf gate: worst-case-optimal vs binary plans on
        // triangle and diamond queries, with the committed
        // BENCH_pr8_baseline.json as the regression reference.
        bench_pr8(has("--check-baseline"));
        return;
    }
    if has("--bench-pr9") {
        // Columnar-batch perf gate: batched (selection-vector) operator
        // kernels vs the row-at-a-time path, with the committed
        // BENCH_pr9_baseline.json as the regression reference.
        bench_pr9(has("--check-baseline"));
        return;
    }
    if has("--bench-pr10") {
        // Concurrent query-server gate: mixed Q1–Q6 workload from 8 client
        // threads over one shared snapshot — byte-identical results, plan
        // cache hit rate, deadline/overload classification, QPS and p99
        // latency vs the committed BENCH_pr10_baseline.json.
        bench_pr10(has("--check-baseline"));
        return;
    }
    if has("--conformance") {
        // Differential conformance campaign: random (graph, query) pairs,
        // every engine configuration vs the reference matcher. The seed is
        // pinned via GRADOOP_TEST_SEED (CI) and defaults to the repo-wide
        // test seed; --cases N overrides the budget.
        let cases = args
            .iter()
            .position(|a| a == "--cases")
            .and_then(|i| args.get(i + 1))
            .and_then(|n| n.parse().ok())
            .unwrap_or(1000);
        let seed = gradoop_bench::fuzz::seed_from_env(0xC0FFEE);
        println!("Conformance campaign: {cases} cases, seed {seed}.\n");
        let report = gradoop_bench::fuzz::run_conformance(&gradoop_bench::fuzz::FuzzConfig::new(
            seed, cases,
        ));
        print!("{}", report.summary());
        if !report.is_clean() {
            std::process::exit(1);
        }
        println!("conformance OK");
        return;
    }
    let all = args.is_empty()
        || (!has("--fig3")
            && !has("--fig4")
            && !has("--fig5")
            && !has("--table3")
            && !has("--table4")
            && !has("--cardinalities")
            && !has("--ablations")
            && !has("--plans")
            && !has("--profiles")
            && !has("--bench-pr4")
            && !has("--bench-pr6")
            && !has("--check-baseline")
            && !has("--trace-out"));
    let scale = if has("--quick") { 0.2 } else { 1.0 };
    let mut memo = Memo::new(scale);

    println!(
        "Reproduction harness — datasets rescaled ~1000x vs the paper \
         (scale multiplier {scale}); runtimes are simulated cluster seconds.\n"
    );

    if all || has("--cardinalities") {
        cardinalities(&mut memo);
    }
    if all || has("--table3") {
        table3(scale);
    }
    if all || has("--fig5") {
        fig5(&mut memo);
    }
    if all || has("--fig3") {
        fig3(&mut memo);
    }
    if all || has("--fig4") {
        fig4(&mut memo);
    }
    if all || has("--table4") {
        table4(&mut memo);
    }
    if all || has("--plans") {
        plans(scale);
    }
    if all || has("--profiles") {
        profiles(scale);
    }
    if all || has("--ablations") {
        ablations(scale);
    }
    if all || has("--bench-pr4") {
        bench_pr4();
    }
    if all || has("--bench-pr6") || has("--check-baseline") {
        bench_pr6(has("--check-baseline"));
    }
    if let Some(path) = value_of("--trace-out") {
        trace_out(&path, value_of("--query-log").as_deref());
    }
}
