//! The paper's Figure 1 example graph — a five-vertex social network with
//! `knows`, `studyAt` and `locatedIn` edges — and the example queries run
//! against it by the `BENCH_pr4.json` perf-trajectory emitter.

use gradoop_dataflow::ExecutionEnvironment;
use gradoop_epgm::{properties, Edge, GradoopId, GraphHead, LogicalGraph, Properties, Vertex};

/// The example queries over the Figure 1 graph: a one-hop join, a
/// predicate-filtered join, a variable-length expansion, and a
/// cross-variable predicate.
pub const FIGURE1_QUERIES: [&str; 4] = [
    "MATCH (a:Person)-[e:knows]->(b:Person) RETURN *",
    "MATCH (p:Person)-[s:studyAt]->(u:University) WHERE s.classYear > 2015 RETURN *",
    "MATCH (a:Person)-[e:knows*1..2]->(b:Person) RETURN *",
    "MATCH (p1:Person)-[:knows]->(p2:Person) WHERE p1.gender <> p2.gender RETURN *",
];

/// Builds the Figure 1 community graph on `env`.
pub fn figure1_graph(env: &ExecutionEnvironment) -> LogicalGraph {
    let person = |id: u64, name: &str, gender: &str| {
        Vertex::new(
            GradoopId(id),
            "Person",
            properties! {"name" => name, "gender" => gender},
        )
    };
    let vertices = vec![
        person(10, "Alice", "female"),
        person(20, "Eve", "female"),
        person(30, "Bob", "male"),
        Vertex::new(
            GradoopId(40),
            "University",
            properties! {"name" => "Uni Leipzig"},
        ),
        Vertex::new(GradoopId(50), "City", properties! {"name" => "Leipzig"}),
    ];
    let knows = |id: u64, source: u64, target: u64| {
        Edge::new(
            GradoopId(id),
            "knows",
            GradoopId(source),
            GradoopId(target),
            Properties::new(),
        )
    };
    let edges = vec![
        knows(5, 10, 20),
        knows(6, 20, 10),
        knows(7, 20, 30),
        knows(8, 30, 10),
        Edge::new(
            GradoopId(1),
            "studyAt",
            GradoopId(10),
            GradoopId(40),
            properties! {"classYear" => 2015i64},
        ),
        Edge::new(
            GradoopId(2),
            "studyAt",
            GradoopId(30),
            GradoopId(40),
            properties! {"classYear" => 2016i64},
        ),
        Edge::new(
            GradoopId(3),
            "locatedIn",
            GradoopId(10),
            GradoopId(50),
            Properties::new(),
        ),
        Edge::new(
            GradoopId(4),
            "locatedIn",
            GradoopId(40),
            GradoopId(50),
            Properties::new(),
        ),
    ];
    LogicalGraph::from_data(
        env,
        GraphHead::new(
            GradoopId(100),
            "Community",
            properties! {"area" => "Leipzig"},
        ),
        vertices,
        edges,
    )
}
