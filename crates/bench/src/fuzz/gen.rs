//! Seedable generators for random conformance cases: small EPGM property
//! graphs with adversarial property distributions (missing values, explicit
//! `NULL`s, the same key carrying `Int`/`Long`/`Float`/`Double`/`String`
//! values on different elements) and random Cypher pattern queries drawn
//! from the engine's supported grammar.
//!
//! Everything derives from a single `u64` seed through splitmix64, so a
//! failing case is reproducible from `(seed, case index)` alone.

use gradoop_epgm::{Edge, GradoopId, GraphHead, LogicalGraph, Properties, PropertyValue, Vertex};

use gradoop_dataflow::ExecutionEnvironment;

/// Splitmix64 — the same tiny PRNG the repo's failure schedules use.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..bound` (`bound` ≥ 1).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// `true` with probability `percent`/100.
    pub fn chance(&mut self, percent: usize) -> bool {
        self.below(100) < percent
    }

    /// Uniformly picks one element of `choices`.
    pub fn pick<'a, T>(&mut self, choices: &'a [T]) -> &'a T {
        &choices[self.below(choices.len())]
    }
}

/// Vertex label pool.
pub const VERTEX_LABELS: [&str; 2] = ["A", "B"];
/// Edge label pool.
pub const EDGE_LABELS: [&str; 2] = ["x", "y"];
/// Property key pool (shared by vertices and edges).
pub const PROPERTY_KEYS: [&str; 2] = ["p", "q"];

/// One vertex of a generated graph.
#[derive(Debug, Clone)]
pub struct VertexSpec {
    /// EPGM identifier.
    pub id: u64,
    /// Label (from [`VERTEX_LABELS`]).
    pub label: String,
    /// Properties; an absent key means the property is missing (≠ NULL).
    pub properties: Vec<(String, PropertyValue)>,
}

/// One edge of a generated graph.
#[derive(Debug, Clone)]
pub struct EdgeSpec {
    /// EPGM identifier.
    pub id: u64,
    /// Label (from [`EDGE_LABELS`]).
    pub label: String,
    /// Source vertex id.
    pub source: u64,
    /// Target vertex id.
    pub target: u64,
    /// Properties, same conventions as [`VertexSpec::properties`].
    pub properties: Vec<(String, PropertyValue)>,
}

/// A generated data graph, as plain data so the shrinker can edit it.
#[derive(Debug, Clone)]
pub struct GraphSpec {
    /// The vertices.
    pub vertices: Vec<VertexSpec>,
    /// The edges (endpoints always reference vertex ids in `vertices`).
    pub edges: Vec<EdgeSpec>,
}

impl GraphSpec {
    /// Materializes the spec as a [`LogicalGraph`] on `env`.
    pub fn build(&self, env: &ExecutionEnvironment) -> LogicalGraph {
        let vertices = self
            .vertices
            .iter()
            .map(|v| {
                let mut properties = Properties::new();
                for (key, value) in &v.properties {
                    properties.set(key, value.clone());
                }
                Vertex::new(GradoopId(v.id), v.label.as_str(), properties)
            })
            .collect();
        let edges = self
            .edges
            .iter()
            .map(|e| {
                let mut properties = Properties::new();
                for (key, value) in &e.properties {
                    properties.set(key, value.clone());
                }
                Edge::new(
                    GradoopId(e.id),
                    e.label.as_str(),
                    GradoopId(e.source),
                    GradoopId(e.target),
                    properties,
                )
            })
            .collect();
        LogicalGraph::from_data(
            env,
            GraphHead::new(GradoopId(999_999), "conformance", Properties::new()),
            vertices,
            edges,
        )
    }

    /// Drops vertex at `index` together with its incident edges.
    pub fn without_vertex(&self, index: usize) -> GraphSpec {
        let id = self.vertices[index].id;
        let mut out = self.clone();
        out.vertices.remove(index);
        out.edges.retain(|e| e.source != id && e.target != id);
        out
    }
}

/// Property values drawn for graph elements. The pool is deliberately
/// cross-typed: the same key can hold an `Int`, a `Long` beyond 2^53 (where
/// `f64` rounding bites), a `Float`, a `Double` midway between integers, a
/// string, a boolean or an explicit `NULL`.
fn random_value(rng: &mut Rng) -> PropertyValue {
    match rng.below(10) {
        0 => PropertyValue::Int(rng.below(4) as i32),
        1 => PropertyValue::Long(rng.below(4) as i64),
        2 => PropertyValue::Long((1i64 << 53) + rng.below(3) as i64),
        3 => PropertyValue::Float(rng.below(4) as f32 + 0.5),
        4 => PropertyValue::Double(rng.below(4) as f64),
        5 => PropertyValue::Double(rng.below(4) as f64 + 0.5),
        6 => PropertyValue::String(["a", "b"][rng.below(2)].to_string()),
        7 => PropertyValue::Boolean(rng.below(2) == 0),
        8 => PropertyValue::Null,
        _ => PropertyValue::Int(2015 + rng.below(2) as i32),
    }
}

fn random_properties(rng: &mut Rng) -> Vec<(String, PropertyValue)> {
    let mut out = Vec::new();
    for key in PROPERTY_KEYS {
        // ~1/3 of keys stay missing so predicates hit the absent-property
        // paths, which behave like NULL but are stored differently.
        if rng.chance(67) {
            out.push((key.to_string(), random_value(rng)));
        }
    }
    out
}

/// Generates a random small graph: 2–7 vertices, 0–2·|V| edges.
pub fn random_graph(rng: &mut Rng) -> GraphSpec {
    let vertex_count = 2 + rng.below(6);
    let vertices: Vec<VertexSpec> = (0..vertex_count)
        .map(|i| VertexSpec {
            id: i as u64 + 1,
            label: rng.pick(&VERTEX_LABELS).to_string(),
            properties: random_properties(rng),
        })
        .collect();
    let edge_count = rng.below(2 * vertex_count + 1);
    let edges = (0..edge_count)
        .map(|i| EdgeSpec {
            id: 1000 + i as u64,
            label: rng.pick(&EDGE_LABELS).to_string(),
            source: vertices[rng.below(vertex_count)].id,
            target: vertices[rng.below(vertex_count)].id,
            properties: random_properties(rng),
        })
        .collect();
    GraphSpec { vertices, edges }
}

/// A literal as it appears in generated query text.
#[derive(Debug, Clone, PartialEq)]
pub enum LitSpec {
    /// Integer literal.
    Int(i64),
    /// Float literal (parses to a `Double`-typed value).
    Float(f64),
    /// String literal.
    Str(String),
    /// `TRUE` / `FALSE`.
    Bool(bool),
    /// `NULL`.
    Null,
}

impl LitSpec {
    fn render(&self) -> String {
        match self {
            LitSpec::Int(v) => v.to_string(),
            LitSpec::Float(v) => format!("{v:?}"),
            LitSpec::Str(s) => format!("'{s}'"),
            LitSpec::Bool(true) => "TRUE".to_string(),
            LitSpec::Bool(false) => "FALSE".to_string(),
            LitSpec::Null => "NULL".to_string(),
        }
    }
}

fn random_literal(rng: &mut Rng) -> LitSpec {
    match rng.below(8) {
        0 => LitSpec::Int(rng.below(4) as i64),
        1 => LitSpec::Int(2015 + rng.below(2) as i64),
        2 => LitSpec::Int((1i64 << 53) + rng.below(3) as i64),
        3 => LitSpec::Float(rng.below(4) as f64 + 0.5),
        4 => LitSpec::Float(rng.below(4) as f64),
        5 => LitSpec::Str(["a", "b"][rng.below(2)].to_string()),
        6 => LitSpec::Bool(rng.below(2) == 0),
        _ => LitSpec::Null,
    }
}

/// One node pattern.
#[derive(Debug, Clone)]
pub struct NodePat {
    /// Variable name; `None` renders an anonymous node `(...)`.
    pub variable: Option<String>,
    /// `|`-alternated label predicate (empty = unlabeled).
    pub labels: Vec<String>,
    /// Inline property map.
    pub props: Vec<(String, LitSpec)>,
}

/// Edge direction in the pattern text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// `-[..]->`
    Out,
    /// `<-[..]-`
    In,
    /// `-[..]-`
    Undirected,
}

/// One relationship pattern connecting two nodes of the query.
#[derive(Debug, Clone)]
pub struct EdgePat {
    /// Variable name; `None` renders an anonymous relationship.
    pub variable: Option<String>,
    /// Index into [`QuerySpec::nodes`] of the left-hand node.
    pub from: usize,
    /// Index into [`QuerySpec::nodes`] of the right-hand node.
    pub to: usize,
    /// Direction.
    pub direction: Dir,
    /// `|`-alternated label predicate (empty = untyped).
    pub labels: Vec<String>,
    /// Variable-length range `*lo..hi`; `None` = single hop.
    pub range: Option<(usize, usize)>,
    /// Inline property map.
    pub props: Vec<(String, LitSpec)>,
}

/// One term of a WHERE comparison.
#[derive(Debug, Clone)]
pub enum Term {
    /// `variable.key`
    Prop {
        /// The referenced variable.
        variable: String,
        /// The property key.
        key: String,
    },
    /// A literal.
    Lit(LitSpec),
}

impl Term {
    fn render(&self) -> String {
        match self {
            Term::Prop { variable, key } => format!("{variable}.{key}"),
            Term::Lit(lit) => lit.render(),
        }
    }
}

/// A WHERE expression tree.
#[derive(Debug, Clone)]
pub enum Cond {
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
    /// Negation (the three-valued-logic stress test).
    Not(Box<Cond>),
    /// `left <op> right`.
    Cmp {
        /// Left term.
        left: Term,
        /// Operator text (`=`, `<>`, `<`, `<=`, `>`, `>=`).
        op: &'static str,
        /// Right term.
        right: Term,
    },
    /// `variable.key IS [NOT] NULL`.
    IsNull {
        /// The referenced variable.
        variable: String,
        /// The property key.
        key: String,
        /// `IS NOT NULL` when true.
        negated: bool,
    },
}

impl Cond {
    fn render(&self) -> String {
        match self {
            Cond::And(a, b) => format!("({} AND {})", a.render(), b.render()),
            Cond::Or(a, b) => format!("({} OR {})", a.render(), b.render()),
            Cond::Not(inner) => format!("(NOT {})", inner.render()),
            Cond::Cmp { left, op, right } => {
                format!("{} {op} {}", left.render(), right.render())
            }
            Cond::IsNull {
                variable,
                key,
                negated,
            } => {
                if *negated {
                    format!("{variable}.{key} IS NOT NULL")
                } else {
                    format!("{variable}.{key} IS NULL")
                }
            }
        }
    }

    /// Direct subtrees, for the shrinker (a failing `AND`/`OR`/`NOT` often
    /// reproduces with one of its children alone).
    pub fn children(&self) -> Vec<&Cond> {
        match self {
            Cond::And(a, b) | Cond::Or(a, b) => vec![a, b],
            Cond::Not(inner) => vec![inner],
            _ => Vec::new(),
        }
    }
}

/// One aggregate call in a generated tail projection.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// Function name (`count`, `collect`, `sum`, `min`, `max`, `avg`).
    pub func: &'static str,
    /// Renders a `DISTINCT` argument (generated for `count` only).
    pub distinct: bool,
    /// `variable.key` argument; `None` renders `count(*)`.
    pub arg: Option<(String, String)>,
}

impl AggSpec {
    fn render(&self, alias_index: usize) -> String {
        let arg = match &self.arg {
            None => "*".to_string(),
            Some((variable, key)) => format!("{variable}.{key}"),
        };
        let distinct = if self.distinct { "DISTINCT " } else { "" };
        format!("{}({distinct}{arg}) AS a{alias_index}", self.func)
    }
}

/// A pipeline tail appended after the base `MATCH ... [WHERE ...]` part,
/// replacing the plain `RETURN *` — the grammar productions for the
/// multi-clause read surface (`WITH`, `OPTIONAL MATCH`, aggregation,
/// `ORDER BY`/`SKIP`/`LIMIT`, `UNWIND`).
#[derive(Debug, Clone)]
pub enum TailSpec {
    /// `RETURN [DISTINCT] * [ORDER BY ...] [SKIP n] [LIMIT n]`.
    OrderLimit {
        /// Deduplicate the projected rows.
        distinct: bool,
        /// Sort keys as `(variable, property key, descending)`.
        keys: Vec<(String, String, bool)>,
        /// `SKIP` row count.
        skip: Option<usize>,
        /// `LIMIT` row count.
        limit: Option<usize>,
    },
    /// `RETURN v.k AS g0, ..., agg(...) AS a0, ...` — grouped (or, with no
    /// group keys, global) aggregation.
    Aggregate {
        /// Grouping keys as `(variable, property key)`.
        group: Vec<(String, String)>,
        /// Aggregate calls (at least one).
        aggs: Vec<AggSpec>,
    },
    /// `WITH vars MATCH (anchor)-[f0]->(m0) RETURN *` — a projection
    /// barrier feeding a second MATCH stage joined on `anchor`.
    WithMatch {
        /// Variables the WITH carries through (the anchor is first).
        keep: Vec<String>,
        /// The kept node variable the second MATCH expands from.
        anchor: String,
        /// Label constraint on the new relationship.
        edge_label: Option<String>,
        /// Label constraint on the new node.
        node_label: Option<String>,
    },
    /// `OPTIONAL MATCH (anchor)-[o0]->(m0) RETURN *` — left outer join
    /// with NULL padding for anchors without the extension.
    OptionalTail {
        /// The bound node variable the optional pattern hangs off.
        anchor: String,
        /// Direction of the optional relationship.
        direction: Dir,
        /// Label constraint on the optional relationship.
        edge_label: Option<String>,
        /// Label constraint on the optional node.
        node_label: Option<String>,
    },
    /// `UNWIND [items] AS u0 RETURN *` (an empty list produces zero rows;
    /// `NULL` items exercise the NULL-element path).
    Unwind {
        /// The list literal's elements.
        items: Vec<LitSpec>,
    },
}

fn label_text(label: &Option<String>) -> String {
    label.as_ref().map(|l| format!(":{l}")).unwrap_or_default()
}

impl TailSpec {
    fn render(&self) -> String {
        match self {
            TailSpec::OrderLimit {
                distinct,
                keys,
                skip,
                limit,
            } => {
                let mut out = String::from(" RETURN ");
                if *distinct {
                    out.push_str("DISTINCT ");
                }
                out.push('*');
                if !keys.is_empty() {
                    let rendered: Vec<String> = keys
                        .iter()
                        .map(|(variable, key, descending)| {
                            format!("{variable}.{key}{}", if *descending { " DESC" } else { "" })
                        })
                        .collect();
                    out.push_str(&format!(" ORDER BY {}", rendered.join(", ")));
                }
                if let Some(skip) = skip {
                    out.push_str(&format!(" SKIP {skip}"));
                }
                if let Some(limit) = limit {
                    out.push_str(&format!(" LIMIT {limit}"));
                }
                out
            }
            TailSpec::Aggregate { group, aggs } => {
                let mut items: Vec<String> = group
                    .iter()
                    .enumerate()
                    .map(|(i, (variable, key))| format!("{variable}.{key} AS g{i}"))
                    .collect();
                items.extend(aggs.iter().enumerate().map(|(i, agg)| agg.render(i)));
                format!(" RETURN {}", items.join(", "))
            }
            TailSpec::WithMatch {
                keep,
                anchor,
                edge_label,
                node_label,
            } => format!(
                " WITH {} MATCH ({anchor})-[f0{}]->(m0{}) RETURN *",
                keep.join(", "),
                label_text(edge_label),
                label_text(node_label),
            ),
            TailSpec::OptionalTail {
                anchor,
                direction,
                edge_label,
                node_label,
            } => {
                let edge = label_text(edge_label);
                let node = label_text(node_label);
                let pattern = match direction {
                    Dir::Out => format!("({anchor})-[o0{edge}]->(m0{node})"),
                    Dir::In => format!("({anchor})<-[o0{edge}]-(m0{node})"),
                    Dir::Undirected => format!("({anchor})-[o0{edge}]-(m0{node})"),
                };
                format!(" OPTIONAL MATCH {pattern} RETURN *")
            }
            TailSpec::Unwind { items } => {
                let rendered: Vec<String> = items.iter().map(LitSpec::render).collect();
                format!(" UNWIND [{}] AS u0 RETURN *", rendered.join(", "))
            }
        }
    }
}

/// A generated query, kept structured so the shrinker can edit it.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// The node patterns.
    pub nodes: Vec<NodePat>,
    /// The relationship patterns.
    pub edges: Vec<EdgePat>,
    /// The WHERE tree, if any.
    pub where_tree: Option<Cond>,
    /// The pipeline tail replacing the plain `RETURN *`, if any.
    pub tail: Option<TailSpec>,
}

impl QuerySpec {
    /// Renders the spec as Cypher text: `MATCH ... [WHERE ...]` followed by
    /// the tail's clauses (plain `RETURN *` when there is no tail).
    ///
    /// Each relationship becomes its own comma-separated path pattern; a
    /// node's labels and property map are printed only at its first
    /// occurrence (repeating them is redundant and some dialects reject
    /// it).
    pub fn render(&self) -> String {
        let mut printed = vec![false; self.nodes.len()];
        let node_text = |index: usize, printed: &mut Vec<bool>| -> String {
            let node = &self.nodes[index];
            let first = !printed[index];
            printed[index] = true;
            let mut out = String::from("(");
            if let Some(variable) = &node.variable {
                out.push_str(variable);
            }
            if first {
                if !node.labels.is_empty() {
                    out.push(':');
                    out.push_str(&node.labels.join("|"));
                }
                if !node.props.is_empty() {
                    let entries: Vec<String> = node
                        .props
                        .iter()
                        .map(|(key, lit)| format!("{key}: {}", lit.render()))
                        .collect();
                    out.push_str(&format!(" {{{}}}", entries.join(", ")));
                }
            }
            out.push(')');
            out
        };

        let mut patterns: Vec<String> = Vec::new();
        for edge in &self.edges {
            let left = node_text(edge.from, &mut printed);
            let right = node_text(edge.to, &mut printed);
            let mut rel = String::from("[");
            if let Some(variable) = &edge.variable {
                rel.push_str(variable);
            }
            if !edge.labels.is_empty() {
                rel.push(':');
                rel.push_str(&edge.labels.join("|"));
            }
            if let Some((lower, upper)) = edge.range {
                rel.push_str(&format!("*{lower}..{upper}"));
            }
            if !edge.props.is_empty() {
                let entries: Vec<String> = edge
                    .props
                    .iter()
                    .map(|(key, lit)| format!("{key}: {}", lit.render()))
                    .collect();
                rel.push_str(&format!(" {{{}}}", entries.join(", ")));
            }
            rel.push(']');
            patterns.push(match edge.direction {
                Dir::Out => format!("{left}-{rel}->{right}"),
                Dir::In => format!("{left}<-{rel}-{right}"),
                Dir::Undirected => format!("{left}-{rel}-{right}"),
            });
        }
        for index in 0..self.nodes.len() {
            if !printed[index] {
                patterns.push(node_text(index, &mut printed));
            }
        }

        let mut text = format!("MATCH {}", patterns.join(", "));
        if let Some(tree) = &self.where_tree {
            text.push_str(&format!(" WHERE {}", tree.render()));
        }
        match &self.tail {
            None => text.push_str(" RETURN *"),
            Some(tail) => text.push_str(&tail.render()),
        }
        text
    }

    /// Variables eligible as WHERE operands: named nodes plus named
    /// single-hop edges (variable-length path variables bind paths, not
    /// elements, so property predicates on them are out of scope).
    pub fn predicate_variables(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .nodes
            .iter()
            .filter_map(|n| n.variable.clone())
            .collect();
        out.extend(
            self.edges
                .iter()
                .filter(|e| e.range.is_none())
                .filter_map(|e| e.variable.clone()),
        );
        out
    }

    /// True when some connected component over the plain (single-hop)
    /// relationships has at least as many relationships as nodes — the
    /// pattern closes a cycle, so the planner's worst-case-optimal
    /// `ExpandIntersect` path is in play. Variable-length relationships are
    /// ignored: they are never intersection-eligible.
    pub fn is_cyclic(&self) -> bool {
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let n = self.nodes.len();
        if n == 0 {
            return false;
        }
        let mut parent: Vec<usize> = (0..n).collect();
        for edge in self.edges.iter().filter(|e| e.range.is_none()) {
            let a = find(&mut parent, edge.from);
            let b = find(&mut parent, edge.to);
            parent[a] = b;
        }
        let mut vertex_count = vec![0usize; n];
        let mut edge_count = vec![0usize; n];
        for i in 0..n {
            let root = find(&mut parent, i);
            vertex_count[root] += 1;
        }
        for edge in self.edges.iter().filter(|e| e.range.is_none()) {
            let root = find(&mut parent, edge.from);
            edge_count[root] += 1;
        }
        (0..n).any(|root| edge_count[root] > 0 && edge_count[root] >= vertex_count[root])
    }
}

const CMP_OPS: [&str; 6] = ["=", "<>", "<", "<=", ">", ">="];

fn random_term(rng: &mut Rng, variables: &[String]) -> Term {
    if !variables.is_empty() && rng.chance(60) {
        Term::Prop {
            variable: rng.pick(variables).clone(),
            key: rng.pick(&PROPERTY_KEYS).to_string(),
        }
    } else {
        Term::Lit(random_literal(rng))
    }
}

fn random_cond(rng: &mut Rng, variables: &[String], depth: usize) -> Cond {
    if depth > 0 && rng.chance(45) {
        return match rng.below(3) {
            0 => Cond::And(
                Box::new(random_cond(rng, variables, depth - 1)),
                Box::new(random_cond(rng, variables, depth - 1)),
            ),
            1 => Cond::Or(
                Box::new(random_cond(rng, variables, depth - 1)),
                Box::new(random_cond(rng, variables, depth - 1)),
            ),
            _ => Cond::Not(Box::new(random_cond(rng, variables, depth - 1))),
        };
    }
    if !variables.is_empty() && rng.chance(25) {
        return Cond::IsNull {
            variable: rng.pick(variables).clone(),
            key: rng.pick(&PROPERTY_KEYS).to_string(),
            negated: rng.chance(50),
        };
    }
    Cond::Cmp {
        left: random_term(rng, variables),
        op: CMP_OPS[rng.below(CMP_OPS.len())],
        right: random_term(rng, variables),
    }
}

fn maybe_label(rng: &mut Rng, pool: &[&str]) -> Option<String> {
    rng.chance(60).then(|| rng.pick(pool).to_string())
}

fn random_agg(rng: &mut Rng, prop_vars: &[String]) -> AggSpec {
    if prop_vars.is_empty() || rng.chance(30) {
        return AggSpec {
            func: "count",
            distinct: false,
            arg: None,
        };
    }
    let arg = Some((
        rng.pick(prop_vars).clone(),
        rng.pick(&PROPERTY_KEYS).to_string(),
    ));
    match rng.below(6) {
        0 => AggSpec {
            func: "count",
            distinct: rng.chance(50),
            arg,
        },
        1 => AggSpec {
            func: "collect",
            distinct: false,
            arg,
        },
        2 => AggSpec {
            func: "sum",
            distinct: false,
            arg,
        },
        3 => AggSpec {
            func: "min",
            distinct: false,
            arg,
        },
        4 => AggSpec {
            func: "max",
            distinct: false,
            arg,
        },
        _ => AggSpec {
            func: "avg",
            distinct: false,
            arg,
        },
    }
}

/// Draws a pipeline tail for a query whose named node variables are
/// `node_vars` and whose property-addressable variables are `prop_vars`.
/// Returns `None` when the drawn production has no usable operands (e.g.
/// an all-anonymous pattern cannot anchor a second MATCH).
fn random_tail(rng: &mut Rng, node_vars: &[String], prop_vars: &[String]) -> Option<TailSpec> {
    match rng.below(5) {
        0 => {
            let mut keys = Vec::new();
            if !prop_vars.is_empty() && rng.chance(80) {
                for _ in 0..1 + rng.below(2) {
                    keys.push((
                        rng.pick(prop_vars).clone(),
                        rng.pick(&PROPERTY_KEYS).to_string(),
                        rng.chance(40),
                    ));
                }
            }
            let skip = rng.chance(40).then(|| rng.below(3));
            let limit = rng.chance(60).then(|| rng.below(5));
            if keys.is_empty() && skip.is_none() && limit.is_none() {
                return None;
            }
            Some(TailSpec::OrderLimit {
                distinct: rng.chance(25),
                keys,
                skip,
                limit,
            })
        }
        1 => {
            let group: Vec<(String, String)> = if !prop_vars.is_empty() && rng.chance(70) {
                (0..1 + rng.below(2))
                    .map(|_| {
                        (
                            rng.pick(prop_vars).clone(),
                            rng.pick(&PROPERTY_KEYS).to_string(),
                        )
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let aggs: Vec<AggSpec> = (0..1 + rng.below(2))
                .map(|_| random_agg(rng, prop_vars))
                .collect();
            Some(TailSpec::Aggregate { group, aggs })
        }
        2 => {
            if node_vars.is_empty() {
                return None;
            }
            let anchor = rng.pick(node_vars).clone();
            let mut keep = vec![anchor.clone()];
            for variable in node_vars {
                if *variable != anchor && rng.chance(50) {
                    keep.push(variable.clone());
                }
            }
            Some(TailSpec::WithMatch {
                keep,
                anchor,
                edge_label: maybe_label(rng, &EDGE_LABELS),
                node_label: maybe_label(rng, &VERTEX_LABELS),
            })
        }
        3 => {
            if node_vars.is_empty() {
                return None;
            }
            Some(TailSpec::OptionalTail {
                anchor: rng.pick(node_vars).clone(),
                direction: if rng.chance(25) {
                    Dir::Undirected
                } else if rng.chance(50) {
                    Dir::Out
                } else {
                    Dir::In
                },
                edge_label: maybe_label(rng, &EDGE_LABELS),
                node_label: maybe_label(rng, &VERTEX_LABELS),
            })
        }
        _ => {
            let items: Vec<LitSpec> = (0..rng.below(4)).map(|_| random_literal(rng)).collect();
            Some(TailSpec::Unwind { items })
        }
    }
}

/// Draws the shared WHERE (70%) and pipeline-tail (45%) suffix onto a
/// freshly generated pattern. Both the general and the cyclic productions
/// go through here so cyclic cases stress the same predicate and tail
/// corners as everything else.
fn attach_where_and_tail(rng: &mut Rng, spec: &mut QuerySpec) {
    if rng.chance(70) {
        let variables = spec.predicate_variables();
        spec.where_tree = Some(random_cond(rng, &variables, 2));
    }
    if rng.chance(45) {
        let node_vars: Vec<String> = spec
            .nodes
            .iter()
            .filter_map(|n| n.variable.clone())
            .collect();
        let prop_vars = spec.predicate_variables();
        spec.tail = random_tail(rng, &node_vars, &prop_vars);
    }
}

/// Generates a cycle-closing pattern: a directed triangle, a diamond (a
/// 4-cycle plus a chord), a 4-clique, or an undirected cycle of length 3–4.
///
/// These are the shapes where binary join plans materialize open-path
/// intermediates that the worst-case-optimal `ExpandIntersect` avoids, so
/// the conformance harness must cover them heavily. All nodes are named
/// (the closing relationships re-reference them) and all relationships are
/// plain single hops (variable-length edges are never
/// intersection-eligible). Directed shapes randomize each arrow's
/// orientation — flipping an arrow rotates the cycle but keeps the
/// component cyclic.
pub fn random_cyclic_query(rng: &mut Rng) -> QuerySpec {
    let (node_count, endpoints, undirected): (usize, Vec<(usize, usize)>, bool) = match rng.below(4)
    {
        0 => (3, vec![(0, 1), (1, 2), (2, 0)], false),
        1 => (4, vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)], false),
        2 => (
            4,
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
            false,
        ),
        _ => {
            let len = 3 + rng.below(2);
            (len, (0..len).map(|i| (i, (i + 1) % len)).collect(), true)
        }
    };

    let nodes: Vec<NodePat> = (0..node_count)
        .map(|i| NodePat {
            variable: Some(format!("n{i}")),
            labels: match rng.below(4) {
                0 => Vec::new(),
                1 => vec![VERTEX_LABELS[0].to_string(), VERTEX_LABELS[1].to_string()],
                _ => vec![rng.pick(&VERTEX_LABELS).to_string()],
            },
            // Inline property maps become required keys on the vertex,
            // which disqualifies it as an intersection target; a light
            // sprinkle keeps the cost-based fallback honest without
            // starving the WCO path.
            props: if rng.chance(10) {
                vec![(rng.pick(&PROPERTY_KEYS).to_string(), random_literal(rng))]
            } else {
                Vec::new()
            },
        })
        .collect();

    let edges: Vec<EdgePat> = endpoints
        .iter()
        .enumerate()
        .map(|(i, &(from, to))| EdgePat {
            variable: if rng.chance(20) {
                None
            } else {
                Some(format!("e{i}"))
            },
            from,
            to,
            direction: if undirected {
                Dir::Undirected
            } else if rng.chance(50) {
                Dir::Out
            } else {
                Dir::In
            },
            labels: match rng.below(4) {
                0 => Vec::new(),
                1 => vec![EDGE_LABELS[0].to_string(), EDGE_LABELS[1].to_string()],
                _ => vec![rng.pick(&EDGE_LABELS).to_string()],
            },
            range: None,
            props: Vec::new(),
        })
        .collect();

    let mut spec = QuerySpec {
        nodes,
        edges,
        where_tree: None,
        tail: None,
    };
    attach_where_and_tail(rng, &mut spec);
    spec
}

/// Generates a random query over 1–4 nodes and 0–3 relationships. Roughly
/// 30% of draws divert to [`random_cyclic_query`] so every campaign
/// exercises the worst-case-optimal join path alongside the general
/// grammar.
pub fn random_query(rng: &mut Rng) -> QuerySpec {
    if rng.chance(30) {
        return random_cyclic_query(rng);
    }
    let node_count = 1 + rng.below(4);
    let edge_count = if node_count == 1 {
        0
    } else {
        rng.below(4).min(node_count)
    };

    // Count endpoint uses first: only nodes used at most once may be
    // anonymous (an anonymous node cannot be referenced again).
    let endpoints: Vec<(usize, usize)> = (0..edge_count)
        .map(|_| (rng.below(node_count), rng.below(node_count)))
        .collect();
    let mut uses = vec![0usize; node_count];
    for &(from, to) in &endpoints {
        uses[from] += 1;
        uses[to] += 1;
    }

    let nodes: Vec<NodePat> = (0..node_count)
        .map(|i| NodePat {
            variable: if uses[i] <= 1 && rng.chance(20) {
                None
            } else {
                Some(format!("n{i}"))
            },
            labels: match rng.below(4) {
                0 => Vec::new(),
                1 => vec![VERTEX_LABELS[0].to_string(), VERTEX_LABELS[1].to_string()],
                _ => vec![rng.pick(&VERTEX_LABELS).to_string()],
            },
            props: if rng.chance(20) {
                vec![(rng.pick(&PROPERTY_KEYS).to_string(), random_literal(rng))]
            } else {
                Vec::new()
            },
        })
        .collect();

    let edges: Vec<EdgePat> = endpoints
        .iter()
        .enumerate()
        .map(|(i, &(from, to))| {
            let range = if rng.chance(25) {
                let lower = rng.below(3);
                Some((lower, lower + 1 + rng.below(2)))
            } else {
                None
            };
            EdgePat {
                variable: if rng.chance(20) {
                    None
                } else {
                    Some(format!("e{i}"))
                },
                from,
                to,
                // The reference matcher and engine agree on undirected
                // single hops; variable-length stays directed (engine
                // expansion is directed per hop).
                direction: if range.is_none() && rng.chance(25) {
                    Dir::Undirected
                } else if rng.chance(50) {
                    Dir::Out
                } else {
                    Dir::In
                },
                labels: match rng.below(4) {
                    0 => Vec::new(),
                    1 => vec![EDGE_LABELS[0].to_string(), EDGE_LABELS[1].to_string()],
                    _ => vec![rng.pick(&EDGE_LABELS).to_string()],
                },
                range,
                props: if range.is_none() && rng.chance(15) {
                    vec![(rng.pick(&PROPERTY_KEYS).to_string(), random_literal(rng))]
                } else {
                    Vec::new()
                },
            }
        })
        .collect();

    let mut spec = QuerySpec {
        nodes,
        edges,
        where_tree: None,
        tail: None,
    };
    attach_where_and_tail(rng, &mut spec);
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..20 {
            assert_eq!(random_query(&mut a).render(), random_query(&mut b).render());
            let ga = random_graph(&mut a);
            let gb = random_graph(&mut b);
            assert_eq!(ga.vertices.len(), gb.vertices.len());
            assert_eq!(ga.edges.len(), gb.edges.len());
        }
    }

    #[test]
    fn generated_queries_parse() {
        let mut rng = Rng::new(7);
        for _ in 0..200 {
            let spec = random_query(&mut rng);
            let text = spec.render();
            gradoop_cypher::parse_pipeline(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            if spec.tail.is_none() {
                gradoop_cypher::parse(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            }
        }
    }

    #[test]
    fn cyclic_production_covers_every_shape_and_classifies() {
        let mut rng = Rng::new(99);
        let (mut triangle, mut diamond, mut clique, mut undirected_cycle) = (0, 0, 0, 0);
        for _ in 0..200 {
            let spec = random_cyclic_query(&mut rng);
            assert!(
                spec.is_cyclic(),
                "cyclic production not cyclic: {}",
                spec.render()
            );
            let text = spec.render();
            gradoop_cypher::parse_pipeline(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            let undirected = spec.edges.iter().all(|e| e.direction == Dir::Undirected);
            match (spec.nodes.len(), spec.edges.len()) {
                (3, 3) if undirected => undirected_cycle += 1,
                (4, 4) if undirected => undirected_cycle += 1,
                (3, 3) => triangle += 1,
                (4, 5) => diamond += 1,
                (4, 6) => clique += 1,
                other => panic!("unexpected cyclic shape {other:?}: {text}"),
            }
        }
        assert!(
            triangle > 0 && diamond > 0 && clique > 0 && undirected_cycle > 0,
            "shape coverage: triangle={triangle} diamond={diamond} \
             clique={clique} undirected={undirected_cycle}"
        );
    }

    #[test]
    fn is_cyclic_ignores_open_paths_and_var_length_closures() {
        let mut rng = Rng::new(5);
        // A plain two-hop chain is acyclic.
        let chain = QuerySpec {
            nodes: (0..3)
                .map(|i| NodePat {
                    variable: Some(format!("n{i}")),
                    labels: Vec::new(),
                    props: Vec::new(),
                })
                .collect(),
            edges: [(0usize, 1usize), (1, 2)]
                .iter()
                .enumerate()
                .map(|(i, &(from, to))| EdgePat {
                    variable: Some(format!("e{i}")),
                    from,
                    to,
                    direction: Dir::Out,
                    labels: Vec::new(),
                    range: None,
                    props: Vec::new(),
                })
                .collect(),
            where_tree: None,
            tail: None,
        };
        assert!(!chain.is_cyclic());

        // Closing the chain with a variable-length edge does not make it
        // WCO-cyclic: ranged relationships are never intersected.
        let mut var_closed = chain.clone();
        var_closed.edges.push(EdgePat {
            variable: Some("e2".to_string()),
            from: 2,
            to: 0,
            direction: Dir::Out,
            labels: Vec::new(),
            range: Some((1, 2)),
            props: Vec::new(),
        });
        assert!(!var_closed.is_cyclic());

        // Closing it with a plain edge does.
        let mut closed = chain.clone();
        closed.edges.push(EdgePat {
            variable: Some("e2".to_string()),
            from: 2,
            to: 0,
            direction: Dir::Out,
            labels: Vec::new(),
            range: None,
            props: Vec::new(),
        });
        assert!(closed.is_cyclic());

        // The diverted general production keeps emitting cyclic cases.
        let cyclic_share = (0..300)
            .filter(|_| random_query(&mut rng).is_cyclic())
            .count();
        assert!(
            cyclic_share >= 45,
            "expected ≥15% cyclic cases from random_query, got {cyclic_share}/300"
        );
    }

    #[test]
    fn generator_produces_every_tail_production() {
        let mut rng = Rng::new(11);
        let (mut order, mut agg, mut with, mut opt, mut unwind) = (0, 0, 0, 0, 0);
        for _ in 0..500 {
            match random_query(&mut rng).tail {
                Some(TailSpec::OrderLimit { .. }) => order += 1,
                Some(TailSpec::Aggregate { .. }) => agg += 1,
                Some(TailSpec::WithMatch { .. }) => with += 1,
                Some(TailSpec::OptionalTail { .. }) => opt += 1,
                Some(TailSpec::Unwind { .. }) => unwind += 1,
                None => {}
            }
        }
        assert!(
            order > 0 && agg > 0 && with > 0 && opt > 0 && unwind > 0,
            "tail coverage: order={order} agg={agg} with={with} opt={opt} unwind={unwind}"
        );
    }
}
