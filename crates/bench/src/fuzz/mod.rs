//! Cypher semantics conformance fuzzing.
//!
//! The distributed engine has many configurations that must all agree —
//! planner statistics on/off, partition-aware shuffling on/off, morsel
//! work stealing on/off, plain vs label-indexed graphs, four morphism
//! combinations — and the single-machine reference matcher defines what
//! "agree" means. This module generates random `(graph, query)` pairs from
//! a seed, runs every engine configuration, and compares result sets
//! result-for-result against the reference. On divergence it shrinks the
//! pair to a minimal reproduction and archives it as JSON under
//! `target/conformance/` so CI can attach it to the build artifacts.
//!
//! The generator deliberately stresses the semantic corners where
//! distributed Cypher engines historically diverge from the specification:
//!
//! * three-valued logic — `NULL`/missing properties inside `NOT`, `AND`,
//!   `OR` trees (unknown must never flip to true under negation);
//! * cross-type numeric comparisons (`Int` vs `Long` vs `Float` vs
//!   `Double`, including `Long`s beyond 2^53 where `f64` rounds);
//! * `IS [NOT] NULL` (always two-valued) against both explicit `NULL`s and
//!   absent keys;
//! * variable-length paths, zero-hop ranges, undirected edges, anonymous
//!   variables, label disjunctions and property-to-property comparisons;
//! * multi-clause pipeline tails — `ORDER BY`/`SKIP`/`LIMIT` (with
//!   `DISTINCT`), grouped aggregation, `WITH … MATCH` barriers,
//!   `OPTIONAL MATCH` NULL padding, and `UNWIND` over lists that include
//!   `NULL` elements. Tail cases compare `CypherEngine::run` tables
//!   against `reference_pipeline` (ordered results positionally,
//!   unordered as sorted multisets).
//!
//! Everything is reproducible: `GRADOOP_TEST_SEED` pins the universe, and
//! each archived repro names the seed and case index it came from.

mod gen;
mod runner;
mod shrink;

pub use gen::{
    random_cyclic_query, random_graph, random_query, AggSpec, Cond, Dir, EdgePat, EdgeSpec,
    GraphSpec, LitSpec, NodePat, QuerySpec, Rng, TailSpec, Term, VertexSpec,
};
pub use runner::{
    engine_rows, pipeline_engine_rows, random_case, reference_rows, run_case, still_fails,
    Canonical, CaseOutcome, CaseSpec, EngineConfig, Mismatch, MORPHISMS,
};
pub use shrink::shrink;

use std::path::PathBuf;
use std::time::Instant;

/// Configuration of one fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Seed of the campaign (every case derives from it).
    pub seed: u64,
    /// Number of `(graph, query)` cases to generate.
    pub cases: usize,
    /// Shrink and archive mismatches under `target/conformance/`.
    pub archive: bool,
}

impl FuzzConfig {
    /// A campaign of `cases` cases under `seed`, with archiving on.
    pub fn new(seed: u64, cases: usize) -> Self {
        FuzzConfig {
            seed,
            cases,
            archive: true,
        }
    }
}

/// Per-feature case counts, for the campaign report: how often each
/// semantic corner was exercised.
#[derive(Debug, Clone, Default)]
pub struct FeatureCounts {
    /// Cases with a WHERE clause.
    pub where_clause: usize,
    /// Cases with NOT in the WHERE tree.
    pub negation: usize,
    /// Cases with OR in the WHERE tree.
    pub disjunction: usize,
    /// Cases with `IS [NOT] NULL`.
    pub is_null: usize,
    /// Cases with a variable-length relationship.
    pub var_length: usize,
    /// Cases with an undirected relationship.
    pub undirected: usize,
    /// Cases with an anonymous node or relationship.
    pub anonymous: usize,
    /// Cases with a `NULL` literal in the query text.
    pub null_literal: usize,
    /// Cases whose projection has an `ORDER BY`.
    pub order_by: usize,
    /// Cases with `SKIP` and/or `LIMIT`.
    pub skip_limit: usize,
    /// Cases with a `DISTINCT` projection.
    pub distinct: usize,
    /// Cases with an aggregating projection (`count`, `collect`, ...).
    pub aggregate: usize,
    /// Cases with a `WITH` barrier feeding a second `MATCH`.
    pub with_clause: usize,
    /// Cases with an `OPTIONAL MATCH` stage.
    pub optional_match: usize,
    /// Cases with an `UNWIND` stage.
    pub unwind: usize,
    /// Cases whose pattern closes a cycle over plain relationships — the
    /// shapes where the planner's worst-case-optimal `ExpandIntersect`
    /// competes with binary joins.
    pub cyclic: usize,
}

fn cond_has(tree: &Cond, what: fn(&Cond) -> bool) -> bool {
    what(tree) || tree.children().iter().any(|child| cond_has(child, what))
}

fn cond_mentions_null_literal(tree: &Cond) -> bool {
    cond_has(tree, |c| match c {
        Cond::Cmp { left, right, .. } => {
            matches!(left, Term::Lit(LitSpec::Null)) || matches!(right, Term::Lit(LitSpec::Null))
        }
        _ => false,
    })
}

impl FeatureCounts {
    fn record(&mut self, case: &CaseSpec) {
        let query = &case.query;
        if let Some(tree) = &query.where_tree {
            self.where_clause += 1;
            if cond_has(tree, |c| matches!(c, Cond::Not(_))) {
                self.negation += 1;
            }
            if cond_has(tree, |c| matches!(c, Cond::Or(..))) {
                self.disjunction += 1;
            }
            if cond_has(tree, |c| matches!(c, Cond::IsNull { .. })) {
                self.is_null += 1;
            }
            if cond_mentions_null_literal(tree) {
                self.null_literal += 1;
            }
        }
        if query.edges.iter().any(|e| e.range.is_some()) {
            self.var_length += 1;
        }
        if query.edges.iter().any(|e| e.direction == Dir::Undirected) {
            self.undirected += 1;
        }
        if query.nodes.iter().any(|n| n.variable.is_none())
            || query.edges.iter().any(|e| e.variable.is_none())
        {
            self.anonymous += 1;
        }
        if query.is_cyclic() {
            self.cyclic += 1;
        }
        match &query.tail {
            Some(TailSpec::OrderLimit {
                distinct,
                keys,
                skip,
                limit,
            }) => {
                if !keys.is_empty() {
                    self.order_by += 1;
                }
                if skip.is_some() || limit.is_some() {
                    self.skip_limit += 1;
                }
                if *distinct {
                    self.distinct += 1;
                }
            }
            Some(TailSpec::Aggregate { .. }) => self.aggregate += 1,
            Some(TailSpec::WithMatch { .. }) => self.with_clause += 1,
            Some(TailSpec::OptionalTail { .. }) => self.optional_match += 1,
            Some(TailSpec::Unwind { .. }) => self.unwind += 1,
            None => {}
        }
    }
}

/// One archived (shrunk) divergence.
#[derive(Debug)]
pub struct MismatchReport {
    /// Index of the case within the campaign.
    pub case_index: usize,
    /// The shrunk case.
    pub case: CaseSpec,
    /// The shrunk divergence.
    pub mismatch: Mismatch,
    /// Where the JSON repro was written, when archiving succeeded.
    pub archived_at: Option<PathBuf>,
}

/// Result of a fuzzing campaign.
#[derive(Debug)]
pub struct FuzzReport {
    /// The campaign seed.
    pub seed: u64,
    /// Cases generated.
    pub cases: usize,
    /// Cases rejected at parse/build time (generator artifacts).
    pub rejected: usize,
    /// Total engine executions across all configurations.
    pub executions: usize,
    /// Total matches the reference produced (a coverage proxy: campaigns
    /// that only generate empty results test little).
    pub reference_matches: usize,
    /// Per-feature exercise counts.
    pub features: FeatureCounts,
    /// Confirmed divergences, shrunk.
    pub mismatches: Vec<MismatchReport>,
    /// Wall-clock duration of the campaign.
    pub wall_seconds: f64,
}

impl FuzzReport {
    /// True when every executed case agreed with the reference.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// Cases per second over the campaign.
    pub fn throughput(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.cases as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Human-readable one-screen summary.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "conformance: {} cases (seed {}), {} engine executions, \
             {} reference matches, {} rejected, {} mismatches, {:.1}s \
             ({:.1} cases/s)\n",
            self.cases,
            self.seed,
            self.executions,
            self.reference_matches,
            self.rejected,
            self.mismatches.len(),
            self.wall_seconds,
            self.throughput(),
        );
        let f = &self.features;
        out.push_str(&format!(
            "features: WHERE {} | NOT {} | OR {} | IS NULL {} | var-length {} \
             | undirected {} | anonymous {} | NULL literal {} | cyclic {}\n",
            f.where_clause,
            f.negation,
            f.disjunction,
            f.is_null,
            f.var_length,
            f.undirected,
            f.anonymous,
            f.null_literal,
            f.cyclic,
        ));
        out.push_str(&format!(
            "pipeline: ORDER BY {} | SKIP/LIMIT {} | DISTINCT {} | aggregate {} \
             | WITH+MATCH {} | OPTIONAL MATCH {} | UNWIND {}\n",
            f.order_by,
            f.skip_limit,
            f.distinct,
            f.aggregate,
            f.with_clause,
            f.optional_match,
            f.unwind,
        ));
        for report in &self.mismatches {
            out.push_str(&format!(
                "MISMATCH case {} [{}]: {}\n",
                report.case_index,
                report.mismatch.config.label(),
                report.mismatch.query_text,
            ));
            if let Some(path) = &report.archived_at {
                out.push_str(&format!("  repro archived at {}\n", path.display()));
            }
        }
        out
    }
}

/// Runs a fuzzing campaign: generates `config.cases` cases from
/// `config.seed`, executes each through the engine's configuration matrix,
/// compares against the reference, and shrinks + archives any divergence.
pub fn run_conformance(config: &FuzzConfig) -> FuzzReport {
    let started = Instant::now();
    let mut rng = Rng::new(config.seed);
    let mut report = FuzzReport {
        seed: config.seed,
        cases: config.cases,
        rejected: 0,
        executions: 0,
        reference_matches: 0,
        features: FeatureCounts::default(),
        mismatches: Vec::new(),
        wall_seconds: 0.0,
    };
    for case_index in 0..config.cases {
        let case = random_case(&mut rng);
        report.features.record(&case);
        match run_case(&case) {
            CaseOutcome::Passed {
                executions,
                reference_matches,
            } => {
                report.executions += executions;
                report.reference_matches += reference_matches;
            }
            CaseOutcome::Rejected { .. } => report.rejected += 1,
            CaseOutcome::Mismatch(mismatch) => {
                report.executions += 1;
                let (shrunk, mismatch) = if config.archive {
                    shrink(&case, &mismatch.config.clone(), *mismatch)
                } else {
                    (case, *mismatch)
                };
                let archived_at = if config.archive {
                    archive_repro(config.seed, case_index, &shrunk, &mismatch)
                } else {
                    None
                };
                report.mismatches.push(MismatchReport {
                    case_index,
                    case: shrunk,
                    mismatch,
                    archived_at,
                });
            }
        }
    }
    report.wall_seconds = started.elapsed().as_secs_f64();
    report
}

fn json_escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

fn json_string_list(items: &[String]) -> String {
    let quoted: Vec<String> = items
        .iter()
        .map(|item| format!("\"{}\"", json_escape(item)))
        .collect();
    format!("[{}]", quoted.join(", "))
}

fn canonical_rows_json(rows: &[Canonical]) -> String {
    let rendered: Vec<String> = rows.iter().map(|row| format!("{row:?}")).collect();
    json_string_list(&rendered)
}

/// Serializes a shrunk repro as JSON under `target/conformance/`.
/// Best-effort: returns `None` when the directory cannot be written.
pub fn archive_repro(
    seed: u64,
    case_index: usize,
    case: &CaseSpec,
    mismatch: &Mismatch,
) -> Option<PathBuf> {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
    let dir = PathBuf::from(target).join("conformance");
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("seed{seed}_case{case_index}.json"));

    let vertices: Vec<String> = case
        .graph
        .vertices
        .iter()
        .map(|v| format!("#{} :{} {:?}", v.id, v.label, v.properties))
        .collect();
    let edges: Vec<String> = case
        .graph
        .edges
        .iter()
        .map(|e| {
            format!(
                "#{} :{} {} -> {} {:?}",
                e.id, e.label, e.source, e.target, e.properties
            )
        })
        .collect();
    let engine_rows = match &mismatch.engine {
        Ok(rows) => canonical_rows_json(rows),
        Err(error) => format!("\"error: {}\"", json_escape(error)),
    };
    let body = format!(
        "{{\n  \"seed\": {seed},\n  \"case\": {case_index},\n  \"query\": \"{}\",\n  \
         \"config\": \"{}\",\n  \"matching\": \"{:?}\",\n  \"indexed\": {},\n  \
         \"workers\": {},\n  \"vertices\": {},\n  \"edges\": {},\n  \
         \"engine\": {},\n  \"reference\": {}\n}}\n",
        json_escape(&mismatch.query_text),
        mismatch.config.label(),
        case.matching,
        case.indexed,
        case.workers,
        json_string_list(&vertices),
        json_string_list(&edges),
        engine_rows,
        canonical_rows_json(&mismatch.reference),
    );
    std::fs::write(&path, body).ok()?;
    eprintln!("conformance repro archived at {}", path.display());
    Some(path)
}

/// The campaign seed: `GRADOOP_TEST_SEED` when set (the same switch the
/// chaos tests honour), else `default`.
pub fn seed_from_env(default: u64) -> u64 {
    match std::env::var("GRADOOP_TEST_SEED") {
        Ok(text) => text
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("GRADOOP_TEST_SEED must be a u64, got {text:?}")),
        Err(_) => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_clean_and_deterministic() {
        let config = FuzzConfig {
            seed: 0xC0FFEE,
            cases: 20,
            archive: false,
        };
        let a = run_conformance(&config);
        assert!(a.is_clean(), "{}", a.summary());
        assert!(a.executions > 0);
        let b = run_conformance(&config);
        assert_eq!(a.executions, b.executions);
        assert_eq!(a.reference_matches, b.reference_matches);
        assert_eq!(a.rejected, b.rejected);
    }

    #[test]
    fn shrinker_reduces_an_artificial_divergence() {
        // Build a case, then sabotage the comparison by asking still_fails
        // for a case whose engine and reference agree — it must return
        // None (no false positives to shrink).
        let mut rng = Rng::new(1);
        let case = random_case(&mut rng);
        for config in EngineConfig::matrix() {
            assert!(still_fails(&case, &config).is_none());
        }
    }
}
