//! Differential execution of one conformance case: the real engine, across
//! its whole configuration matrix, against the single-machine reference
//! matcher, result-for-result.

use std::collections::{BTreeMap, HashMap};

use gradoop_core::{
    canonical_row, reference_match, reference_pipeline, CypherEngine, Entry, MatchingConfig,
    MorphismType, PlanMode, QueryResult, Row,
};
use gradoop_cypher::ast::Pipeline;
use gradoop_cypher::{parse, parse_pipeline, QueryGraph};
use gradoop_dataflow::{CostModel, ExecutionConfig, ExecutionEnvironment};
use gradoop_epgm::GraphStatistics;

use super::gen::{GraphSpec, QuerySpec, Rng};
use crate::harness::uniform_statistics;

/// Canonical form of one match: variable → printable entry, order-free.
pub type Canonical = BTreeMap<String, String>;

/// One point of the engine configuration matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Strip label statistics (the planner ablation) — exercises the
    /// alternative join orders the greedy planner picks without them.
    pub uniform_stats: bool,
    /// FORWARD shuffle elision and loop-invariant caching on/off.
    pub partition_aware: bool,
    /// Morsel-driven work stealing on/off.
    pub work_stealing: bool,
    /// Batched (vectorized) operator kernels on/off — selection-vector
    /// filters and morsel-sized batches versus the row-at-a-time path.
    pub vectorized: bool,
    /// Planner mode — cyclic tail-free cases additionally sweep
    /// [`PlanMode::ForceBinary`] and [`PlanMode::ForceWco`] so the
    /// worst-case-optimal and binary plans are compared result-for-result
    /// on every matrix point.
    pub plan_mode: PlanMode,
}

impl EngineConfig {
    /// The full 16-point matrix (cost-based planning; forced plan modes
    /// are layered on per case by [`run_case`]).
    pub fn matrix() -> Vec<EngineConfig> {
        let mut out = Vec::new();
        for uniform_stats in [false, true] {
            for partition_aware in [false, true] {
                for work_stealing in [false, true] {
                    for vectorized in [false, true] {
                        out.push(EngineConfig {
                            uniform_stats,
                            partition_aware,
                            work_stealing,
                            vectorized,
                            plan_mode: PlanMode::CostBased,
                        });
                    }
                }
            }
        }
        out
    }

    /// This configuration with its planner forced to `mode`.
    pub fn with_mode(mut self, mode: PlanMode) -> EngineConfig {
        self.plan_mode = mode;
        self
    }

    /// Compact label for reports, e.g. `stats+ partition- stealing+ vec+ wco!`.
    pub fn label(&self) -> String {
        let mode = match self.plan_mode {
            PlanMode::CostBased => "",
            PlanMode::ForceBinary => " binary!",
            PlanMode::ForceWco => " wco!",
        };
        format!(
            "stats{} partition{} stealing{} vec{}{mode}",
            if self.uniform_stats { "-" } else { "+" },
            if self.partition_aware { "+" } else { "-" },
            if self.work_stealing { "+" } else { "-" },
            if self.vectorized { "+" } else { "-" },
        )
    }
}

/// One generated conformance case.
#[derive(Debug, Clone)]
pub struct CaseSpec {
    /// The data graph.
    pub graph: GraphSpec,
    /// The query.
    pub query: QuerySpec,
    /// Vertex/edge morphism semantics for this case.
    pub matching: MatchingConfig,
    /// Run against the label-indexed graph representation.
    pub indexed: bool,
    /// Simulated worker count.
    pub workers: usize,
}

/// The four morphism combinations (paper Definition 2.4).
pub const MORPHISMS: [MatchingConfig; 4] = [
    MatchingConfig {
        vertices: MorphismType::Homomorphism,
        edges: MorphismType::Homomorphism,
    },
    MatchingConfig {
        vertices: MorphismType::Homomorphism,
        edges: MorphismType::Isomorphism,
    },
    MatchingConfig {
        vertices: MorphismType::Isomorphism,
        edges: MorphismType::Homomorphism,
    },
    MatchingConfig {
        vertices: MorphismType::Isomorphism,
        edges: MorphismType::Isomorphism,
    },
];

/// Draws a complete random case.
pub fn random_case(rng: &mut Rng) -> CaseSpec {
    CaseSpec {
        graph: super::gen::random_graph(rng),
        query: super::gen::random_query(rng),
        matching: MORPHISMS[rng.below(MORPHISMS.len())],
        indexed: rng.chance(50),
        workers: 1 + rng.below(3),
    }
}

/// A confirmed engine-vs-reference divergence on one configuration.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// The engine configuration that diverged.
    pub config: EngineConfig,
    /// The query text that diverged.
    pub query_text: String,
    /// Engine rows (or the classified error it returned).
    pub engine: Result<Vec<Canonical>, String>,
    /// Reference rows.
    pub reference: Vec<Canonical>,
}

/// Outcome of running one case through the full matrix.
#[derive(Debug)]
pub enum CaseOutcome {
    /// All configurations agreed with the reference.
    Passed {
        /// Engine executions performed (one per matrix point).
        executions: usize,
        /// Matches the reference found.
        reference_matches: usize,
    },
    /// The query was rejected at parse or query-graph construction — a
    /// generator artifact (e.g. an inverted range), not a conformance
    /// verdict. Counted separately so reports surface generator drift.
    Rejected {
        /// The rejection message.
        reason: String,
    },
    /// At least one configuration diverged from the reference.
    Mismatch(Box<Mismatch>),
}

fn free_env(workers: usize) -> ExecutionEnvironment {
    ExecutionEnvironment::new(ExecutionConfig::with_workers(workers).cost_model(CostModel::free()))
}

fn canonical_entry(entry: &Entry) -> String {
    match entry {
        Entry::Id(id) => format!("#{id}"),
        Entry::Path(ids) => format!("{ids:?}"),
    }
}

fn canonicalize(result: &QueryResult) -> Result<Vec<Canonical>, String> {
    let variables: Vec<String> = result.query.variables().map(str::to_string).collect();
    let mut out = Vec::new();
    for embedding in result.embeddings.collect().iter() {
        let mut row = Canonical::new();
        for variable in &variables {
            let column = result
                .meta
                .column(variable)
                .ok_or_else(|| format!("variable `{variable}` unbound in engine result"))?;
            row.insert(variable.clone(), canonical_entry(&embedding.entry(column)));
        }
        out.push(row);
    }
    out.sort();
    Ok(out)
}

/// Reference (ground-truth) rows for `case`, canonicalized. Returns `Err`
/// with the rejection message when the query does not build.
pub fn reference_rows(case: &CaseSpec, query: &QueryGraph) -> Vec<Canonical> {
    let env = free_env(case.workers);
    let graph = case.graph.build(&env);
    let mut out: Vec<Canonical> = reference_match(&graph, query, &case.matching)
        .iter()
        .map(|m| {
            m.iter()
                .map(|(variable, entry)| (variable.clone(), canonical_entry(entry)))
                .collect()
        })
        .collect();
    out.sort();
    out
}

/// Runs `case` under one engine configuration and returns its canonical
/// rows (or the error the engine classified).
pub fn engine_rows(
    case: &CaseSpec,
    query_text: &str,
    config: &EngineConfig,
) -> Result<Vec<Canonical>, String> {
    let env = ExecutionEnvironment::new(
        ExecutionConfig::with_workers(case.workers)
            .cost_model(CostModel::free())
            .partition_aware(config.partition_aware)
            .work_stealing(config.work_stealing)
            .vectorized(config.vectorized),
    );
    let graph = case.graph.build(&env);
    let statistics = if config.uniform_stats {
        uniform_statistics(&GraphStatistics::of(&graph))
    } else {
        GraphStatistics::of(&graph)
    };
    let engine = CypherEngine::with_statistics(statistics).with_plan_mode(config.plan_mode);
    let result = if case.indexed {
        engine.execute(
            &graph.to_indexed(),
            query_text,
            &HashMap::new(),
            case.matching,
        )
    } else {
        engine.execute(&graph, query_text, &HashMap::new(), case.matching)
    };
    match result {
        Ok(result) => canonicalize(&result),
        Err(error) => Err(error.to_string()),
    }
}

/// Canonical form of a pipeline table: a header entry recording the column
/// list and orderedness, then one entry per result row — position-keyed
/// when row order is part of the result, sorted otherwise. Reusing the
/// simple-path `Canonical` row shape keeps `Mismatch` and the JSON archive
/// format uniform across both comparison routes.
fn canonical_table(columns: &[String], rows: &[Row], ordered: bool) -> Vec<Canonical> {
    let mut out = Vec::new();
    let mut header = Canonical::new();
    header.insert("#columns".to_string(), columns.join(","));
    header.insert("#ordered".to_string(), ordered.to_string());
    out.push(header);
    let mut rendered: Vec<String> = rows.iter().map(|row| canonical_row(row)).collect();
    if ordered {
        for (position, row) in rendered.into_iter().enumerate() {
            let mut entry = Canonical::new();
            entry.insert("#pos".to_string(), format!("{position:06}"));
            entry.insert("row".to_string(), row);
            out.push(entry);
        }
    } else {
        rendered.sort();
        for row in rendered {
            let mut entry = Canonical::new();
            entry.insert("row".to_string(), row);
            out.push(entry);
        }
    }
    out
}

/// Reference (ground-truth) table for a pipeline case, canonicalized, plus
/// its row count. `Err` carries the reference's rejection message.
fn pipeline_reference(
    case: &CaseSpec,
    pipeline: &Pipeline,
) -> Result<(Vec<Canonical>, usize), String> {
    let env = free_env(case.workers);
    let graph = case.graph.build(&env);
    let table = reference_pipeline(&graph, pipeline, &case.matching)?;
    let matches = table.rows.len();
    Ok((
        canonical_table(&table.columns, &table.rows, table.ordered),
        matches,
    ))
}

/// Runs a pipeline case (one with a tail) under one engine configuration
/// through `CypherEngine::run`, canonicalized.
pub fn pipeline_engine_rows(
    case: &CaseSpec,
    query_text: &str,
    config: &EngineConfig,
) -> Result<Vec<Canonical>, String> {
    let env = ExecutionEnvironment::new(
        ExecutionConfig::with_workers(case.workers)
            .cost_model(CostModel::free())
            .partition_aware(config.partition_aware)
            .work_stealing(config.work_stealing)
            .vectorized(config.vectorized),
    );
    let graph = case.graph.build(&env);
    let statistics = if config.uniform_stats {
        uniform_statistics(&GraphStatistics::of(&graph))
    } else {
        GraphStatistics::of(&graph)
    };
    let engine = CypherEngine::with_statistics(statistics);
    let result = if case.indexed {
        engine.run(
            &graph.to_indexed(),
            query_text,
            &HashMap::new(),
            case.matching,
        )
    } else {
        engine.run(&graph, query_text, &HashMap::new(), case.matching)
    };
    match result {
        Ok(table) => Ok(canonical_table(&table.columns, &table.rows, table.ordered)),
        Err(error) => Err(error.to_string()),
    }
}

/// Runs a tail-bearing case through the full configuration matrix: the
/// engine's `run` table against the reference pipeline interpreter's.
fn run_pipeline_case(case: &CaseSpec, query_text: &str) -> CaseOutcome {
    let pipeline = match parse_pipeline(query_text) {
        Ok(pipeline) => pipeline,
        Err(error) => {
            return CaseOutcome::Rejected {
                reason: error.to_string(),
            }
        }
    };
    let (reference, reference_matches) = match pipeline_reference(case, &pipeline) {
        Ok(reference) => reference,
        Err(reason) => return CaseOutcome::Rejected { reason },
    };
    let mut executions = 0;
    for config in EngineConfig::matrix() {
        executions += 1;
        let engine = pipeline_engine_rows(case, query_text, &config);
        if engine.as_ref().ok() != Some(&reference) {
            return CaseOutcome::Mismatch(Box::new(Mismatch {
                config,
                query_text: query_text.to_string(),
                engine,
                reference,
            }));
        }
    }
    CaseOutcome::Passed {
        executions,
        reference_matches,
    }
}

/// Runs `case` through the full configuration matrix against the
/// reference. Stops at the first diverging configuration.
pub fn run_case(case: &CaseSpec) -> CaseOutcome {
    let query_text = case.query.render();
    if case.query.tail.is_some() {
        return run_pipeline_case(case, &query_text);
    }
    let query = match parse(&query_text)
        .map_err(|e| e.to_string())
        .and_then(|ast| QueryGraph::from_query(&ast).map_err(|e| e.to_string()))
    {
        Ok(query) => query,
        Err(reason) => return CaseOutcome::Rejected { reason },
    };
    let reference = reference_rows(case, &query);
    // Cyclic patterns are where worst-case-optimal and binary plans
    // genuinely differ, so those cases additionally sweep both forced
    // planner modes: every matrix point must agree with the reference
    // under whichever plan shape the mode selects.
    let modes: &[PlanMode] = if case.query.is_cyclic() {
        &[
            PlanMode::CostBased,
            PlanMode::ForceBinary,
            PlanMode::ForceWco,
        ]
    } else {
        &[PlanMode::CostBased]
    };
    let mut executions = 0;
    for config in EngineConfig::matrix() {
        for &mode in modes {
            let config = config.with_mode(mode);
            executions += 1;
            let engine = engine_rows(case, &query_text, &config);
            if engine.as_ref().ok() != Some(&reference) {
                return CaseOutcome::Mismatch(Box::new(Mismatch {
                    config,
                    query_text,
                    engine,
                    reference,
                }));
            }
        }
    }
    CaseOutcome::Passed {
        executions,
        reference_matches: reference.len(),
    }
}

/// Re-checks whether `case` still diverges under `config` (the shrinker's
/// probe): `Some` with the fresh divergence when it does.
pub fn still_fails(case: &CaseSpec, config: &EngineConfig) -> Option<Mismatch> {
    let query_text = case.query.render();
    if case.query.tail.is_some() {
        let pipeline = parse_pipeline(&query_text).ok()?;
        let (reference, _) = pipeline_reference(case, &pipeline).ok()?;
        let engine = pipeline_engine_rows(case, &query_text, config);
        if engine.as_ref().ok() != Some(&reference) {
            return Some(Mismatch {
                config: *config,
                query_text,
                engine,
                reference,
            });
        }
        return None;
    }
    let query = QueryGraph::from_query(&parse(&query_text).ok()?).ok()?;
    let reference = reference_rows(case, &query);
    let engine = engine_rows(case, &query_text, config);
    if engine.as_ref().ok() != Some(&reference) {
        Some(Mismatch {
            config: *config,
            query_text,
            engine,
            reference,
        })
    } else {
        None
    }
}
