//! Greedy shrinker: reduces a failing `(graph, query)` pair to a (locally)
//! minimal reproduction that still diverges on the configuration that first
//! failed.
//!
//! Classic delta-debugging loop: propose one structural reduction at a
//! time — drop a graph edge, drop a vertex with its incident edges, drop a
//! property, drop a query relationship, drop a label or inline property
//! map, replace the WHERE tree by one of its subtrees, drop WHERE — and
//! keep any reduction under which the divergence reproduces. Each probe
//! re-runs the engine and the reference, so probes are capped.

use super::gen::{Cond, GraphSpec, QuerySpec, TailSpec};
use super::runner::{still_fails, CaseSpec, EngineConfig, Mismatch};

/// Upper bound on shrink probes (each probe is a full engine + reference
/// run on a small case).
const MAX_PROBES: usize = 400;

fn graph_reductions(graph: &GraphSpec) -> Vec<GraphSpec> {
    let mut out = Vec::new();
    for index in 0..graph.edges.len() {
        let mut candidate = graph.clone();
        candidate.edges.remove(index);
        out.push(candidate);
    }
    for index in 0..graph.vertices.len() {
        out.push(graph.without_vertex(index));
    }
    for (index, vertex) in graph.vertices.iter().enumerate() {
        for slot in 0..vertex.properties.len() {
            let mut candidate = graph.clone();
            candidate.vertices[index].properties.remove(slot);
            out.push(candidate);
        }
    }
    for (index, edge) in graph.edges.iter().enumerate() {
        for slot in 0..edge.properties.len() {
            let mut candidate = graph.clone();
            candidate.edges[index].properties.remove(slot);
            out.push(candidate);
        }
    }
    out
}

fn where_reductions(tree: &Cond) -> Vec<Option<Cond>> {
    let mut out: Vec<Option<Cond>> = vec![None];
    for child in tree.children() {
        out.push(Some(child.clone()));
    }
    out
}

fn query_reductions(query: &QuerySpec) -> Vec<QuerySpec> {
    let mut out = Vec::new();
    // Reductions that break a cyclic pattern open are still offered (the
    // divergence may not be intersection-specific), but only after every
    // cyclicity-preserving candidate: a repro that keeps closing a cycle
    // keeps the worst-case-optimal plan shape in play while it shrinks.
    let was_cyclic = query.is_cyclic();
    let mut breaks_cycle = Vec::new();
    // Drop one relationship (nodes it referenced stay; they become
    // standalone patterns, which the renderer handles). On a diamond this
    // is the chord-dropping reduction that leaves a plain 4-cycle.
    for index in 0..query.edges.len() {
        let mut candidate = query.clone();
        candidate.edges.remove(index);
        if was_cyclic && !candidate.is_cyclic() {
            breaks_cycle.push(candidate);
        } else {
            out.push(candidate);
        }
    }
    // Drop a node together with its incident relationships — the reduction
    // that takes a 4-clique to a triangle without opening the cycle.
    for index in 0..query.nodes.len() {
        if query.nodes.len() == 1 {
            break; // MATCH needs at least one pattern
        }
        let mut candidate = query.clone();
        candidate.nodes.remove(index);
        candidate.edges.retain(|e| e.from != index && e.to != index);
        for edge in &mut candidate.edges {
            if edge.from > index {
                edge.from -= 1;
            }
            if edge.to > index {
                edge.to -= 1;
            }
        }
        if was_cyclic && !candidate.is_cyclic() {
            breaks_cycle.push(candidate);
        } else {
            out.push(candidate);
        }
    }
    // Drop labels and inline property maps.
    for index in 0..query.nodes.len() {
        if !query.nodes[index].labels.is_empty() {
            let mut candidate = query.clone();
            candidate.nodes[index].labels.clear();
            out.push(candidate);
        }
        if !query.nodes[index].props.is_empty() {
            let mut candidate = query.clone();
            candidate.nodes[index].props.clear();
            out.push(candidate);
        }
    }
    for index in 0..query.edges.len() {
        if !query.edges[index].labels.is_empty() {
            let mut candidate = query.clone();
            candidate.edges[index].labels.clear();
            out.push(candidate);
        }
        if !query.edges[index].props.is_empty() {
            let mut candidate = query.clone();
            candidate.edges[index].props.clear();
            out.push(candidate);
        }
    }
    // Simplify the WHERE tree.
    if let Some(tree) = &query.where_tree {
        for reduced in where_reductions(tree) {
            let mut candidate = query.clone();
            candidate.where_tree = reduced;
            out.push(candidate);
        }
    }
    // Drop or simplify the pipeline tail. Dropping it entirely comes
    // first: it reduces the case to the simple-query comparison route,
    // which localizes the bug to either the base match or the tail.
    if let Some(tail) = &query.tail {
        let mut candidate = query.clone();
        candidate.tail = None;
        out.push(candidate);
        for reduced in tail_reductions(tail) {
            let mut candidate = query.clone();
            candidate.tail = Some(reduced);
            out.push(candidate);
        }
    }
    out.extend(breaks_cycle);
    out
}

fn tail_reductions(tail: &TailSpec) -> Vec<TailSpec> {
    let mut out = Vec::new();
    match tail {
        TailSpec::OrderLimit {
            distinct,
            keys,
            skip,
            limit,
        } => {
            for index in 0..keys.len() {
                // Keep at least one of {keys, skip, limit} so the tail
                // stays a valid production.
                if keys.len() == 1 && skip.is_none() && limit.is_none() {
                    break;
                }
                let mut reduced = keys.clone();
                reduced.remove(index);
                out.push(TailSpec::OrderLimit {
                    distinct: *distinct,
                    keys: reduced,
                    skip: *skip,
                    limit: *limit,
                });
            }
            if skip.is_some() && (!keys.is_empty() || limit.is_some()) {
                out.push(TailSpec::OrderLimit {
                    distinct: *distinct,
                    keys: keys.clone(),
                    skip: None,
                    limit: *limit,
                });
            }
            if limit.is_some() && (!keys.is_empty() || skip.is_some()) {
                out.push(TailSpec::OrderLimit {
                    distinct: *distinct,
                    keys: keys.clone(),
                    skip: *skip,
                    limit: None,
                });
            }
            if *distinct {
                out.push(TailSpec::OrderLimit {
                    distinct: false,
                    keys: keys.clone(),
                    skip: *skip,
                    limit: *limit,
                });
            }
        }
        TailSpec::Aggregate { group, aggs } => {
            for index in 0..group.len() {
                let mut reduced = group.clone();
                reduced.remove(index);
                out.push(TailSpec::Aggregate {
                    group: reduced,
                    aggs: aggs.clone(),
                });
            }
            if aggs.len() > 1 {
                for index in 0..aggs.len() {
                    let mut reduced = aggs.clone();
                    reduced.remove(index);
                    out.push(TailSpec::Aggregate {
                        group: group.clone(),
                        aggs: reduced,
                    });
                }
            }
        }
        TailSpec::WithMatch {
            keep,
            anchor,
            edge_label,
            node_label,
        } => {
            // Drop carried variables (the anchor at index 0 must stay).
            for index in 1..keep.len() {
                let mut reduced = keep.clone();
                reduced.remove(index);
                out.push(TailSpec::WithMatch {
                    keep: reduced,
                    anchor: anchor.clone(),
                    edge_label: edge_label.clone(),
                    node_label: node_label.clone(),
                });
            }
            if edge_label.is_some() {
                out.push(TailSpec::WithMatch {
                    keep: keep.clone(),
                    anchor: anchor.clone(),
                    edge_label: None,
                    node_label: node_label.clone(),
                });
            }
            if node_label.is_some() {
                out.push(TailSpec::WithMatch {
                    keep: keep.clone(),
                    anchor: anchor.clone(),
                    edge_label: edge_label.clone(),
                    node_label: None,
                });
            }
        }
        TailSpec::OptionalTail {
            anchor,
            direction,
            edge_label,
            node_label,
        } => {
            if edge_label.is_some() {
                out.push(TailSpec::OptionalTail {
                    anchor: anchor.clone(),
                    direction: *direction,
                    edge_label: None,
                    node_label: node_label.clone(),
                });
            }
            if node_label.is_some() {
                out.push(TailSpec::OptionalTail {
                    anchor: anchor.clone(),
                    direction: *direction,
                    edge_label: edge_label.clone(),
                    node_label: None,
                });
            }
        }
        TailSpec::Unwind { items } => {
            for index in 0..items.len() {
                let mut reduced = items.clone();
                reduced.remove(index);
                out.push(TailSpec::Unwind { items: reduced });
            }
        }
    }
    out
}

/// Shrinks `case` against the configuration that failed, returning the
/// smallest reproducing case found and its (fresh) divergence.
pub fn shrink(
    case: &CaseSpec,
    config: &EngineConfig,
    seed_mismatch: Mismatch,
) -> (CaseSpec, Mismatch) {
    let mut best = case.clone();
    let mut mismatch = seed_mismatch;
    let mut probes = 0;
    loop {
        let mut improved = false;
        let mut candidates: Vec<CaseSpec> = Vec::new();
        for graph in graph_reductions(&best.graph) {
            let mut candidate = best.clone();
            candidate.graph = graph;
            candidates.push(candidate);
        }
        for query in query_reductions(&best.query) {
            let mut candidate = best.clone();
            candidate.query = query;
            candidates.push(candidate);
        }
        for candidate in candidates {
            if probes >= MAX_PROBES {
                return (best, mismatch);
            }
            probes += 1;
            if let Some(found) = still_fails(&candidate, config) {
                best = candidate;
                mismatch = found;
                improved = true;
                break; // restart reductions from the smaller case
            }
        }
        if !improved {
            return (best, mismatch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::gen::{Dir, EdgePat, NodePat};
    use super::*;

    fn diamond() -> QuerySpec {
        let endpoints = [(0usize, 1usize), (1, 2), (2, 3), (3, 0), (0, 2)];
        QuerySpec {
            nodes: (0..4)
                .map(|i| NodePat {
                    variable: Some(format!("n{i}")),
                    labels: Vec::new(),
                    props: Vec::new(),
                })
                .collect(),
            edges: endpoints
                .iter()
                .enumerate()
                .map(|(i, &(from, to))| EdgePat {
                    variable: Some(format!("e{i}")),
                    from,
                    to,
                    direction: Dir::Out,
                    labels: Vec::new(),
                    range: None,
                    props: Vec::new(),
                })
                .collect(),
            where_tree: None,
            tail: None,
        }
    }

    #[test]
    fn cyclic_reductions_come_before_cycle_breaking_ones() {
        let reductions = query_reductions(&diamond());
        // Dropping a chord-endpoint node shrinks the diamond straight to a
        // triangle; it must appear among the cyclicity-preserving
        // candidates.
        let first_triangle = reductions
            .iter()
            .position(|q| q.nodes.len() == 3 && q.edges.len() == 3 && q.is_cyclic())
            .expect("diamond must offer a triangle reduction");
        // Dropping a node on the 4-cycle's rim (both chord endpoints stay)
        // breaks the cycle open; those candidates are deferred to the end.
        let first_acyclic = reductions
            .iter()
            .position(|q| !q.is_cyclic())
            .expect("cycle-breaking reductions are still offered");
        assert!(
            first_triangle < first_acyclic,
            "triangle at {first_triangle}, first acyclic at {first_acyclic}"
        );
        assert!(reductions[..first_acyclic].iter().all(|q| q.is_cyclic()));
    }
}
