//! Greedy shrinker: reduces a failing `(graph, query)` pair to a (locally)
//! minimal reproduction that still diverges on the configuration that first
//! failed.
//!
//! Classic delta-debugging loop: propose one structural reduction at a
//! time — drop a graph edge, drop a vertex with its incident edges, drop a
//! property, drop a query relationship, drop a label or inline property
//! map, replace the WHERE tree by one of its subtrees, drop WHERE — and
//! keep any reduction under which the divergence reproduces. Each probe
//! re-runs the engine and the reference, so probes are capped.

use super::gen::{Cond, GraphSpec, QuerySpec};
use super::runner::{still_fails, CaseSpec, EngineConfig, Mismatch};

/// Upper bound on shrink probes (each probe is a full engine + reference
/// run on a small case).
const MAX_PROBES: usize = 400;

fn graph_reductions(graph: &GraphSpec) -> Vec<GraphSpec> {
    let mut out = Vec::new();
    for index in 0..graph.edges.len() {
        let mut candidate = graph.clone();
        candidate.edges.remove(index);
        out.push(candidate);
    }
    for index in 0..graph.vertices.len() {
        out.push(graph.without_vertex(index));
    }
    for (index, vertex) in graph.vertices.iter().enumerate() {
        for slot in 0..vertex.properties.len() {
            let mut candidate = graph.clone();
            candidate.vertices[index].properties.remove(slot);
            out.push(candidate);
        }
    }
    for (index, edge) in graph.edges.iter().enumerate() {
        for slot in 0..edge.properties.len() {
            let mut candidate = graph.clone();
            candidate.edges[index].properties.remove(slot);
            out.push(candidate);
        }
    }
    out
}

fn where_reductions(tree: &Cond) -> Vec<Option<Cond>> {
    let mut out: Vec<Option<Cond>> = vec![None];
    for child in tree.children() {
        out.push(Some(child.clone()));
    }
    out
}

fn query_reductions(query: &QuerySpec) -> Vec<QuerySpec> {
    let mut out = Vec::new();
    // Drop one relationship (nodes it referenced stay; they become
    // standalone patterns, which the renderer handles).
    for index in 0..query.edges.len() {
        let mut candidate = query.clone();
        candidate.edges.remove(index);
        out.push(candidate);
    }
    // Drop a node that no relationship references.
    for index in 0..query.nodes.len() {
        if query.edges.iter().any(|e| e.from == index || e.to == index) {
            continue;
        }
        if query.nodes.len() == 1 {
            continue; // MATCH needs at least one pattern
        }
        let mut candidate = query.clone();
        candidate.nodes.remove(index);
        for edge in &mut candidate.edges {
            if edge.from > index {
                edge.from -= 1;
            }
            if edge.to > index {
                edge.to -= 1;
            }
        }
        out.push(candidate);
    }
    // Drop labels and inline property maps.
    for index in 0..query.nodes.len() {
        if !query.nodes[index].labels.is_empty() {
            let mut candidate = query.clone();
            candidate.nodes[index].labels.clear();
            out.push(candidate);
        }
        if !query.nodes[index].props.is_empty() {
            let mut candidate = query.clone();
            candidate.nodes[index].props.clear();
            out.push(candidate);
        }
    }
    for index in 0..query.edges.len() {
        if !query.edges[index].labels.is_empty() {
            let mut candidate = query.clone();
            candidate.edges[index].labels.clear();
            out.push(candidate);
        }
        if !query.edges[index].props.is_empty() {
            let mut candidate = query.clone();
            candidate.edges[index].props.clear();
            out.push(candidate);
        }
    }
    // Simplify the WHERE tree.
    if let Some(tree) = &query.where_tree {
        for reduced in where_reductions(tree) {
            let mut candidate = query.clone();
            candidate.where_tree = reduced;
            out.push(candidate);
        }
    }
    out
}

/// Shrinks `case` against the configuration that failed, returning the
/// smallest reproducing case found and its (fresh) divergence.
pub fn shrink(
    case: &CaseSpec,
    config: &EngineConfig,
    seed_mismatch: Mismatch,
) -> (CaseSpec, Mismatch) {
    let mut best = case.clone();
    let mut mismatch = seed_mismatch;
    let mut probes = 0;
    loop {
        let mut improved = false;
        let mut candidates: Vec<CaseSpec> = Vec::new();
        for graph in graph_reductions(&best.graph) {
            let mut candidate = best.clone();
            candidate.graph = graph;
            candidates.push(candidate);
        }
        for query in query_reductions(&best.query) {
            let mut candidate = best.clone();
            candidate.query = query;
            candidates.push(candidate);
        }
        for candidate in candidates {
            if probes >= MAX_PROBES {
                return (best, mismatch);
            }
            probes += 1;
            if let Some(found) = still_fails(&candidate, config) {
                best = candidate;
                mismatch = found;
                improved = true;
                break; // restart reductions from the smaller case
            }
        }
        if !improved {
            return (best, mismatch);
        }
    }
}
