//! The perf-regression gate: standardized benchmark reports plus a
//! comparator that diffs a fresh run against a committed baseline.
//!
//! A [`BenchReport`] is a flat map of named metrics, each carrying its
//! measured value, the **direction** in which bigger numbers are worse or
//! better, and a per-metric regression **threshold** (a multiplicative
//! tolerance). The report serializes to the schema-stable
//! `BENCH_pr6.json` document:
//!
//! ```json
//! {"schema": "bench-pr6/v1",
//!  "metrics": {"figure1.q1.simulated_seconds":
//!                {"value": 1.25, "threshold": 1.25, "direction": "lower"}}}
//! ```
//!
//! [`compare`] diffs a current report against a baseline: a lower-is-better
//! metric regresses when `current > baseline * threshold`, a
//! higher-is-better one when `current < baseline / threshold`. Thresholds
//! are read from the **baseline**, so loosening a gate is a reviewable
//! change to the committed file. Metrics present in the baseline but
//! missing from the current run fail the gate too — schema drift is a
//! regression, not a free pass. `repro --bench-pr6 --check-baseline` wires
//! this into CI.

use std::collections::BTreeMap;

use gradoop_dataflow::JsonValue;

/// Identifier of the report schema this module reads and writes.
pub const BENCH_SCHEMA: &str = "bench-pr6/v1";

/// Whether smaller or larger values of a metric are better.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (makespans, allocation counts).
    LowerIsBetter,
    /// Larger is better (throughput).
    HigherIsBetter,
}

impl Direction {
    /// Stable name used in JSON (`"lower"` / `"higher"`).
    pub fn name(self) -> &'static str {
        match self {
            Direction::LowerIsBetter => "lower",
            Direction::HigherIsBetter => "higher",
        }
    }

    /// Parses [`Direction::name`] output.
    pub fn parse(name: &str) -> Option<Direction> {
        match name {
            "lower" => Some(Direction::LowerIsBetter),
            "higher" => Some(Direction::HigherIsBetter),
            _ => None,
        }
    }
}

/// One benchmark metric: measured value, tolerance, and direction.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchMetric {
    /// The measured value.
    pub value: f64,
    /// Multiplicative tolerance before the gate fails: a lower-is-better
    /// metric may grow to `value * threshold`, a higher-is-better one may
    /// shrink to `value / threshold`. Deterministic simulated metrics get
    /// tight thresholds (~1.25); allocation counts, which vary with thread
    /// scheduling, get generous ones (~2.0).
    pub threshold: f64,
    /// Which way regressions point.
    pub direction: Direction,
}

/// A named set of benchmark metrics — the content of `BENCH_pr6.json`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchReport {
    /// Metrics by name, ordered for stable serialization.
    pub metrics: BTreeMap<String, BenchMetric>,
}

impl BenchReport {
    /// An empty report.
    pub fn new() -> Self {
        BenchReport::default()
    }

    /// Adds (or replaces) a metric.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        value: f64,
        threshold: f64,
        direction: Direction,
    ) {
        self.metrics.insert(
            name.into(),
            BenchMetric {
                value,
                threshold,
                direction,
            },
        );
    }

    /// The report as a JSON document.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("schema", JsonValue::string(BENCH_SCHEMA)),
            (
                "metrics",
                JsonValue::Object(
                    self.metrics
                        .iter()
                        .map(|(name, metric)| {
                            (
                                name.clone(),
                                JsonValue::object(vec![
                                    ("value", JsonValue::Number(metric.value)),
                                    ("threshold", JsonValue::Number(metric.threshold)),
                                    ("direction", JsonValue::string(metric.direction.name())),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The report as compact JSON text (one trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = self.to_json_value().to_json();
        out.push('\n');
        out
    }

    /// Parses a report written by [`BenchReport::to_json`]. Rejects
    /// unknown schema identifiers and malformed metrics.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let value = JsonValue::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let schema = value
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("missing \"schema\"")?;
        if schema != BENCH_SCHEMA {
            return Err(format!(
                "unsupported schema {schema:?} (expected {BENCH_SCHEMA:?})"
            ));
        }
        let JsonValue::Object(metrics) = value.get("metrics").ok_or("missing \"metrics\"")? else {
            return Err("\"metrics\" is not an object".into());
        };
        let mut report = BenchReport::new();
        for (name, metric) in metrics {
            let value = metric
                .get("value")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("metric {name:?}: missing \"value\""))?;
            let threshold = metric
                .get("threshold")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("metric {name:?}: missing \"threshold\""))?;
            // Written to also reject a NaN threshold.
            if threshold < 1.0 || threshold.is_nan() {
                return Err(format!(
                    "metric {name:?}: threshold {threshold} must be >= 1"
                ));
            }
            let direction = metric
                .get("direction")
                .and_then(JsonValue::as_str)
                .and_then(Direction::parse)
                .ok_or_else(|| format!("metric {name:?}: bad \"direction\""))?;
            report.add(name.clone(), value, threshold, direction);
        }
        Ok(report)
    }
}

/// One comparator verdict for a single metric.
#[derive(Debug, Clone, PartialEq)]
pub struct GateFinding {
    /// Metric name.
    pub name: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value (NaN when the metric is missing from the current run).
    pub current: f64,
    /// `current / baseline` (NaN when missing).
    pub ratio: f64,
    /// The tolerance that was applied.
    pub threshold: f64,
    /// True when this finding fails the gate.
    pub regressed: bool,
}

/// The comparator's full verdict.
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    /// One finding per baseline metric, in name order.
    pub findings: Vec<GateFinding>,
    /// Metrics present in the current run but absent from the baseline
    /// (informational: they gate nothing until the baseline is updated).
    pub new_metrics: Vec<String>,
}

impl GateOutcome {
    /// True when no baseline metric regressed or went missing.
    pub fn is_pass(&self) -> bool {
        self.findings.iter().all(|f| !f.regressed)
    }

    /// The findings that fail the gate.
    pub fn regressions(&self) -> Vec<&GateFinding> {
        self.findings.iter().filter(|f| f.regressed).collect()
    }

    /// Human-readable multi-line summary (one line per baseline metric).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for finding in &self.findings {
            let verdict = if finding.regressed { "FAIL" } else { "ok" };
            if finding.current.is_nan() {
                out.push_str(&format!(
                    "{verdict:>4}  {}  baseline {:.6}  current MISSING\n",
                    finding.name, finding.baseline
                ));
            } else {
                out.push_str(&format!(
                    "{verdict:>4}  {}  baseline {:.6}  current {:.6}  ratio {:.3} (allowed {:.2}x)\n",
                    finding.name,
                    finding.baseline,
                    finding.current,
                    finding.ratio,
                    finding.threshold
                ));
            }
        }
        for name in &self.new_metrics {
            out.push_str(&format!("note  {name}  new metric (not in baseline)\n"));
        }
        out
    }
}

/// Diffs `current` against `baseline`. Thresholds and directions come from
/// the baseline; see the module docs for the regression rule.
pub fn compare(baseline: &BenchReport, current: &BenchReport) -> GateOutcome {
    let mut outcome = GateOutcome::default();
    for (name, base) in &baseline.metrics {
        let Some(cur) = current.metrics.get(name) else {
            outcome.findings.push(GateFinding {
                name: name.clone(),
                baseline: base.value,
                current: f64::NAN,
                ratio: f64::NAN,
                threshold: base.threshold,
                regressed: true,
            });
            continue;
        };
        let ratio = if base.value.abs() > f64::EPSILON {
            cur.value / base.value
        } else if cur.value.abs() <= f64::EPSILON {
            1.0
        } else {
            f64::INFINITY
        };
        let regressed = match base.direction {
            Direction::LowerIsBetter => ratio > base.threshold,
            Direction::HigherIsBetter => ratio < 1.0 / base.threshold,
        };
        outcome.findings.push(GateFinding {
            name: name.clone(),
            baseline: base.value,
            current: cur.value,
            ratio,
            threshold: base.threshold,
            regressed,
        });
    }
    for name in current.metrics.keys() {
        if !baseline.metrics.contains_key(name) {
            outcome.new_metrics.push(name.clone());
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        let mut report = BenchReport::new();
        report.add(
            "figure1.q1.simulated_seconds",
            1.5,
            1.25,
            Direction::LowerIsBetter,
        );
        report.add(
            "operators.rows_per_simulated_second",
            4000.0,
            1.5,
            Direction::HigherIsBetter,
        );
        report.add("kernel.allocs_per_pair", 1.0, 2.0, Direction::LowerIsBetter);
        report
    }

    #[test]
    fn report_json_round_trips() {
        let report = sample_report();
        let parsed = BenchReport::parse(&report.to_json()).expect("parses");
        assert_eq!(parsed, report);
        assert!(report
            .to_json_value()
            .get("schema")
            .and_then(JsonValue::as_str)
            .is_some_and(|s| s == BENCH_SCHEMA));
    }

    #[test]
    fn parser_rejects_foreign_schemas_and_bad_metrics() {
        assert!(BenchReport::parse("{}").is_err());
        assert!(BenchReport::parse(r#"{"schema": "bench-pr5/v1", "metrics": {}}"#).is_err());
        assert!(BenchReport::parse(
            r#"{"schema": "bench-pr6/v1", "metrics": {"m": {"value": 1}}}"#
        )
        .is_err());
        // Threshold below 1 would make the gate fail on identical runs.
        assert!(BenchReport::parse(
            r#"{"schema": "bench-pr6/v1",
                "metrics": {"m": {"value": 1, "threshold": 0.5, "direction": "lower"}}}"#
        )
        .is_err());
    }

    #[test]
    fn identical_runs_pass_the_gate() {
        let report = sample_report();
        let outcome = compare(&report, &report);
        assert!(outcome.is_pass(), "{}", outcome.summary());
        assert!(outcome.regressions().is_empty());
    }

    #[test]
    fn a_2x_makespan_regression_fails_the_gate() {
        let baseline = sample_report();
        let mut current = sample_report();
        current
            .metrics
            .get_mut("figure1.q1.simulated_seconds")
            .unwrap()
            .value = 3.0; // 2x the baseline's 1.5s — past the 1.25x gate.
        let outcome = compare(&baseline, &current);
        assert!(!outcome.is_pass());
        let regressions = outcome.regressions();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].name, "figure1.q1.simulated_seconds");
        assert!((regressions[0].ratio - 2.0).abs() < 1e-9);
        assert!(outcome.summary().contains("FAIL"));
    }

    #[test]
    fn throughput_drops_fail_and_gains_pass() {
        let baseline = sample_report();
        let mut current = sample_report();
        current
            .metrics
            .get_mut("operators.rows_per_simulated_second")
            .unwrap()
            .value = 2000.0; // halved throughput against a 1.5x gate
        assert!(!compare(&baseline, &current).is_pass());
        current
            .metrics
            .get_mut("operators.rows_per_simulated_second")
            .unwrap()
            .value = 9000.0; // improvement never fails
        assert!(compare(&baseline, &current).is_pass());
    }

    #[test]
    fn small_drift_within_threshold_passes() {
        let baseline = sample_report();
        let mut current = sample_report();
        current
            .metrics
            .get_mut("figure1.q1.simulated_seconds")
            .unwrap()
            .value = 1.8; // ratio 1.2 < 1.25
        assert!(compare(&baseline, &current).is_pass());
    }

    #[test]
    fn missing_metric_fails_the_gate_and_new_metrics_are_noted() {
        let baseline = sample_report();
        let mut current = sample_report();
        current.metrics.remove("kernel.allocs_per_pair");
        current.add("brand.new", 1.0, 1.25, Direction::LowerIsBetter);
        let outcome = compare(&baseline, &current);
        assert!(!outcome.is_pass());
        assert!(outcome
            .regressions()
            .iter()
            .any(|f| f.name == "kernel.allocs_per_pair" && f.current.is_nan()));
        assert_eq!(outcome.new_metrics, vec!["brand.new".to_string()]);
        assert!(outcome.summary().contains("MISSING"));
        assert!(outcome.summary().contains("new metric"));
    }

    #[test]
    fn zero_baselines_compare_sanely() {
        let mut baseline = BenchReport::new();
        baseline.add("steals", 0.0, 1.25, Direction::LowerIsBetter);
        let mut same = BenchReport::new();
        same.add("steals", 0.0, 1.25, Direction::LowerIsBetter);
        assert!(compare(&baseline, &same).is_pass());
        let mut worse = BenchReport::new();
        worse.add("steals", 5.0, 1.25, Direction::LowerIsBetter);
        assert!(!compare(&baseline, &worse).is_pass());
    }
}
