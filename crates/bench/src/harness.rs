//! Shared experiment harness: cached datasets, query execution with
//! simulated-clock measurement.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use gradoop_core::{CypherEngine, MatchingConfig, Profile, QueryResult};
use gradoop_dataflow::{ExecutionConfig, ExecutionEnvironment, FaultConfig};
use gradoop_epgm::{properties, GradoopId, GraphHead, GraphStatistics, LogicalGraph};
use gradoop_ldbc::{generate, pick_names, GeneratedData, LdbcConfig, SelectivityNames};

/// The two dataset sizes of the paper's evaluation, rescaled ~1000×
/// (see DESIGN.md). The 10× ratio between them is preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScaleFactor {
    /// Paper "SF 10" (rescaled).
    Sf10,
    /// Paper "SF 100" (rescaled).
    Sf100,
}

impl ScaleFactor {
    /// Both scale factors, small first.
    pub fn all() -> [ScaleFactor; 2] {
        [ScaleFactor::Sf10, ScaleFactor::Sf100]
    }

    /// The generator configuration, scaled by `scale` (1.0 = default;
    /// `repro --quick` uses a smaller scale).
    pub fn config(&self, scale: f64) -> LdbcConfig {
        let persons = match self {
            ScaleFactor::Sf10 => 1500.0 * scale,
            ScaleFactor::Sf100 => 15000.0 * scale,
        };
        LdbcConfig::with_persons((persons as usize).max(50))
    }

    /// Paper-style label.
    pub fn label(&self) -> &'static str {
        match self {
            ScaleFactor::Sf10 => "SF 10",
            ScaleFactor::Sf100 => "SF 100",
        }
    }
}

/// A generated dataset with everything the experiments need, cached so the
/// (deterministic) generation and statistics run once per configuration.
pub struct Dataset {
    /// The generated elements.
    pub data: GeneratedData,
    /// Selectivity parameter names for this dataset.
    pub names: SelectivityNames,
    /// Pre-computed statistics (the paper computes them offline too).
    pub statistics: GraphStatistics,
}

fn cache() -> &'static Mutex<HashMap<usize, Arc<Dataset>>> {
    static CACHE: OnceLock<Mutex<HashMap<usize, Arc<Dataset>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns the (cached) dataset for `config`.
pub fn dataset(config: &LdbcConfig) -> Arc<Dataset> {
    if let Some(found) = cache().lock().unwrap().get(&config.persons) {
        return Arc::clone(found);
    }
    let data = generate(config);
    let names = pick_names(&data);
    // Statistics are computed once on a throw-away environment; the timed
    // runs use pre-computed statistics exactly like the paper.
    let env = ExecutionEnvironment::new(
        ExecutionConfig::with_workers(4).cost_model(gradoop_dataflow::CostModel::free()),
    );
    let graph = graph_on(&env, &data);
    let statistics = GraphStatistics::of(&graph);
    let dataset = Arc::new(Dataset {
        data,
        names,
        statistics,
    });
    cache()
        .lock()
        .unwrap()
        .insert(config.persons, Arc::clone(&dataset));
    dataset
}

/// Builds the logical graph for a dataset on `env`.
pub fn graph_on(env: &ExecutionEnvironment, data: &GeneratedData) -> LogicalGraph {
    LogicalGraph::from_data(
        env,
        GraphHead::new(GradoopId(0), "LdbcSocialNetwork", properties! {}),
        data.vertices.clone(),
        data.edges.clone(),
    )
}

/// One measured query execution.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Number of matches (the paper counts matches too).
    pub matches: usize,
    /// Simulated cluster time in seconds (per-stage makespans).
    pub simulated_seconds: f64,
    /// Wall-clock seconds on this machine.
    pub wall_seconds: f64,
    /// Bytes that crossed simulated worker boundaries.
    pub bytes_shuffled: u64,
    /// Bytes spilled to simulated disk by join build sides.
    pub bytes_spilled: u64,
    /// Records processed across all stages.
    pub records: u64,
    /// Recovery attempts consumed by injected faults (0 without faults).
    pub recovery_attempts: u64,
    /// Simulated seconds spent on recovery, included in
    /// [`simulated_seconds`](Measurement::simulated_seconds).
    pub recovery_seconds: f64,
    /// Bytes written to durable storage by iteration checkpoints.
    pub checkpoint_bytes: u64,
    /// Bytes re-read from durable storage during recovery.
    pub restored_bytes: u64,
    /// Morsels executed across all stages (0 unless work stealing is on).
    pub morsels: u64,
    /// Morsels that ran on a worker other than their partition's owner.
    pub stolen_morsels: u64,
    /// Order-independent digest over the rendered result rows. Two runs
    /// with equal digests returned byte-identical result sets — the chaos
    /// experiments compare faulted runs against fault-free ones with this.
    pub result_digest: u64,
}

/// Order-independent digest of a result set: every row is rendered, the
/// renderings are sorted and hashed. Equal digests ⇔ byte-identical rows.
pub fn result_digest(result: &QueryResult) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let rows = result.rows().expect("result rows materialize");
    let mut rendered: Vec<String> = rows.iter().map(|row| format!("{row:?}")).collect();
    rendered.sort_unstable();
    let mut hasher = DefaultHasher::new();
    rendered.hash(&mut hasher);
    hasher.finish()
}

/// Runs `query_text` on the dataset of `config` with `workers` simulated
/// workers and returns the measurement. Execution uses the default
/// (cluster-calibrated) cost model.
pub fn run_query(config: &LdbcConfig, workers: usize, query_text: &str) -> Measurement {
    run_query_with(config, workers, query_text, true)
}

/// [`run_query`] with an explicit partition-awareness switch. Passing
/// `false` disables FORWARD shuffle elision and loop-invariant candidate
/// caching, reproducing the naive always-reshuffle execution for the
/// shuffle-avoidance ablation; results are identical either way, only the
/// costs differ.
pub fn run_query_with(
    config: &LdbcConfig,
    workers: usize,
    query_text: &str,
    partition_aware: bool,
) -> Measurement {
    run_query_on(
        config,
        ExecutionConfig::with_workers(workers).partition_aware(partition_aware),
        query_text,
    )
}

/// [`run_query`] with morsel-driven work stealing switched on or off and an
/// explicit morsel size — the skew/ablation experiments' knob. Results are
/// byte-identical either way (compare `result_digest`); stealing only
/// changes how stage makespans are charged.
pub fn run_query_stealing(
    config: &LdbcConfig,
    workers: usize,
    query_text: &str,
    stealing: bool,
    morsel_size: usize,
) -> Measurement {
    run_query_on(
        config,
        ExecutionConfig::with_workers(workers)
            .work_stealing(stealing)
            .morsel_size(morsel_size),
        query_text,
    )
}

/// Shared measured-run core: executes `query_text` on the dataset of
/// `config` under an arbitrary [`ExecutionConfig`].
pub fn run_query_on(
    config: &LdbcConfig,
    exec_config: ExecutionConfig,
    query_text: &str,
) -> Measurement {
    let dataset = dataset(config);
    let env = ExecutionEnvironment::new(exec_config);
    let graph = graph_on(&env, &dataset.data);
    // Queries run against the label-indexed representation (paper §3.4),
    // like the paper's evaluation; building the index is preprocessing and
    // excluded from the measured time, exactly like the pre-computed
    // statistics.
    let graph = graph.to_indexed();
    let engine = CypherEngine::with_statistics(dataset.statistics.clone());

    env.reset_metrics();
    let wall_start = Instant::now();
    let result = engine
        .execute(
            &graph,
            query_text,
            &HashMap::new(),
            MatchingConfig::cypher_default(),
        )
        .unwrap_or_else(|e| panic!("query failed: {e}\n{query_text}"));
    let matches = result.count();
    let wall_seconds = wall_start.elapsed().as_secs_f64();
    let metrics = env.metrics();
    // Rendering rows for the digest runs extra (collect) stages; snapshot
    // the metrics first so the measurement covers the query alone.
    let result_digest = result_digest(&result);
    Measurement {
        matches,
        simulated_seconds: metrics.simulated_seconds,
        wall_seconds,
        bytes_shuffled: metrics.bytes_shuffled,
        bytes_spilled: metrics.bytes_spilled,
        records: metrics.records_in,
        recovery_attempts: metrics.recovery_attempts,
        recovery_seconds: metrics.recovery_seconds,
        checkpoint_bytes: metrics.checkpoint_bytes,
        restored_bytes: metrics.restored_bytes,
        morsels: metrics.morsels,
        stolen_morsels: metrics.stolen_morsels,
        result_digest,
    }
}

/// Runs `query_text` with the given fault configuration installed. The
/// faults are installed *after* the graph is loaded and indexed, so stage 0
/// of the failure schedule is the first stage of the measured query — the
/// same convention the chaos tests use. Exhausted retry budgets surface as
/// a panic carrying the classified [`CypherError::Execution`]
/// (gradoop_core::CypherError::Execution) message; survivable schedules
/// return a normal [`Measurement`] whose recovery fields are non-zero.
pub fn run_query_faulted(
    config: &LdbcConfig,
    workers: usize,
    query_text: &str,
    faults: FaultConfig,
) -> Measurement {
    let dataset = dataset(config);
    let env = ExecutionEnvironment::new(ExecutionConfig::with_workers(workers));
    let graph = graph_on(&env, &dataset.data).to_indexed();
    let engine = CypherEngine::with_statistics(dataset.statistics.clone());

    env.reset_metrics();
    env.install_faults(faults);
    let wall_start = Instant::now();
    let result = engine
        .execute(
            &graph,
            query_text,
            &HashMap::new(),
            MatchingConfig::cypher_default(),
        )
        .unwrap_or_else(|e| panic!("faulted query failed: {e}\n{query_text}"));
    let matches = result.count();
    let wall_seconds = wall_start.elapsed().as_secs_f64();
    let metrics = env.metrics();
    // Rendering the digest re-runs collection stages; disarm the injector
    // first so leftover schedule events cannot fire outside the measured
    // query.
    env.clear_faults();
    let result_digest = result_digest(&result);
    Measurement {
        matches,
        simulated_seconds: metrics.simulated_seconds,
        wall_seconds,
        bytes_shuffled: metrics.bytes_shuffled,
        bytes_spilled: metrics.bytes_spilled,
        records: metrics.records_in,
        recovery_attempts: metrics.recovery_attempts,
        recovery_seconds: metrics.recovery_seconds,
        checkpoint_bytes: metrics.checkpoint_bytes,
        restored_bytes: metrics.restored_bytes,
        morsels: metrics.morsels,
        stolen_morsels: metrics.stolen_morsels,
        result_digest,
    }
}

/// Runs `query_text` under PROFILE: same setup as [`run_query`] (indexed
/// graph, pre-computed statistics, default cost model), but returns the
/// per-operator [`Profile`] tree — actual cardinalities, selectivities,
/// simulated times and estimate-vs-actual errors — instead of aggregate
/// metrics. The paper's Table 3 intermediate-result counts are read off
/// this tree.
pub fn profile_query(config: &LdbcConfig, workers: usize, query_text: &str) -> Profile {
    let dataset = dataset(config);
    let env = ExecutionEnvironment::new(ExecutionConfig::with_workers(workers));
    let graph = graph_on(&env, &dataset.data).to_indexed();
    let engine = CypherEngine::with_statistics(dataset.statistics.clone());
    env.reset_metrics();
    engine
        .profile(
            &graph,
            query_text,
            &HashMap::new(),
            MatchingConfig::cypher_default(),
        )
        .unwrap_or_else(|e| panic!("query failed: {e}\n{query_text}"))
}

/// [`profile_query`] with a fault configuration installed after graph
/// loading and indexing (stage 0 = first query stage). The returned
/// [`Profile`] carries the recovery attempts, recovery seconds and
/// checkpoint/restore bytes charged by the injected faults.
pub fn profile_query_faulted(
    config: &LdbcConfig,
    workers: usize,
    query_text: &str,
    faults: FaultConfig,
) -> Profile {
    let dataset = dataset(config);
    let env = ExecutionEnvironment::new(ExecutionConfig::with_workers(workers));
    let graph = graph_on(&env, &dataset.data).to_indexed();
    let engine = CypherEngine::with_statistics(dataset.statistics.clone());
    env.reset_metrics();
    env.install_faults(faults);
    let profile = engine
        .profile(
            &graph,
            query_text,
            &HashMap::new(),
            MatchingConfig::cypher_default(),
        )
        .unwrap_or_else(|e| panic!("faulted query failed: {e}\n{query_text}"));
    env.clear_faults();
    profile
}

/// A statistics object with no label information: feeding it to the greedy
/// planner reproduces "no statistics-based operator reordering" (the Flink
/// default the paper improves on) for the planner ablation.
pub fn uniform_statistics(stats: &GraphStatistics) -> GraphStatistics {
    GraphStatistics {
        vertex_count: stats.vertex_count,
        edge_count: stats.edge_count,
        distinct_source_count: stats.vertex_count,
        distinct_target_count: stats.vertex_count,
        ..GraphStatistics::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradoop_ldbc::BenchmarkQuery;

    #[test]
    fn dataset_is_cached() {
        let config = LdbcConfig::with_persons(60);
        let a = dataset(&config);
        let b = dataset(&config);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn run_query_measures_something() {
        let config = LdbcConfig::with_persons(60);
        let names = dataset(&config).names.clone();
        let m = run_query(&config, 2, &BenchmarkQuery::Q1.text(Some(&names.low)));
        assert!(m.matches > 0);
        assert!(m.simulated_seconds > 0.0);
        assert!(m.wall_seconds > 0.0);
        assert!(m.records > 0);
    }

    #[test]
    fn partition_awareness_changes_costs_not_results() {
        let config = LdbcConfig::with_persons(60);
        let names = dataset(&config).names.clone();
        let text = BenchmarkQuery::Q3.text(Some(&names.low));
        let aware = run_query_with(&config, 4, &text, true);
        let naive = run_query_with(&config, 4, &text, false);
        assert_eq!(aware.matches, naive.matches);
        assert!(
            aware.bytes_shuffled <= naive.bytes_shuffled,
            "forwarding must not ship more than reshuffling ({} vs {})",
            aware.bytes_shuffled,
            naive.bytes_shuffled
        );
        assert!(aware.simulated_seconds <= naive.simulated_seconds);
    }

    #[test]
    fn faulted_run_recovers_with_identical_results() {
        use gradoop_dataflow::FailureSchedule;
        let config = LdbcConfig::with_persons(60);
        let names = dataset(&config).names.clone();
        let text = BenchmarkQuery::Q1.text(Some(&names.low));
        let clean = run_query(&config, 4, &text);
        let faults = FaultConfig::new(
            FailureSchedule::none()
                .crash_at_stage(0, 0)
                .lost_partition_at_stage(1, 1),
        );
        let faulted = run_query_faulted(&config, 4, &text, faults);
        assert_eq!(clean.matches, faulted.matches);
        assert_eq!(clean.result_digest, faulted.result_digest);
        assert_eq!(clean.recovery_attempts, 0);
        assert_eq!(faulted.recovery_attempts, 2);
        assert!(faulted.recovery_seconds > 0.0);
        assert!(faulted.simulated_seconds > clean.simulated_seconds);
    }

    #[test]
    fn faulted_profile_reports_recovery() {
        use gradoop_dataflow::FailureSchedule;
        let config = LdbcConfig::with_persons(60);
        let names = dataset(&config).names.clone();
        let text = BenchmarkQuery::Q1.text(Some(&names.low));
        let profile = profile_query_faulted(
            &config,
            4,
            &text,
            FaultConfig::new(FailureSchedule::none().crash_at_stage(0, 0)),
        );
        assert!(profile.recovery_attempts >= 1);
        assert!(profile.recovery_seconds > 0.0);
    }

    #[test]
    fn scale_factor_configs_keep_ratio() {
        let sf10 = ScaleFactor::Sf10.config(1.0);
        let sf100 = ScaleFactor::Sf100.config(1.0);
        assert_eq!(sf100.persons, 10 * sf10.persons);
        let quick = ScaleFactor::Sf100.config(0.1);
        assert_eq!(quick.persons, sf10.persons);
    }

    #[test]
    fn uniform_statistics_strip_label_information() {
        let config = LdbcConfig::with_persons(60);
        let stats = dataset(&config).statistics.clone();
        let uniform = uniform_statistics(&stats);
        assert_eq!(uniform.vertex_count, stats.vertex_count);
        assert!(uniform.vertex_count_by_label.is_empty());
    }
}
