#![warn(missing_docs)]

//! # gradoop-bench
//!
//! Benchmark harness for the Rust reproduction of *"Cypher-based Graph
//! Pattern Matching in Gradoop"* (GRADES'17).
//!
//! Every table and figure of the paper's evaluation has a regenerator:
//!
//! | Paper artifact | How to regenerate |
//! |---|---|
//! | Figure 3 (speedup over workers) | `repro --fig3`, `benches/fig3_speedup.rs` |
//! | Figure 4 (runtime vs data size) | `repro --fig4`, `benches/fig4_datasize.rs` |
//! | Figure 5 (runtime vs selectivity) | `repro --fig5`, `benches/fig5_selectivity.rs` |
//! | Table 3 (intermediate result sizes) | `repro --table3` (measured by `PROFILE`), `benches/table3_intermediate.rs` |
//! | Table 4 (runtimes/speedups grid) | `repro --table4` |
//! | Appendix cardinalities | `repro --cardinalities` |
//! | EXPLAIN / PROFILE plan trees | `repro --plans`, `repro --profiles` |
//! | §3.2/§3.3/§3.4 design ablations | `benches/ablation_*.rs`, `benches/micro_*.rs` |
//!
//! The `repro` binary prints paper-style tables using the **simulated
//! clock** of the dataflow engine (per-worker makespans, network, spill) —
//! that is what reproduces the cluster behaviour; wall time on a laptop
//! core is also reported.

pub mod figure1;
pub mod fuzz;
pub mod gate;
pub mod harness;
pub mod report;

pub use gate::{compare, BenchMetric, BenchReport, Direction, GateFinding, GateOutcome};
pub use harness::{
    dataset, profile_query, profile_query_faulted, result_digest, run_query, run_query_faulted,
    Measurement, ScaleFactor,
};
pub use report::Table;
