//! Minimal aligned-table rendering for the `repro` binary's paper-style
//! output.

/// A simple text table with a header row and aligned columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table; the first column is left-aligned, the rest right.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    out.push_str(&format!("{cell:<width$}", width = widths[i]));
                } else {
                    out.push_str(&format!("{cell:>width$}", width = widths[i]));
                }
            }
            out.push('\n');
        };
        render_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats seconds like the paper's tables (whole seconds above 10, one
/// decimal below).
pub fn seconds(value: f64) -> String {
    if value >= 10.0 {
        format!("{value:.0}")
    } else {
        format!("{value:.1}")
    }
}

/// Formats a speedup factor like the paper: `(2.1)`.
pub fn speedup(base: f64, value: f64) -> String {
    if value > 0.0 {
        format!("({:.1})", base / value)
    } else {
        "(-)".to_string()
    }
}

/// Formats a byte count with a binary-prefix unit (`4.2 MiB`).
pub fn bytes(value: u64) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut scaled = value as f64;
    let mut unit = 0;
    while scaled >= 1024.0 && unit < UNITS.len() - 1 {
        scaled /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{value} B")
    } else {
        format!("{scaled:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut table = Table::new(["query", "matches", "seconds"]);
        table.row(["Query 1", "63", "89"]);
        table.row(["Query 10", "784051", "1.5"]);
        let text = table.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("query"));
        assert!(lines[2].ends_with("89"));
        // All rows have equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut table = Table::new(["a", "b"]);
        table.row(["only one cell"]);
        assert!(table.render().contains("only one cell"));
    }

    #[test]
    fn second_formatting_matches_paper_style() {
        assert_eq!(seconds(89.4), "89");
        assert_eq!(seconds(1.53), "1.5");
        assert_eq!(speedup(89.0, 46.0), "(1.9)");
        assert_eq!(speedup(1.0, 0.0), "(-)");
    }

    #[test]
    fn byte_formatting_scales_units() {
        assert_eq!(bytes(0), "0 B");
        assert_eq!(bytes(512), "512 B");
        assert_eq!(bytes(4 * 1024 * 1024 + 200 * 1024), "4.2 MiB");
    }
}
