//! Pinned-seed conformance properties for the multi-clause read surface.
//!
//! Two layers of defence: a deterministic fuzzing campaign that must
//! exercise every clause production (`WITH`, `OPTIONAL MATCH`,
//! aggregation, `ORDER BY`/`SKIP`/`LIMIT`, `UNWIND`) and finish without a
//! single engine-vs-reference divergence, plus hand-pinned corner cases
//! for the semantics that are easiest to get wrong — NULL padding on
//! outer joins, the one-row global aggregate over an empty match,
//! `UNWIND` of NULL elements and empty lists, and `LIMIT 0`.

use std::collections::HashMap;

use gradoop_bench::fuzz::{
    random_cyclic_query, random_graph, run_case, run_conformance, AggSpec, CaseOutcome, CaseSpec,
    Cond, Dir, EdgePat, EdgeSpec, EngineConfig, FuzzConfig, GraphSpec, LitSpec, NodePat, QuerySpec,
    Rng, TailSpec, Term, VertexSpec, MORPHISMS,
};
use gradoop_core::{plan_query_with_mode, CypherEngine, Estimator, PlanMode};
use gradoop_cypher::{parse, QueryGraph};
use gradoop_dataflow::ExecutionEnvironment;
use gradoop_epgm::{GraphStatistics, PropertyValue};

fn vertex(id: u64, label: &str, p: i32) -> VertexSpec {
    VertexSpec {
        id,
        label: label.to_string(),
        properties: vec![("p".to_string(), PropertyValue::Int(p))],
    }
}

fn edge(id: u64, label: &str, source: u64, target: u64) -> EdgeSpec {
    EdgeSpec {
        id,
        label: label.to_string(),
        source,
        target,
        properties: Vec::new(),
    }
}

/// A two-vertex graph with a single `x` edge 1 → 2.
fn pair_graph() -> GraphSpec {
    GraphSpec {
        vertices: vec![vertex(1, "A", 10), vertex(2, "A", 20)],
        edges: vec![edge(1000, "x", 1, 2)],
    }
}

/// `MATCH (n0[:label])` with the given tail.
fn single_node_case(label: &str, tail: TailSpec) -> CaseSpec {
    let labels = if label.is_empty() {
        Vec::new()
    } else {
        vec![label.to_string()]
    };
    CaseSpec {
        graph: pair_graph(),
        query: QuerySpec {
            nodes: vec![NodePat {
                variable: Some("n0".to_string()),
                labels,
                props: Vec::new(),
            }],
            edges: Vec::new(),
            where_tree: None,
            tail: Some(tail),
        },
        matching: MORPHISMS[3], // ISO/ISO, the strictest combination
        indexed: false,
        workers: 2,
    }
}

fn assert_passes(case: &CaseSpec, expected_rows: usize) {
    match run_case(case) {
        CaseOutcome::Passed {
            reference_matches, ..
        } => assert_eq!(
            reference_matches,
            expected_rows,
            "wrong row count for {}",
            case.query.render()
        ),
        other => panic!("{}: {other:?}", case.query.render()),
    }
}

#[test]
fn pinned_campaign_covers_every_clause_and_stays_clean() {
    let report = run_conformance(&FuzzConfig {
        seed: 0xC0FFEE,
        cases: 300,
        archive: false,
    });
    assert!(report.is_clean(), "{}", report.summary());
    let f = &report.features;
    for (name, count) in [
        ("ORDER BY", f.order_by),
        ("SKIP/LIMIT", f.skip_limit),
        ("aggregate", f.aggregate),
        ("WITH+MATCH", f.with_clause),
        ("OPTIONAL MATCH", f.optional_match),
        ("UNWIND", f.unwind),
    ] {
        assert!(count > 0, "{name} never generated:\n{}", report.summary());
    }
    // The cyclic productions must make up a healthy share of the campaign
    // (~30% of draws divert to them) so every campaign pits the
    // worst-case-optimal plan against binary joins and the reference.
    assert!(
        f.cyclic >= report.cases / 10,
        "only {} of {} cases cyclic:\n{}",
        f.cyclic,
        report.cases,
        report.summary()
    );
}

/// `MATCH (n0:A)-[e0:x]->(n1:A), (n1)-[e1:x]->(n2:A), (n2)-[e2:x]->(n0)`
/// as a structured spec.
fn triangle_query() -> QuerySpec {
    QuerySpec {
        nodes: (0..3)
            .map(|i| NodePat {
                variable: Some(format!("n{i}")),
                labels: vec!["A".to_string()],
                props: Vec::new(),
            })
            .collect(),
        edges: [(0usize, 1usize), (1, 2), (2, 0)]
            .iter()
            .enumerate()
            .map(|(i, &(from, to))| EdgePat {
                variable: Some(format!("e{i}")),
                from,
                to,
                direction: Dir::Out,
                labels: vec!["x".to_string()],
                range: None,
                props: Vec::new(),
            })
            .collect(),
        where_tree: None,
        tail: None,
    }
}

/// A directed triangle 1 → 2 → 3 → 1 plus a distractor spoke 1 → 4.
fn triangle_graph() -> GraphSpec {
    GraphSpec {
        vertices: vec![
            vertex(1, "A", 10),
            vertex(2, "A", 20),
            vertex(3, "A", 30),
            vertex(4, "B", 40),
        ],
        edges: vec![
            edge(1000, "x", 1, 2),
            edge(1001, "x", 2, 3),
            edge(1002, "x", 3, 1),
            edge(1003, "x", 1, 4),
        ],
    }
}

#[test]
fn pinned_triangle_agrees_across_modes_morphisms_and_workers() {
    // run_case sweeps CostBased, ForceBinary and ForceWco on every matrix
    // point for cyclic tail-free cases — 16 configs (including the
    // vectorized axis) × 3 modes = 48 executions, each compared
    // row-for-row against the reference.
    for matching in MORPHISMS {
        for workers in 1..=3 {
            for indexed in [false, true] {
                let case = CaseSpec {
                    graph: triangle_graph(),
                    query: triangle_query(),
                    matching,
                    indexed,
                    workers,
                };
                match run_case(&case) {
                    CaseOutcome::Passed {
                        executions,
                        reference_matches,
                    } => {
                        assert_eq!(
                            executions, 48,
                            "cyclic sweep must cover 16 configs × 3 modes"
                        );
                        assert_eq!(reference_matches, 3, "three rotations of the triangle");
                    }
                    other => panic!("{}: {other:?}", case.query.render()),
                }
            }
        }
    }
}

/// `variable.key` as a WHERE term.
fn prop(variable: &str, key: &str) -> Term {
    Term::Prop {
        variable: variable.to_string(),
        key: key.to_string(),
    }
}

/// A graph whose `age` property covers the three states three-valued logic
/// must keep apart — present (1, 4), explicitly `NULL` (2), and absent
/// entirely (3) — wired into a cycle so patterns bind every combination.
fn kleene_graph() -> GraphSpec {
    let with_age = |id: u64, age: PropertyValue| VertexSpec {
        id,
        label: "A".to_string(),
        properties: vec![("age".to_string(), age)],
    };
    GraphSpec {
        vertices: vec![
            with_age(1, PropertyValue::Int(30)),
            with_age(2, PropertyValue::Null),
            VertexSpec {
                id: 3,
                label: "A".to_string(),
                properties: Vec::new(),
            },
            with_age(4, PropertyValue::Int(17)),
        ],
        edges: vec![
            edge(1000, "x", 1, 2),
            edge(1001, "x", 2, 3),
            edge(1002, "x", 3, 4),
            edge(1003, "x", 4, 1),
            edge(1004, "x", 1, 3),
        ],
    }
}

#[test]
fn pinned_kleene_predicates_agree_on_the_vectorized_matrix() {
    // The vectorized axis doubled the configuration sweep: 16 points, half
    // with the batched kernels on, and the label names the axis so archived
    // repros say which side diverged.
    let matrix = EngineConfig::matrix();
    assert_eq!(matrix.len(), 16, "matrix must cover the vectorized axis");
    assert_eq!(matrix.iter().filter(|c| c.vectorized).count(), 8);
    for config in &matrix {
        let tag = if config.vectorized { "vec+" } else { "vec-" };
        assert!(
            config.label().contains(tag),
            "label {:?} does not name the vectorized axis",
            config.label()
        );
    }

    // Hand-pinned NULL/missing-property predicates — the Kleene corners the
    // compiled truth tables must get right: unknown under NOT, unknown
    // absorbed by OR, two-valued IS [NOT] NULL over both NULL and absent
    // keys, comparisons against a NULL literal (never true), and
    // property-to-property comparisons where either side may be missing.
    let trees: Vec<Cond> = vec![
        // NOT (a.age < 21): unknown must stay unknown, not flip to true.
        Cond::Not(Box::new(Cond::Cmp {
            left: prop("a", "age"),
            op: "<",
            right: Term::Lit(LitSpec::Int(21)),
        })),
        // a.age = b.age OR a.age IS NULL: OR over unknown and true.
        Cond::Or(
            Box::new(Cond::Cmp {
                left: prop("a", "age"),
                op: "=",
                right: prop("b", "age"),
            }),
            Box::new(Cond::IsNull {
                variable: "a".to_string(),
                key: "age".to_string(),
                negated: false,
            }),
        ),
        // NOT (a.age IS NOT NULL AND a.age >= 18): negation over a
        // conjunction mixing two-valued and three-valued atoms.
        Cond::Not(Box::new(Cond::And(
            Box::new(Cond::IsNull {
                variable: "a".to_string(),
                key: "age".to_string(),
                negated: true,
            }),
            Box::new(Cond::Cmp {
                left: prop("a", "age"),
                op: ">=",
                right: Term::Lit(LitSpec::Int(18)),
            }),
        ))),
        // a.age <> NULL: comparisons against NULL are never true.
        Cond::Cmp {
            left: prop("a", "age"),
            op: "<>",
            right: Term::Lit(LitSpec::Null),
        },
        // b.age IS NULL OR NOT (b.age > a.age): missing keys on either
        // side of a cross-slot comparison under negation.
        Cond::Or(
            Box::new(Cond::IsNull {
                variable: "b".to_string(),
                key: "age".to_string(),
                negated: false,
            }),
            Box::new(Cond::Not(Box::new(Cond::Cmp {
                left: prop("b", "age"),
                op: ">",
                right: prop("a", "age"),
            }))),
        ),
    ];
    for (index, tree) in trees.into_iter().enumerate() {
        let case = CaseSpec {
            graph: kleene_graph(),
            query: QuerySpec {
                nodes: vec![
                    NodePat {
                        variable: Some("a".to_string()),
                        labels: vec!["A".to_string()],
                        props: Vec::new(),
                    },
                    NodePat {
                        variable: Some("b".to_string()),
                        labels: Vec::new(),
                        props: Vec::new(),
                    },
                ],
                edges: vec![EdgePat {
                    variable: Some("e".to_string()),
                    from: 0,
                    to: 1,
                    direction: Dir::Out,
                    labels: vec!["x".to_string()],
                    range: None,
                    props: Vec::new(),
                }],
                where_tree: Some(tree),
                tail: None,
            },
            matching: MORPHISMS[index % MORPHISMS.len()],
            indexed: index % 2 == 0,
            workers: 1 + index % 3,
        };
        let query_text = case.query.render();
        match run_case(&case) {
            CaseOutcome::Passed { executions, .. } => {
                assert_eq!(
                    executions, 16,
                    "{query_text}: one execution per matrix point"
                );
            }
            other => panic!("{query_text}: {other:?}"),
        }
    }
}

#[test]
fn pinned_seed_cyclic_cases_agree_across_all_plan_modes() {
    // Dedicated cyclic sweep at a pinned seed: random graphs against
    // random cycle-closing patterns (triangles, diamonds, 4-cliques,
    // undirected cycles), each run under all three planner modes on the
    // full engine matrix. Tails are stripped — the forced-mode sweep only
    // applies to the single-MATCH route.
    let mut rng = Rng::new(0xC0FFEE);
    let mut swept = 0usize;
    let mut attempts = 0usize;
    while swept < 12 {
        attempts += 1;
        assert!(attempts < 100, "generator kept producing rejected cases");
        let graph = random_graph(&mut rng);
        let mut query = random_cyclic_query(&mut rng);
        query.tail = None;
        let case = CaseSpec {
            graph,
            query,
            matching: MORPHISMS[swept % MORPHISMS.len()],
            indexed: swept.is_multiple_of(2),
            workers: 1 + swept % 3,
        };
        match run_case(&case) {
            CaseOutcome::Passed { executions, .. } => {
                assert_eq!(executions, 48, "{}", case.query.render());
                swept += 1;
            }
            CaseOutcome::Rejected { .. } => continue,
            CaseOutcome::Mismatch(mismatch) => panic!(
                "{} [{}]: engine {:?} vs reference {:?}",
                mismatch.query_text,
                mismatch.config.label(),
                mismatch.engine,
                mismatch.reference
            ),
        }
    }
}

#[test]
fn forced_wco_plans_the_intersect_and_forced_binary_never_does() {
    let env = ExecutionEnvironment::with_workers(2);
    let graph = triangle_graph().build(&env);
    let stats = GraphStatistics::of(&graph);
    let query_text = triangle_query().render();
    let query = QueryGraph::from_query(&parse(&query_text).unwrap()).unwrap();

    let wco = plan_query_with_mode(&query, &Estimator::new(&stats), PlanMode::ForceWco).unwrap();
    assert!(
        wco.describe(&query).contains("wco intersect"),
        "forced-WCO triangle plan has no intersect:\n{}",
        wco.describe(&query)
    );
    let binary =
        plan_query_with_mode(&query, &Estimator::new(&stats), PlanMode::ForceBinary).unwrap();
    assert!(
        !binary.describe(&query).contains("wco intersect"),
        "forced-binary plan contains an intersect:\n{}",
        binary.describe(&query)
    );

    // And the WCO execution reports its intersection work through PROFILE.
    let engine = CypherEngine::with_statistics(stats).with_plan_mode(PlanMode::ForceWco);
    let profile = engine
        .profile(&graph, &query_text, &HashMap::new(), MORPHISMS[3])
        .unwrap();
    let text = profile.to_text();
    assert!(
        text.contains("wco: intersected="),
        "PROFILE missing intersection counters:\n{text}"
    );
}

#[test]
fn global_aggregate_over_an_empty_match_yields_one_row() {
    // No vertex carries label B, so the match is empty — but a projection
    // of only aggregates must still produce exactly one row (count 0).
    let case = single_node_case(
        "B",
        TailSpec::Aggregate {
            group: Vec::new(),
            aggs: vec![
                AggSpec {
                    func: "count",
                    distinct: false,
                    arg: None,
                },
                AggSpec {
                    func: "sum",
                    distinct: false,
                    arg: Some(("n0".to_string(), "p".to_string())),
                },
            ],
        },
    );
    assert_passes(&case, 1);
}

#[test]
fn grouped_aggregates_agree_under_every_morphism() {
    for matching in MORPHISMS {
        let mut case = single_node_case(
            "A",
            TailSpec::Aggregate {
                group: vec![("n0".to_string(), "p".to_string())],
                aggs: vec![AggSpec {
                    func: "count",
                    distinct: true,
                    arg: Some(("n0".to_string(), "p".to_string())),
                }],
            },
        );
        case.matching = matching;
        assert_passes(&case, 2); // two distinct p values → two groups
    }
}

#[test]
fn optional_match_pads_anchors_without_the_extension() {
    // Vertex 1 has an outgoing x edge, vertex 2 does not: two result
    // rows, one NULL-padded.
    let case = single_node_case(
        "A",
        TailSpec::OptionalTail {
            anchor: "n0".to_string(),
            direction: Dir::Out,
            edge_label: Some("x".to_string()),
            node_label: None,
        },
    );
    assert_passes(&case, 2);
}

#[test]
fn with_barrier_feeds_a_second_match() {
    let case = single_node_case(
        "A",
        TailSpec::WithMatch {
            keep: vec!["n0".to_string()],
            anchor: "n0".to_string(),
            edge_label: Some("x".to_string()),
            node_label: None,
        },
    );
    assert_passes(&case, 1); // only vertex 1 extends over x
}

#[test]
fn unwind_keeps_null_elements_and_empty_lists_produce_no_rows() {
    // A NULL *element* of a list still yields a row (only an overall-NULL
    // source produces zero rows).
    let case = single_node_case(
        "A",
        TailSpec::Unwind {
            items: vec![
                LitSpec::Int(1),
                LitSpec::Null,
                LitSpec::Str("a".to_string()),
            ],
        },
    );
    assert_passes(&case, 6); // 2 anchors × 3 list elements

    let empty = single_node_case("A", TailSpec::Unwind { items: Vec::new() });
    assert_passes(&empty, 0);
}

#[test]
fn order_by_with_paging_agrees_including_limit_zero() {
    let case = single_node_case(
        "A",
        TailSpec::OrderLimit {
            distinct: false,
            keys: vec![("n0".to_string(), "p".to_string(), true)],
            skip: Some(1),
            limit: Some(3),
        },
    );
    assert_passes(&case, 1); // two rows, one skipped

    let zero = single_node_case(
        "A",
        TailSpec::OrderLimit {
            distinct: false,
            keys: vec![("n0".to_string(), "p".to_string(), false)],
            skip: None,
            limit: Some(0),
        },
    );
    assert_passes(&zero, 0);
}

#[test]
fn indexed_graphs_take_the_same_pipeline_route() {
    let mut case = single_node_case(
        "A",
        TailSpec::OrderLimit {
            distinct: true,
            keys: vec![("n0".to_string(), "p".to_string(), false)],
            skip: None,
            limit: Some(1),
        },
    );
    case.indexed = true;
    assert_passes(&case, 1);
}
