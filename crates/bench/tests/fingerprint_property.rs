//! Property: queries with equal shape fingerprints plan identically.
//!
//! The plan cache keys on the normalized query shape (all literals and
//! `$params` collapse to `?`), so its soundness rests on exactly this
//! property: two queries that only differ in literal *values* must produce
//! the same plan tree. The test fuzzes query specs, perturbs every literal,
//! and asserts that fingerprint-equal pairs plan to equal trees — plus
//! hand-pinned pairs for the normalizer bugs the shape fix closed
//! (`RETURN 1, 2` collapsing into `RETURN 1`, scientific notation leaking
//! mantissas, `$param` vs inline-literal spellings).

use std::collections::HashMap;

use gradoop_bench::fuzz::{random_graph, random_query, seed_from_env, Rng};
use gradoop_core::{
    normalize_query_shape, plan_query_with_mode, stable_digest, Estimator, PlanMode, QueryPlan,
};
use gradoop_cypher::{parse, Literal, QueryGraph};
use gradoop_dataflow::{CostModel, ExecutionConfig, ExecutionEnvironment};
use gradoop_epgm::GraphStatistics;

/// Statistics of one fixed fuzz graph — shared by every planned query so
/// plan differences can only come from the queries themselves.
fn statistics() -> GraphStatistics {
    let env =
        ExecutionEnvironment::new(ExecutionConfig::with_workers(2).cost_model(CostModel::free()));
    let graph = random_graph(&mut Rng::new(7)).build(&env);
    GraphStatistics::of(&graph)
}

/// Plans `text` cost-based against `statistics`; `None` when any stage
/// (parse, validation, planning) rejects the query.
fn plan_of(
    text: &str,
    params: &HashMap<String, Literal>,
    statistics: &GraphStatistics,
) -> Option<QueryPlan> {
    let ast = parse(text).ok()?;
    let query = QueryGraph::from_query_with_params(&ast, params).ok()?;
    plan_query_with_mode(&query, &Estimator::new(statistics), PlanMode::CostBased).ok()
}

/// Rewrites every integer literal in `text` to a different value, keeping
/// the shape identical. Quoted strings are left alone (changing them never
/// changes the shape either, but rewriting digits inside them would).
fn perturb_literals(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 8);
    let mut chars = text.chars().peekable();
    let mut in_string = false;
    let mut prev: Option<char> = None;
    while let Some(c) = chars.next() {
        if c == '\'' {
            in_string = !in_string;
            out.push(c);
            prev = Some(c);
            continue;
        }
        // Skip digits inside identifiers (`n0`), variable-length range
        // bounds (`*1..3` — same shape, but bounds are structural and
        // validated by the cache's graph signature, not the shape) and
        // fraction tails (the integer part is perturbed instead).
        let starts_number = !in_string
            && c.is_ascii_digit()
            && !prev.is_some_and(|p| p.is_ascii_alphanumeric() || p == '_' || p == '*' || p == '.');
        if starts_number {
            let mut digits = String::from(c);
            while let Some(&d) = chars.peek() {
                if d.is_ascii_digit() {
                    digits.push(d);
                    chars.next();
                } else {
                    break;
                }
            }
            // A different value with the same token class: append a digit.
            out.push_str(&digits);
            out.push('7');
            prev = Some('7');
            continue;
        }
        out.push(c);
        prev = Some(c);
    }
    out
}

#[test]
fn fuzzed_literal_perturbations_keep_fingerprint_and_plan() {
    let statistics = statistics();
    let mut rng = Rng::new(seed_from_env(0xF16E));
    let mut checked_pairs = 0usize;
    for _ in 0..300 {
        let spec = random_query(&mut rng);
        let text = spec.render();
        let perturbed = perturb_literals(&text);
        let shape = normalize_query_shape(&text);
        assert_eq!(
            shape,
            normalize_query_shape(&perturbed),
            "perturbing literal values changed the shape\n  original:  {text}\n  perturbed: {perturbed}"
        );
        let params = HashMap::new();
        let (Some(plan), Some(plan_perturbed)) = (
            plan_of(&text, &params, &statistics),
            plan_of(&perturbed, &params, &statistics),
        ) else {
            continue;
        };
        assert_eq!(
            plan.root, plan_perturbed.root,
            "equal fingerprints planned differently\n  original:  {text}\n  perturbed: {perturbed}"
        );
        if text != perturbed {
            checked_pairs += 1;
        }
    }
    assert!(
        checked_pairs >= 50,
        "only {checked_pairs} perturbed pairs planned — the property was barely exercised"
    );
}

#[test]
fn fuzzed_corpus_groups_by_fingerprint_consistently() {
    let statistics = statistics();
    let mut rng = Rng::new(seed_from_env(0x5AFE));
    let mut groups: HashMap<String, (String, String)> = HashMap::new();
    for _ in 0..300 {
        let spec = random_query(&mut rng);
        let text = spec.render();
        let shape = normalize_query_shape(&text);
        let fingerprint = stable_digest(&shape);
        let Some(plan) = plan_of(&text, &HashMap::new(), &statistics) else {
            continue;
        };
        let rendered = format!("{:?}", plan.root);
        match groups.get(&fingerprint) {
            None => {
                groups.insert(fingerprint, (shape, rendered));
            }
            Some((seen_shape, seen_plan)) => {
                assert_eq!(
                    seen_shape, &shape,
                    "64-bit fingerprint collision between distinct shapes in a 300-query corpus"
                );
                assert_eq!(
                    seen_plan, &rendered,
                    "same fingerprint, different plan for shape {shape}"
                );
            }
        }
    }
    assert!(!groups.is_empty());
}

type Params = HashMap<String, Literal>;

#[test]
fn pinned_pairs_share_fingerprints_and_plans() {
    let statistics = statistics();
    let no_params = Params::new();
    let pairs: [(&str, Params, &str, Params); 3] = [
        // Scientific notation and plain integers are one token class.
        (
            "MATCH (a:L0) WHERE a.p0 > 1e9 RETURN a.p0",
            no_params.clone(),
            "MATCH (a:L0) WHERE a.p0 > 23 RETURN a.p0",
            no_params.clone(),
        ),
        // Leading-dot floats normalize like any other number.
        (
            "MATCH (a:L0) WHERE a.p0 > .5 RETURN a.p0",
            no_params.clone(),
            "MATCH (a:L0) WHERE a.p0 > 0.75 RETURN a.p0",
            no_params.clone(),
        ),
        // `$param` and inline-literal property maps share one entry.
        (
            "MATCH (a:L0 {p0: $v}) RETURN a.p0",
            HashMap::from([("v".to_string(), Literal::Integer(42))]),
            "MATCH (a:L0 {p0: 42}) RETURN a.p0",
            no_params.clone(),
        ),
    ];
    for (left, left_params, right, right_params) in pairs {
        assert_eq!(
            normalize_query_shape(left),
            normalize_query_shape(right),
            "{left} vs {right}"
        );
        let left_plan = plan_of(left, &left_params, &statistics).expect(left);
        let right_plan = plan_of(right, &right_params, &statistics).expect(right);
        assert_eq!(left_plan.root, right_plan.root, "{left} vs {right}");
    }
}

#[test]
fn pinned_pairs_with_distinct_shapes_stay_distinct() {
    // The list-collapse bug made these collide before the fix; distinct
    // shapes must keep distinct fingerprints (and may plan differently).
    let distinct = [
        ("MATCH (a:L0) RETURN 1, 2", "MATCH (a:L0) RETURN 1"),
        (
            "MATCH (a:L0) WHERE a.p0 IN [1, 2] RETURN a",
            "MATCH (a:L0) WHERE a.p0 = 1 RETURN a",
        ),
        (
            "MATCH (a:L0)-[e:x]->(b:L0) RETURN a",
            "MATCH (a:L0)<-[e:x]-(b:L0) RETURN a",
        ),
    ];
    for (left, right) in distinct {
        assert_ne!(
            stable_digest(&normalize_query_shape(left)),
            stable_digest(&normalize_query_shape(right)),
            "{left} vs {right}"
        );
    }
}
