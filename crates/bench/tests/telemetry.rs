//! End-to-end telemetry tests: the Figure 1 timeline export must be valid
//! Chrome trace JSON with one lane event per operator stage per worker, the
//! query log must record every query, and the committed bench baseline must
//! parse and pass the regression gate against itself.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use gradoop_bench::figure1::{figure1_graph, FIGURE1_QUERIES};
use gradoop_bench::gate::{compare, BenchReport};
use gradoop_core::{CypherEngine, MatchingConfig, MemoryQueryLog, QueryOutcome};
use gradoop_dataflow::{
    chrome_trace_json, CollectingSink, ExecutionConfig, ExecutionEnvironment, JsonValue,
};

const WORKERS: usize = 4;

/// Runs every Figure 1 query with a collecting trace sink and a memory
/// query log, returning the captured trace and the log.
fn run_figure1() -> (gradoop_dataflow::CollectedTrace, Arc<MemoryQueryLog>) {
    let env = ExecutionEnvironment::new(ExecutionConfig::with_workers(WORKERS));
    let sink = Arc::new(CollectingSink::new());
    env.set_trace_sink(Some(sink.clone()));
    let graph = figure1_graph(&env);
    let log = Arc::new(MemoryQueryLog::new());
    let engine = CypherEngine::for_graph(&graph).with_query_log(log.clone());
    for query in FIGURE1_QUERIES {
        engine
            .execute(
                &graph,
                query,
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .unwrap_or_else(|e| panic!("{query}: {e}"));
    }
    (sink.snapshot(), log)
}

#[test]
fn figure1_timeline_is_valid_chrome_trace_with_one_event_per_stage_per_worker() {
    let (trace, _log) = run_figure1();
    assert!(!trace.stages.is_empty(), "queries must produce stages");
    let exported = chrome_trace_json(&trace);
    let value = JsonValue::parse(&exported).expect("timeline parses as JSON");
    let events = value
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    // One complete ("ph":"X") lane event per stage per worker on pid 0.
    let stage_events: Vec<&JsonValue> = events
        .iter()
        .filter(|e| e.get("cat").and_then(JsonValue::as_str) == Some("stage"))
        .collect();
    assert_eq!(
        stage_events.len(),
        trace.stages.len() * WORKERS,
        "one span per operator stage per worker"
    );
    let lanes: BTreeSet<i64> = stage_events
        .iter()
        .filter_map(|e| e.get("tid").and_then(JsonValue::as_f64))
        .map(|tid| tid as i64)
        .collect();
    assert_eq!(lanes, (0..WORKERS as i64).collect::<BTreeSet<i64>>());
    for event in &stage_events {
        assert_eq!(event.get("ph").and_then(JsonValue::as_str), Some("X"));
        let dur = event.get("dur").and_then(JsonValue::as_f64).unwrap();
        assert!(dur >= 0.0, "durations are non-negative microseconds");
    }
}

#[test]
fn figure1_queries_all_land_in_the_query_log_as_ok() {
    let (_trace, log) = run_figure1();
    let records = log.snapshot();
    assert_eq!(records.len(), FIGURE1_QUERIES.len());
    for record in &records {
        assert_eq!(record.outcome, QueryOutcome::Ok);
        assert_eq!(record.fingerprint.len(), 16);
        assert_eq!(record.plan_digest.len(), 16);
        assert!(!record.operators.is_empty());
        assert!(record.simulated_seconds > 0.0);
    }
    // The four queries have four distinct shapes.
    let shapes: BTreeSet<&str> = records.iter().map(|r| r.fingerprint.as_str()).collect();
    assert_eq!(shapes.len(), FIGURE1_QUERIES.len());
}

#[test]
fn committed_baseline_parses_and_passes_the_gate_against_itself() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr6_baseline.json");
    let text = std::fs::read_to_string(path).expect("committed BENCH_pr6_baseline.json exists");
    let baseline = BenchReport::parse(&text).expect("baseline parses under bench-pr6/v1 schema");
    assert!(!baseline.metrics.is_empty());
    let outcome = compare(&baseline, &baseline);
    assert!(outcome.is_pass(), "baseline vs itself must pass the gate");
    assert!(outcome.regressions().is_empty());
}
