//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! subset of criterion's API the workspace benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Statistics are
//! deliberately simple: each benchmark runs a fixed number of timed
//! iterations after a short warm-up and prints the mean wall-clock time.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimiser from deleting benchmarked
/// work. Thin wrapper over [`std::hint::black_box`].
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for the configured number of iterations and records
    /// the total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Entry point configured by [`criterion_group!`].
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }

    /// Benchmarks outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        let sample_size = self.sample_size;
        run_benchmark(&id.to_string(), sample_size, f);
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
    }

    /// Runs a benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (printing only; retained for API compatibility).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // One warm-up pass, then the timed pass.
    for iterations in [1, sample_size as u64] {
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if iterations > 1 {
            let mean = bencher.elapsed.as_secs_f64() / iterations as f64;
            println!("{label:<56} {:>12.3} us/iter", mean * 1e6);
        }
    }
}

/// Declares a benchmark group function, as in upstream criterion's simple
/// form: `criterion_group!(benches, bench_a, bench_b);`
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("count", |b| b.iter(|| count += 1));
        group.bench_with_input(BenchmarkId::new("add", 4), &4u64, |b, n| {
            b.iter(|| black_box(count + n))
        });
        group.finish();
        // warm-up (1) + timed (3) iterations for the counting benchmark
        assert_eq!(count, 4);
    }

    criterion_group!(smoke_group, sample_bench);

    #[test]
    fn group_macro_runs_targets() {
        smoke_group();
    }
}
