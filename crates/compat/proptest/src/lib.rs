//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace vendors a
//! miniature property-testing harness with the API subset its tests use:
//! [`Strategy`] with `prop_map` / `prop_flat_map` / `prop_recursive` /
//! `boxed`, [`arbitrary::any`], range and tuple strategies, simple
//! character-class string strategies, `collection::vec`, `option::of`, and
//! the [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros.
//!
//! Differences from upstream: **no shrinking** (failures report the case
//! seed instead of a minimal input), and generation is deterministic per
//! test (case `i` always sees the same inputs), so failures reproduce
//! without a regression file.

pub mod test_runner {
    //! Configuration and the deterministic generator driving each case.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64 generator used for input generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Deterministic per-case generator: case `i` of every run sees the
        /// same stream.
        pub fn for_case(case: u32) -> Self {
            TestRng::from_seed(0x243F_6A88_85A3_08D3 ^ u64::from(case).wrapping_mul(0x9E37_79B9))
        }

        /// Next 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value and derives a dependent strategy
        /// from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Recursive strategies: `recurse` receives the strategy built so
        /// far and returns a strategy for one more level of nesting. The
        /// `_desired_size` / `_expected_branch_size` hints of upstream
        /// proptest are accepted and ignored.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
        {
            let base = self.boxed();
            let mut current = base.clone();
            for _ in 0..depth {
                let deeper = recurse(current).boxed();
                let leaf = base.clone();
                current = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                    // One case in four stops early so leaves stay common.
                    if rng.next_u64() & 3 == 0 {
                        leaf.gen_value(rng)
                    } else {
                        deeper.gen_value(rng)
                    }
                }));
            }
            current
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            let inner = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| inner.gen_value(rng)))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V>(pub(crate) Rc<dyn Fn(&mut TestRng) -> V>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn gen_value(&self, _: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.gen_value(rng)).gen_value(rng)
        }
    }

    /// Uniform choice among alternatives (built by [`prop_oneof!`]).
    pub struct OneOf<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> OneOf<V> {
        /// Creates the choice; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            let index = rng.below(self.options.len());
            self.options[index].gen_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy over empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "strategy over empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "strategy over empty range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// String strategies from a `[class]{lo,hi}` pattern (the subset of
    /// proptest's regex syntax this workspace uses).
    impl Strategy for &'static str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            let (alphabet, lower, upper) = parse_class_pattern(self);
            let length = lower + rng.below(upper - lower + 1);
            (0..length)
                .map(|_| alphabet[rng.below(alphabet.len())])
                .collect()
        }
    }

    /// Parses `[chars]{lo,hi}` / `[chars]{n}` with `a-z` ranges inside the
    /// class. Panics on anything else — extend it when a test needs more.
    fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
        fn unsupported(pattern: &str) -> ! {
            panic!("unsupported string pattern {pattern:?} (expected `[chars]{{lo,hi}}`)")
        }
        let rest = match pattern.strip_prefix('[') {
            Some(rest) => rest,
            None => unsupported(pattern),
        };
        let (class, rest) = match rest.split_once(']') {
            Some(parts) => parts,
            None => unsupported(pattern),
        };
        let mut alphabet = Vec::new();
        let mut chars = class.chars().peekable();
        while let Some(c) = chars.next() {
            if chars.peek() == Some(&'-') {
                let mut clone = chars.clone();
                clone.next();
                if let Some(&end) = clone.peek().filter(|&&e| e != ']') {
                    chars = clone;
                    chars.next();
                    alphabet.extend((c..=end).filter(|ch| *ch as u32 >= c as u32));
                    continue;
                }
            }
            alphabet.push(c);
        }
        assert!(!alphabet.is_empty(), "empty character class in {pattern:?}");
        let counts = match rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
            Some(counts) => counts,
            None => unsupported(pattern),
        };
        let parse = |digits: &str| -> usize {
            match digits.parse() {
                Ok(n) => n,
                Err(_) => unsupported(pattern),
            }
        };
        let (lower, upper) = match counts.split_once(',') {
            Some((lo, hi)) => (parse(lo), parse(hi)),
            None => (parse(counts), parse(counts)),
        };
        assert!(lower <= upper, "bad repetition in {pattern:?}");
        (alphabet, lower, upper)
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.gen_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the workspace tests use.

    use std::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite floats spread over a wide range; avoids NaN/Inf edge
            // cases upstream `any::<f64>()` reserves for special runs.
            (rng.unit_f64() - 0.5) * 2.0e12
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! `vec(element, size)` collection strategy.

    use std::ops::{Range, RangeInclusive};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Accepted size arguments: `n`, `lo..hi`, `lo..=hi`.
    pub trait IntoSizeRange {
        /// Lower and upper bound (inclusive).
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "vec size over empty range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for vectors of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        lower: usize,
        upper: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let length = self.lower + rng.below(self.upper - self.lower + 1);
            (0..length).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// Generates vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lower, upper) = size.bounds();
        VecStrategy {
            element,
            lower,
            upper,
        }
    }
}

pub mod option {
    //! `of(strategy)` optional-value strategy.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Same 3:1 Some bias as upstream's default.
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.0.gen_value(rng))
            }
        }
    }

    /// `None` or `Some` of the inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod prelude {
    //! Everything the tests import with `use proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
///     #[test]
///     fn addition_commutes(a in 0..100i64, b in 0..100i64) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr); $($(#[$meta:meta])+ fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(case);
                    $(let $arg = $crate::strategy::Strategy::gen_value(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a [`proptest!`] case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($option)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn string_pattern_respects_class_and_length() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..200 {
            let s = Strategy::gen_value(&"[a-c]{1,4}", &mut rng);
            assert!((1..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(tree: &Tree) -> usize {
            match tree {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strategy = (0..10i64)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 4, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = TestRng::for_case(1);
        for _ in 0..200 {
            let tree = strategy.gen_value(&mut rng);
            assert!(depth(&tree) <= 7, "{tree:?}");
        }
    }

    proptest! {
        #[test]
        fn macro_draws_values_in_range(a in 5..10usize, flag in any::<bool>()) {
            prop_assert!((5..10).contains(&a));
            let _ = flag;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]
        #[test]
        fn config_override_applies(x in 0..100u64, ys in crate::collection::vec(0..9u64, 0..5)) {
            prop_assert!(x < 100);
            prop_assert!(ys.len() < 5);
            prop_assert_eq!(ys.iter().filter(|y| **y > 8).count(), 0);
        }
    }
}
