//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the small part of rand 0.8's API it actually uses: [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`]. The generator is SplitMix64 — statistically fine for
//! test-data generation, not cryptographic. Streams differ from upstream
//! rand, which only matters to code expecting upstream's exact sequences.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (uniform `[0, 1)` for floats, uniform over all values for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`. Panics on empty ranges.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 mantissa bits of the word, scaled to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges sampleable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value of the range from `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the small spans used here.
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele et al.), public domain reference constants.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut low = false;
        let mut high = false;
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            low |= u < 0.25;
            high |= u > 0.75;
        }
        assert!(low && high, "samples should spread over [0, 1)");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "{hits}");
    }
}
