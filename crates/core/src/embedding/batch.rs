//! Column-major batches of embeddings with selection vectors.
//!
//! An [`EmbeddingBatch`] is the vectorized view of one morsel of row
//! embeddings: identifier columns are gathered into contiguous `u64`
//! slices, property slots are dictionary-encoded (one `u32` code per row
//! into a batch-local dictionary of decoded values), and a **selection
//! vector** of row indices replaces materialized intermediate rows —
//! filters narrow the selection instead of copying survivors. Kernels
//! (`operators::vectorized`) therefore run as tight loops over primitive
//! slices the compiler can auto-vectorize, and only the rows still selected
//! at the end of an operator are materialized, by cloning the *original*
//! row embeddings. That late materialization is what makes the batched path
//! byte-identical to row-at-a-time execution by construction.
//!
//! Columns are materialized lazily: a kernel first *compiles* which columns
//! and property slots it touches, then asks the batch to gather exactly
//! those. Path columns have no `u64` representation ([`EmbeddingBatch::ids`]
//! returns `None` for them); kernels fall back to row access there.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use gradoop_epgm::PropertyValue;

use crate::embedding::{Embedding, EmbeddingMetaData, EntryType};

/// FNV-1a for the batch dictionary. Dictionary keys are raw property
/// encodings — a handful of bytes — where FNV's one-multiply-per-byte loop
/// beats SipHash by a wide margin, and the dictionary build is the batched
/// filter's dominant cost. Hash-flooding resistance is irrelevant here:
/// the map lives for one morsel and holds at most one entry per distinct
/// property value in it.
struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut hash = self.0;
        for &byte in bytes {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.0 = hash;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// A column-major view over one morsel of embeddings.
pub struct EmbeddingBatch<'a> {
    rows: &'a [Embedding],
    /// Per column: does it hold a path (no `u64` column representation)?
    path_column: Vec<bool>,
    /// Per column: the gathered identifiers, `None` until materialized (or
    /// forever, for path columns).
    id_columns: Vec<Option<Vec<u64>>>,
    /// Per property slot: one dictionary code per row, `None` until
    /// materialized.
    codes: Vec<Option<Vec<u32>>>,
    /// Dictionary: decoded value per code. Shared across all property
    /// slots; keyed on the raw encoded bytes, so each distinct value is
    /// decoded exactly once per batch.
    dict_values: Vec<PropertyValue>,
    dict_index: HashMap<&'a [u8], u32, BuildHasherDefault<FnvHasher>>,
    /// Indices of the rows still selected, in ascending row order.
    selection: Vec<u32>,
}

impl<'a> EmbeddingBatch<'a> {
    /// Wraps `rows` (one morsel) in a batch with an identity selection.
    /// Nothing is gathered yet — see [`EmbeddingBatch::ensure_ids`] and
    /// [`EmbeddingBatch::ensure_codes`].
    pub fn new(rows: &'a [Embedding], meta: &EmbeddingMetaData) -> Self {
        let path_column: Vec<bool> = meta
            .entries()
            .map(|(_, entry_type)| entry_type == EntryType::Path)
            .collect();
        EmbeddingBatch {
            rows,
            id_columns: vec![None; path_column.len()],
            path_column,
            codes: vec![None; meta.property_count()],
            dict_values: Vec::new(),
            dict_index: HashMap::default(),
            selection: (0..rows.len() as u32).collect(),
        }
    }

    /// The underlying row embeddings (all of them, selected or not).
    pub fn rows(&self) -> &'a [Embedding] {
        self.rows
    }

    /// Number of rows in the batch, selected or not.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of rows still selected.
    pub fn selected_count(&self) -> usize {
        self.selection.len()
    }

    /// `true` when no row is selected (including the empty batch).
    pub fn is_empty(&self) -> bool {
        self.selection.is_empty()
    }

    /// The selection vector: indices of the surviving rows, ascending.
    pub fn selection(&self) -> &[u32] {
        &self.selection
    }

    /// Gathers `column`'s identifiers into a contiguous `u64` column.
    /// Returns `false` for path columns, which have no `u64` representation.
    pub fn ensure_ids(&mut self, column: usize) -> bool {
        if self.path_column[column] {
            return false;
        }
        if self.id_columns[column].is_none() {
            self.id_columns[column] = Some(self.rows.iter().map(|row| row.id(column)).collect());
        }
        true
    }

    /// The gathered identifier column, indexed by row. `None` for path
    /// columns or columns not yet materialized.
    pub fn ids(&self, column: usize) -> Option<&[u64]> {
        self.id_columns[column].as_deref()
    }

    /// Dictionary-encodes property `slot`: one `u32` code per row into the
    /// batch-shared dictionary. Codes are assigned by first appearance of
    /// the raw encoded bytes, and each distinct encoding is decoded once.
    pub fn ensure_codes(&mut self, slot: usize) {
        if self.codes[slot].is_some() {
            return;
        }
        let mut column = Vec::with_capacity(self.rows.len());
        for row in self.rows {
            let raw = row.raw_property(slot);
            let code = match self.dict_index.get(raw) {
                Some(&code) => code,
                None => {
                    let code = self.dict_values.len() as u32;
                    self.dict_values.push(
                        PropertyValue::from_bytes(&raw[4..])
                            .expect("embedding property bytes are well-formed"),
                    );
                    self.dict_index.insert(raw, code);
                    code
                }
            };
            column.push(code);
        }
        self.codes[slot] = Some(column);
    }

    /// The code column of property `slot` (must be materialized), indexed
    /// by row.
    pub fn codes(&self, slot: usize) -> &[u32] {
        self.codes[slot]
            .as_deref()
            .expect("property slot not dictionary-encoded; call ensure_codes first")
    }

    /// The dictionary: decoded value per code.
    pub fn dict_values(&self) -> &[PropertyValue] {
        &self.dict_values
    }

    /// The decoded value behind `code`.
    pub fn dict_value(&self, code: u32) -> &PropertyValue {
        &self.dict_values[code as usize]
    }

    /// Narrows the selection to the rows `keep` accepts. `keep` sees row
    /// indices (usable to index materialized columns) in ascending order.
    pub fn retain(&mut self, mut keep: impl FnMut(u32) -> bool) {
        self.selection.retain(|&row| keep(row));
    }

    /// Replaces the selection wholesale. Indices must be ascending row
    /// indices into the batch; used by kernels that compute a selection in
    /// one pass (e.g. a gather after a join probe).
    pub fn set_selection(&mut self, selection: Vec<u32>) {
        debug_assert!(selection.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(selection
            .iter()
            .all(|&row| (row as usize) < self.rows.len()));
        self.selection = selection;
    }

    /// Iterates the selected row embeddings in row order.
    pub fn selected_rows(&self) -> impl Iterator<Item = &'a Embedding> + '_ {
        self.selection.iter().map(|&row| &self.rows[row as usize])
    }

    /// Materializes the surviving rows by cloning the original embeddings —
    /// the late-materialization step that keeps batched output
    /// byte-identical to the row-at-a-time path.
    pub fn emit_selected(&self, out: &mut Vec<Embedding>) {
        out.reserve(self.selection.len());
        out.extend(self.selected_rows().cloned());
    }

    /// This batch's contribution to the stage's batch statistics.
    pub fn stats(&self) -> gradoop_dataflow::BatchStats {
        gradoop_dataflow::BatchStats::one(self.rows.len() as u64, self.selection.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::EntryType;

    fn meta() -> EmbeddingMetaData {
        let mut meta = EmbeddingMetaData::new();
        meta.add_entry("a", EntryType::Vertex);
        meta.add_entry("p", EntryType::Path);
        meta.add_entry("b", EntryType::Vertex);
        meta.add_property("a", "name");
        meta.add_property("b", "age");
        meta
    }

    fn row(a: u64, via: &[u64], b: u64, name: &str, age: Option<i64>) -> Embedding {
        let mut e = Embedding::new();
        e.push_id(a);
        e.push_path(via);
        e.push_id(b);
        e.push_property(&PropertyValue::String(name.into()));
        e.push_property(&age.map(PropertyValue::Long).unwrap_or(PropertyValue::Null));
        e
    }

    #[test]
    fn id_columns_gather_contiguously_and_paths_opt_out() {
        let rows = vec![row(1, &[10], 2, "x", Some(5)), row(3, &[], 4, "y", Some(6))];
        let mut batch = EmbeddingBatch::new(&rows, &meta());
        assert!(batch.ensure_ids(0));
        assert!(batch.ensure_ids(2));
        assert!(!batch.ensure_ids(1), "path column has no u64 column");
        assert_eq!(batch.ids(0), Some(&[1, 3][..]));
        assert_eq!(batch.ids(2), Some(&[2, 4][..]));
        assert_eq!(batch.ids(1), None);
    }

    #[test]
    fn dictionary_dedups_across_rows_and_slots() {
        // "x" appears in both slots and in multiple rows; Null too.
        let rows = vec![
            row(1, &[], 2, "x", None),
            row(3, &[], 4, "x", Some(7)),
            row(5, &[], 6, "y", None),
        ];
        let mut batch = EmbeddingBatch::new(&rows, &meta());
        batch.ensure_codes(0);
        batch.ensure_codes(1);
        // Codes: slot 0 = [x, x, y], slot 1 = [Null, 7, Null].
        let c0 = batch.codes(0).to_vec();
        let c1 = batch.codes(1).to_vec();
        assert_eq!(c0[0], c0[1]);
        assert_ne!(c0[0], c0[2]);
        assert_eq!(c1[0], c1[2]);
        // 4 distinct encodings: "x", "y", Null, 7.
        assert_eq!(batch.dict_values().len(), 4);
        assert_eq!(batch.dict_value(c0[2]), &PropertyValue::String("y".into()));
        assert!(batch.dict_value(c1[0]).is_null());
    }

    #[test]
    fn selection_narrows_and_emits_original_rows() {
        let rows = vec![
            row(1, &[10], 2, "x", Some(5)),
            row(3, &[], 4, "y", Some(6)),
            row(5, &[7, 8], 6, "z", None),
        ];
        let mut batch = EmbeddingBatch::new(&rows, &meta());
        assert_eq!(batch.selection(), &[0, 1, 2]);
        batch.retain(|row| row != 1);
        assert_eq!(batch.selection(), &[0, 2]);
        assert_eq!(batch.selected_count(), 2);
        let mut out = Vec::new();
        batch.emit_selected(&mut out);
        // Byte-identical clones of the original rows, paths intact.
        assert_eq!(out, vec![rows[0].clone(), rows[2].clone()]);
        let stats = batch.stats();
        assert_eq!(
            (stats.batches, stats.rows_scanned, stats.rows_selected),
            (1, 3, 2)
        );
    }

    #[test]
    fn empty_and_fully_filtered_batches() {
        let rows: Vec<Embedding> = Vec::new();
        let mut batch = EmbeddingBatch::new(&rows, &meta());
        assert!(batch.is_empty());
        assert_eq!(batch.row_count(), 0);
        batch.ensure_codes(0); // must not panic on zero rows
        assert!(batch.codes(0).is_empty());
        let mut out = Vec::new();
        batch.emit_selected(&mut out);
        assert!(out.is_empty());

        let rows = vec![row(1, &[], 2, "x", Some(5))];
        let mut batch = EmbeddingBatch::new(&rows, &meta());
        batch.retain(|_| false);
        assert!(batch.is_empty());
        assert_eq!(batch.row_count(), 1);
        batch.emit_selected(&mut out);
        assert!(out.is_empty());
        let stats = batch.stats();
        assert_eq!((stats.rows_scanned, stats.rows_selected), (1, 0));
    }

    #[test]
    fn set_selection_replaces_wholesale() {
        let rows = vec![row(1, &[], 2, "x", Some(5)), row(3, &[], 4, "y", Some(6))];
        let mut batch = EmbeddingBatch::new(&rows, &meta());
        batch.set_selection(vec![1]);
        assert_eq!(batch.selected_rows().collect::<Vec<_>>(), vec![&rows[1]]);
    }
}
