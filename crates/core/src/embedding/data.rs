//! Byte-array embedding layout.
//!
//! ```text
//! idEntry   := (ID, id)        -- 1 flag byte + 8-byte identifier
//! pathEntry := (PATH, offset)  -- 1 flag byte + 8-byte offset into pathData
//! idData    := idEntry | pathEntry, ...
//! pathData  := (path-length, ids), ...
//! propData  := (byte-length, value), ...
//! ```
//!
//! Identifier and path entries are fixed-width, so the element bound to a
//! column is read in constant time. Property access walks length prefixes
//! until the requested index — exactly the trade-off described in the paper.
//!
//! The three sections live back-to-back in **one** byte buffer
//! (`[idData][pathData][propData]`, delimited by two offsets), so copying
//! or merging an embedding is a constant number of `memcpy`s into a single
//! allocation. [`Embedding::merge_into`] — the join kernel — computes the
//! exact output size first and writes into a caller-provided scratch
//! embedding whose buffer is reused across a whole morsel; rejected join
//! pairs therefore allocate nothing, and each emitted embedding costs
//! exactly one allocation (the clone out of the scratch buffer).

use gradoop_dataflow::Data;
use gradoop_epgm::PropertyValue;

/// Bytes per `idData` entry: flag + 64-bit payload.
pub const ID_ENTRY_SIZE: usize = 9;

const FLAG_ID: u8 = 0;
const FLAG_PATH: u8 = 1;

/// A decoded `idData` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry {
    /// Direct vertex/edge identifier.
    Id(u64),
    /// A variable-length path: the ordered identifiers between the path's
    /// start and end vertex (alternating edge, vertex, edge, ...).
    Path(Vec<u64>),
}

/// An embedding: one (partial) match of the query graph.
///
/// `buf[..path_start]` is the idData section, `buf[path_start..prop_start]`
/// the pathData section and `buf[prop_start..]` the propData section.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Embedding {
    buf: Vec<u8>,
    path_start: u32,
    prop_start: u32,
}

impl Embedding {
    /// The empty embedding.
    pub fn new() -> Self {
        Embedding::default()
    }

    /// Number of `idData` entries (columns).
    pub fn columns(&self) -> usize {
        self.path_start as usize / ID_ENTRY_SIZE
    }

    fn id_section(&self) -> &[u8] {
        &self.buf[..self.path_start as usize]
    }

    fn path_section(&self) -> &[u8] {
        &self.buf[self.path_start as usize..self.prop_start as usize]
    }

    fn prop_section(&self) -> &[u8] {
        &self.buf[self.prop_start as usize..]
    }

    /// Appends an identifier column.
    pub fn push_id(&mut self, id: u64) {
        let mut entry = [0u8; ID_ENTRY_SIZE];
        entry[0] = FLAG_ID;
        entry[1..].copy_from_slice(&id.to_le_bytes());
        let at = self.path_start as usize;
        self.buf.splice(at..at, entry);
        self.path_start += ID_ENTRY_SIZE as u32;
        self.prop_start += ID_ENTRY_SIZE as u32;
    }

    /// Appends a path column holding `ids` (the `via` identifiers).
    pub fn push_path(&mut self, ids: &[u64]) {
        let offset = (self.prop_start - self.path_start) as u64;
        let mut entry = [0u8; ID_ENTRY_SIZE];
        entry[0] = FLAG_PATH;
        entry[1..].copy_from_slice(&offset.to_le_bytes());
        let at = self.path_start as usize;
        self.buf.splice(at..at, entry);
        self.path_start += ID_ENTRY_SIZE as u32;
        self.prop_start += ID_ENTRY_SIZE as u32;

        let mut payload = Vec::with_capacity(4 + ids.len() * 8);
        payload.extend_from_slice(&(ids.len() as u32).to_le_bytes());
        for id in ids {
            payload.extend_from_slice(&id.to_le_bytes());
        }
        let at = self.prop_start as usize;
        self.buf.splice(at..at, payload);
        self.prop_start += (4 + ids.len() * 8) as u32;
    }

    /// Appends a property value.
    pub fn push_property(&mut self, value: &PropertyValue) {
        let bytes = value.to_bytes();
        self.buf
            .extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&bytes);
    }

    /// Appends a property slot from its already-encoded bytes (a
    /// length-prefixed range of another embedding's propData). Zero-decode
    /// path used by projection.
    pub(crate) fn push_raw_property(&mut self, encoded: &[u8]) {
        self.buf.extend_from_slice(encoded);
    }

    /// Copies the structural sections (ids and paths) into a fresh
    /// embedding whose buffer has exactly `extra_property_bytes` of spare
    /// capacity — the single allocation of a projection that follows up
    /// with [`Embedding::push_raw_property`] calls.
    pub(crate) fn clone_structure(&self, extra_property_bytes: usize) -> Embedding {
        let structural = self.prop_start as usize;
        let mut buf = Vec::with_capacity(structural + extra_property_bytes);
        buf.extend_from_slice(&self.buf[..structural]);
        Embedding {
            buf,
            path_start: self.path_start,
            prop_start: self.prop_start,
        }
    }

    /// The encoded (length-prefixed) bytes of the property at `index`.
    pub(crate) fn raw_property(&self, index: usize) -> &[u8] {
        let props = self.prop_section();
        let mut offset = 0;
        for _ in 0..index {
            let len = u32::from_le_bytes(props[offset..offset + 4].try_into().expect("prefix"));
            offset += 4 + len as usize;
        }
        let len = u32::from_le_bytes(props[offset..offset + 4].try_into().expect("prefix"));
        &props[offset..offset + 4 + len as usize]
    }

    fn entry_payload(&self, column: usize) -> (u8, u64) {
        let start = column * ID_ENTRY_SIZE;
        assert!(
            start + ID_ENTRY_SIZE <= self.path_start as usize,
            "column {column} out of bounds ({} columns)",
            self.columns()
        );
        let flag = self.buf[start];
        let payload = u64::from_le_bytes(
            self.buf[start + 1..start + ID_ENTRY_SIZE]
                .try_into()
                .expect("fixed width"),
        );
        (flag, payload)
    }

    /// `true` when the column holds a path.
    pub fn is_path(&self, column: usize) -> bool {
        self.entry_payload(column).0 == FLAG_PATH
    }

    /// The identifier in `column`. Panics if the column holds a path.
    pub fn id(&self, column: usize) -> u64 {
        let (flag, payload) = self.entry_payload(column);
        assert_eq!(flag, FLAG_ID, "column {column} holds a path, not an id");
        payload
    }

    /// Byte range of `column`'s path payload (count prefix + ids) within
    /// the pathData section.
    fn path_payload_range(&self, offset: usize) -> (usize, usize) {
        let paths = self.path_section();
        let count = u32::from_le_bytes(paths[offset..offset + 4].try_into().expect("length prefix"))
            as usize;
        (count, offset + 4)
    }

    /// The path identifiers in `column`. Panics if the column holds an id.
    pub fn path(&self, column: usize) -> Vec<u64> {
        self.path_iter(column).collect()
    }

    /// Number of identifiers in `column`'s path, without decoding them.
    pub fn path_len(&self, column: usize) -> usize {
        let (flag, payload) = self.entry_payload(column);
        assert_eq!(flag, FLAG_PATH, "column {column} holds an id, not a path");
        self.path_payload_range(payload as usize).0
    }

    /// Iterates `column`'s path identifiers without allocating. Panics if
    /// the column holds an id.
    pub fn path_iter(&self, column: usize) -> impl Iterator<Item = u64> + '_ {
        let (flag, payload) = self.entry_payload(column);
        assert_eq!(flag, FLAG_PATH, "column {column} holds an id, not a path");
        let (count, ids_at) = self.path_payload_range(payload as usize);
        let paths = self.path_section();
        (0..count).map(move |i| {
            let start = ids_at + i * 8;
            u64::from_le_bytes(paths[start..start + 8].try_into().expect("id"))
        })
    }

    /// The decoded entry in `column`.
    pub fn entry(&self, column: usize) -> Entry {
        if self.is_path(column) {
            Entry::Path(self.path(column))
        } else {
            Entry::Id(self.id(column))
        }
    }

    /// Number of property slots.
    pub fn property_count(&self) -> usize {
        let props = self.prop_section();
        let mut count = 0;
        let mut offset = 0;
        while offset < props.len() {
            let len =
                u32::from_le_bytes(props[offset..offset + 4].try_into().expect("length prefix"))
                    as usize;
            offset += 4 + len;
            count += 1;
        }
        count
    }

    /// The property value at `index`. Walks length prefixes (linear in the
    /// index, as in the paper).
    pub fn property(&self, index: usize) -> PropertyValue {
        let encoded = self.raw_property(index);
        PropertyValue::from_bytes(&encoded[4..]).expect("embedding property bytes are well-formed")
    }

    /// Merges `other` into `self` (the join operation): appends all of
    /// `other`'s columns except those in `skip_columns` (the join columns,
    /// already present on the left) and all its properties. Allocates the
    /// exact output size once; see [`Embedding::merge_into`] for the
    /// allocation-free kernel.
    pub fn merge(&self, other: &Embedding, skip_columns: &[usize]) -> Embedding {
        let mut out = Embedding::new();
        self.merge_into(other, skip_columns, &mut out);
        out
    }

    /// The merge kernel: writes `self ⋈ other` into `out`, reusing `out`'s
    /// buffer. Sizes every section exactly (reading only the fixed-width
    /// entries and path count prefixes of `other`), then copies each
    /// section with raw extends — kept path payloads move as single
    /// `memcpy`s and only their 8-byte offsets are rebased. No per-column
    /// or per-path allocation happens; `out` grows at most once.
    pub fn merge_into(&self, other: &Embedding, skip_columns: &[usize], out: &mut Embedding) {
        // Pass 1: exact size of the kept part of `other`.
        let mut kept_id_bytes = 0usize;
        let mut kept_path_bytes = 0usize;
        for column in 0..other.columns() {
            if skip_columns.contains(&column) {
                continue;
            }
            kept_id_bytes += ID_ENTRY_SIZE;
            let (flag, payload) = other.entry_payload(column);
            if flag == FLAG_PATH {
                let (count, _) = other.path_payload_range(payload as usize);
                kept_path_bytes += 4 + count * 8;
            }
        }
        let other_props = other.prop_section();
        let total = self.buf.len() + kept_id_bytes + kept_path_bytes + other_props.len();

        out.buf.clear();
        out.buf.reserve(total);

        // idData: left entries verbatim, kept right entries with rebased
        // path offsets.
        out.buf.extend_from_slice(self.id_section());
        let left_path_len = (self.prop_start - self.path_start) as u64;
        let mut appended_path_bytes = 0u64;
        for column in 0..other.columns() {
            if skip_columns.contains(&column) {
                continue;
            }
            let (flag, payload) = other.entry_payload(column);
            if flag == FLAG_ID {
                let start = column * ID_ENTRY_SIZE;
                out.buf
                    .extend_from_slice(&other.buf[start..start + ID_ENTRY_SIZE]);
            } else {
                out.buf.push(FLAG_PATH);
                out.buf
                    .extend_from_slice(&(left_path_len + appended_path_bytes).to_le_bytes());
                let (count, _) = other.path_payload_range(payload as usize);
                appended_path_bytes += 4 + count as u64 * 8;
            }
        }
        out.path_start = (self.path_start as usize + kept_id_bytes) as u32;

        // pathData: left payloads verbatim, kept right payloads as raw
        // ranges in column order (matching the offsets written above).
        out.buf.extend_from_slice(self.path_section());
        for column in 0..other.columns() {
            if skip_columns.contains(&column) {
                continue;
            }
            let (flag, payload) = other.entry_payload(column);
            if flag == FLAG_PATH {
                let (count, ids_at) = other.path_payload_range(payload as usize);
                let paths = other.path_section();
                out.buf
                    .extend_from_slice(&paths[ids_at - 4..ids_at + count * 8]);
            }
        }
        out.prop_start =
            (out.path_start as usize + self.path_section().len() + kept_path_bytes) as u32;

        // propData: both sides verbatim.
        out.buf.extend_from_slice(self.prop_section());
        out.buf.extend_from_slice(other_props);
        debug_assert_eq!(out.buf.len(), total);
    }

    /// Extends the embedding by one path column and (optionally) one id
    /// column — the expand step's emit — in a single exact-size allocation
    /// instead of clone + push_path + push_id.
    pub fn extend_with_path_and_id(&self, via: &[u64], end: Option<u64>) -> Embedding {
        let new_entries = ID_ENTRY_SIZE * (1 + usize::from(end.is_some()));
        let payload_bytes = 4 + via.len() * 8;
        let mut buf = Vec::with_capacity(self.buf.len() + new_entries + payload_bytes);

        buf.extend_from_slice(self.id_section());
        buf.push(FLAG_PATH);
        buf.extend_from_slice(&((self.prop_start - self.path_start) as u64).to_le_bytes());
        if let Some(end) = end {
            buf.push(FLAG_ID);
            buf.extend_from_slice(&end.to_le_bytes());
        }
        let path_start = (self.path_start as usize + new_entries) as u32;

        buf.extend_from_slice(self.path_section());
        buf.extend_from_slice(&(via.len() as u32).to_le_bytes());
        for id in via {
            buf.extend_from_slice(&id.to_le_bytes());
        }
        let prop_start = (path_start as usize + self.path_section().len() + payload_bytes) as u32;

        buf.extend_from_slice(self.prop_section());
        Embedding {
            buf,
            path_start,
            prop_start,
        }
    }

    /// All identifiers bound by the embedding, with path contents expanded.
    /// `vertex_columns` / `edge_columns` / `path_columns` select what to
    /// visit; path entries alternate edge, vertex, edge, ... identifiers.
    /// Does not allocate beyond what `out` needs to grow.
    pub fn collect_ids(&self, columns: &[usize], out: &mut Vec<u64>) {
        for &column in columns {
            let (flag, payload) = self.entry_payload(column);
            if flag == FLAG_ID {
                out.push(payload);
            } else {
                out.extend(self.path_iter(column));
            }
        }
    }
}

impl Data for Embedding {
    fn byte_size(&self) -> usize {
        12 + self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_columns_roundtrip() {
        let mut e = Embedding::new();
        e.push_id(10);
        e.push_id(u64::MAX);
        assert_eq!(e.columns(), 2);
        assert_eq!(e.id(0), 10);
        assert_eq!(e.id(1), u64::MAX);
        assert!(!e.is_path(0));
    }

    #[test]
    fn paper_example_layout() {
        // Second row of Table 2b: fv(p1)=10, path via [5,20,7], fv(p2)=30,
        // properties Alice / Bob.
        let mut e = Embedding::new();
        e.push_id(10);
        e.push_path(&[5, 20, 7]);
        e.push_id(30);
        e.push_property(&PropertyValue::String("Alice".into()));
        e.push_property(&PropertyValue::String("Bob".into()));

        assert_eq!(e.columns(), 3);
        assert_eq!(e.entry(0), Entry::Id(10));
        assert_eq!(e.entry(1), Entry::Path(vec![5, 20, 7]));
        assert_eq!(e.entry(2), Entry::Id(30));
        assert_eq!(e.property_count(), 2);
        assert_eq!(e.property(0), PropertyValue::String("Alice".into()));
        assert_eq!(e.property(1), PropertyValue::String("Bob".into()));
    }

    #[test]
    fn multiple_paths_use_offsets() {
        let mut e = Embedding::new();
        e.push_path(&[1, 2, 3]);
        e.push_path(&[]);
        e.push_path(&[9]);
        assert_eq!(e.path(0), vec![1, 2, 3]);
        assert_eq!(e.path(1), Vec::<u64>::new());
        assert_eq!(e.path(2), vec![9]);
        assert_eq!(e.path_len(0), 3);
        assert_eq!(e.path_len(1), 0);
        assert_eq!(e.path_iter(2).collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn interleaved_pushes_keep_sections_consistent() {
        // Pushing ids/paths/properties in arbitrary order must keep the
        // single-buffer sections delimited correctly.
        let mut e = Embedding::new();
        e.push_property(&PropertyValue::Long(1));
        e.push_id(10);
        e.push_path(&[7, 8]);
        e.push_property(&PropertyValue::Long(2));
        e.push_id(30);
        assert_eq!(e.columns(), 3);
        assert_eq!(e.id(0), 10);
        assert_eq!(e.path(1), vec![7, 8]);
        assert_eq!(e.id(2), 30);
        assert_eq!(e.property(0), PropertyValue::Long(1));
        assert_eq!(e.property(1), PropertyValue::Long(2));
    }

    #[test]
    fn merge_appends_and_skips_join_columns() {
        let mut left = Embedding::new();
        left.push_id(1);
        left.push_id(2);
        left.push_property(&PropertyValue::Long(100));

        let mut right = Embedding::new();
        right.push_id(2); // join column — skipped
        right.push_id(3);
        right.push_property(&PropertyValue::Long(200));

        let merged = left.merge(&right, &[0]);
        assert_eq!(merged.columns(), 3);
        assert_eq!(merged.id(0), 1);
        assert_eq!(merged.id(1), 2);
        assert_eq!(merged.id(2), 3);
        assert_eq!(merged.property_count(), 2);
        assert_eq!(merged.property(1), PropertyValue::Long(200));
    }

    #[test]
    fn merge_rebases_path_offsets() {
        let mut left = Embedding::new();
        left.push_path(&[1, 2]);
        left.push_id(7);

        let mut right = Embedding::new();
        right.push_id(7);
        right.push_path(&[3, 4, 5]);

        let merged = left.merge(&right, &[0]);
        assert_eq!(merged.columns(), 3);
        assert_eq!(merged.path(0), vec![1, 2]);
        assert_eq!(merged.id(1), 7);
        assert_eq!(merged.path(2), vec![3, 4, 5]);
    }

    #[test]
    fn merge_into_reuses_scratch_and_matches_merge() {
        let mut left = Embedding::new();
        left.push_path(&[1, 2]);
        left.push_id(7);
        left.push_property(&PropertyValue::String("a".into()));

        let mut right = Embedding::new();
        right.push_id(7);
        right.push_path(&[3]);
        right.push_property(&PropertyValue::String("b".into()));

        let mut scratch = Embedding::new();
        // Pre-dirty the scratch to prove it is fully overwritten.
        left.merge_into(&left, &[], &mut scratch);
        left.merge_into(&right, &[0], &mut scratch);
        assert_eq!(scratch, left.merge(&right, &[0]));
        assert_eq!(scratch.path(0), vec![1, 2]);
        assert_eq!(scratch.path(2), vec![3]);
        assert_eq!(scratch.property(1), PropertyValue::String("b".into()));
    }

    #[test]
    fn extend_with_path_and_id_matches_pushes() {
        let mut base = Embedding::new();
        base.push_id(10);
        base.push_path(&[4, 5]);
        base.push_property(&PropertyValue::Long(9));

        let mut expected = base.clone();
        expected.push_path(&[6, 7, 8]);
        expected.push_id(42);
        assert_eq!(base.extend_with_path_and_id(&[6, 7, 8], Some(42)), expected);

        let mut open = base.clone();
        open.push_path(&[6]);
        assert_eq!(base.extend_with_path_and_id(&[6], None), open);
    }

    #[test]
    fn collect_ids_expands_paths() {
        let mut e = Embedding::new();
        e.push_id(10);
        e.push_path(&[5, 20, 7]);
        e.push_id(30);
        let mut ids = Vec::new();
        e.collect_ids(&[0, 1, 2], &mut ids);
        assert_eq!(ids, vec![10, 5, 20, 7, 30]);
        ids.clear();
        e.collect_ids(&[2], &mut ids);
        assert_eq!(ids, vec![30]);
    }

    #[test]
    fn properties_of_all_types_roundtrip() {
        let values = [
            PropertyValue::Null,
            PropertyValue::Boolean(true),
            PropertyValue::Int(-1),
            PropertyValue::Long(1 << 40),
            PropertyValue::Double(2.5),
            PropertyValue::String("Uni Leipzig".into()),
            PropertyValue::List(vec![PropertyValue::Int(1)]),
        ];
        let mut e = Embedding::new();
        for v in &values {
            e.push_property(v);
        }
        for (i, v) in values.iter().enumerate() {
            assert_eq!(&e.property(i), v, "index {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_column_panics() {
        let e = Embedding::new();
        let _ = e.id(0);
    }

    #[test]
    #[should_panic(expected = "holds a path")]
    fn reading_path_as_id_panics() {
        let mut e = Embedding::new();
        e.push_path(&[1]);
        let _ = e.id(0);
    }

    #[test]
    fn byte_size_tracks_payload() {
        let mut e = Embedding::new();
        let empty = e.byte_size();
        e.push_id(1);
        assert_eq!(e.byte_size(), empty + ID_ENTRY_SIZE);
        e.push_path(&[1, 2]);
        assert_eq!(e.byte_size(), empty + 2 * ID_ENTRY_SIZE + 4 + 16);
    }
}
