//! Byte-array embedding layout.
//!
//! ```text
//! idEntry   := (ID, id)        -- 1 flag byte + 8-byte identifier
//! pathEntry := (PATH, offset)  -- 1 flag byte + 8-byte offset into pathData
//! idData    := idEntry | pathEntry, ...
//! pathData  := (path-length, ids), ...
//! propData  := (byte-length, value), ...
//! ```
//!
//! Identifier and path entries are fixed-width, so the element bound to a
//! column is read in constant time. Property access walks length prefixes
//! until the requested index — exactly the trade-off described in the paper.
//! Merging two embeddings (the join operation) is append-only for
//! identifiers and properties; path offsets of the appended side are rebased
//! in one pass.

use gradoop_dataflow::Data;
use gradoop_epgm::PropertyValue;

/// Bytes per `idData` entry: flag + 64-bit payload.
pub const ID_ENTRY_SIZE: usize = 9;

const FLAG_ID: u8 = 0;
const FLAG_PATH: u8 = 1;

/// A decoded `idData` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry {
    /// Direct vertex/edge identifier.
    Id(u64),
    /// A variable-length path: the ordered identifiers between the path's
    /// start and end vertex (alternating edge, vertex, edge, ...).
    Path(Vec<u64>),
}

/// An embedding: one (partial) match of the query graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Embedding {
    id_data: Vec<u8>,
    path_data: Vec<u8>,
    prop_data: Vec<u8>,
}

impl Embedding {
    /// The empty embedding.
    pub fn new() -> Self {
        Embedding::default()
    }

    /// Number of `idData` entries (columns).
    pub fn columns(&self) -> usize {
        self.id_data.len() / ID_ENTRY_SIZE
    }

    /// Appends an identifier column.
    pub fn push_id(&mut self, id: u64) {
        self.id_data.push(FLAG_ID);
        self.id_data.extend_from_slice(&id.to_le_bytes());
    }

    /// Appends a path column holding `ids` (the `via` identifiers).
    pub fn push_path(&mut self, ids: &[u64]) {
        let offset = self.path_data.len() as u64;
        self.id_data.push(FLAG_PATH);
        self.id_data.extend_from_slice(&offset.to_le_bytes());
        self.path_data
            .extend_from_slice(&(ids.len() as u32).to_le_bytes());
        for id in ids {
            self.path_data.extend_from_slice(&id.to_le_bytes());
        }
    }

    /// Appends a property value.
    pub fn push_property(&mut self, value: &PropertyValue) {
        let bytes = value.to_bytes();
        self.prop_data
            .extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        self.prop_data.extend_from_slice(&bytes);
    }

    fn entry_payload(&self, column: usize) -> (u8, u64) {
        let start = column * ID_ENTRY_SIZE;
        assert!(
            start + ID_ENTRY_SIZE <= self.id_data.len(),
            "column {column} out of bounds ({} columns)",
            self.columns()
        );
        let flag = self.id_data[start];
        let payload = u64::from_le_bytes(
            self.id_data[start + 1..start + ID_ENTRY_SIZE]
                .try_into()
                .expect("fixed width"),
        );
        (flag, payload)
    }

    /// `true` when the column holds a path.
    pub fn is_path(&self, column: usize) -> bool {
        self.entry_payload(column).0 == FLAG_PATH
    }

    /// The identifier in `column`. Panics if the column holds a path.
    pub fn id(&self, column: usize) -> u64 {
        let (flag, payload) = self.entry_payload(column);
        assert_eq!(flag, FLAG_ID, "column {column} holds a path, not an id");
        payload
    }

    /// The path identifiers in `column`. Panics if the column holds an id.
    pub fn path(&self, column: usize) -> Vec<u64> {
        let (flag, payload) = self.entry_payload(column);
        assert_eq!(flag, FLAG_PATH, "column {column} holds an id, not a path");
        let offset = payload as usize;
        let count = u32::from_le_bytes(
            self.path_data[offset..offset + 4]
                .try_into()
                .expect("length prefix"),
        ) as usize;
        (0..count)
            .map(|i| {
                let start = offset + 4 + i * 8;
                u64::from_le_bytes(self.path_data[start..start + 8].try_into().expect("id"))
            })
            .collect()
    }

    /// The decoded entry in `column`.
    pub fn entry(&self, column: usize) -> Entry {
        if self.is_path(column) {
            Entry::Path(self.path(column))
        } else {
            Entry::Id(self.id(column))
        }
    }

    /// Number of property slots.
    pub fn property_count(&self) -> usize {
        let mut count = 0;
        let mut offset = 0;
        while offset < self.prop_data.len() {
            let len = u32::from_le_bytes(
                self.prop_data[offset..offset + 4]
                    .try_into()
                    .expect("length prefix"),
            ) as usize;
            offset += 4 + len;
            count += 1;
        }
        count
    }

    /// The property value at `index`. Walks length prefixes (linear in the
    /// index, as in the paper).
    pub fn property(&self, index: usize) -> PropertyValue {
        let mut offset = 0;
        for _ in 0..index {
            let len = u32::from_le_bytes(
                self.prop_data[offset..offset + 4]
                    .try_into()
                    .expect("length prefix"),
            ) as usize;
            offset += 4 + len;
        }
        let len = u32::from_le_bytes(
            self.prop_data[offset..offset + 4]
                .try_into()
                .expect("length prefix"),
        ) as usize;
        PropertyValue::from_bytes(&self.prop_data[offset + 4..offset + 4 + len])
            .expect("embedding property bytes are well-formed")
    }

    /// Merges `other` into `self` (the join operation): appends all of
    /// `other`'s columns except those in `skip_columns` (the join columns,
    /// already present on the left) and all its properties. Path offsets of
    /// the appended side are rebased; identifiers and properties are copied
    /// with `memcpy`-style extends.
    pub fn merge(&self, other: &Embedding, skip_columns: &[usize]) -> Embedding {
        let mut result = self.clone();
        for column in 0..other.columns() {
            if skip_columns.contains(&column) {
                continue;
            }
            let (flag, payload) = other.entry_payload(column);
            if flag == FLAG_ID {
                result.push_id(payload);
            } else {
                // Rebase the offset into the merged pathData.
                let path = other.path(column);
                result.push_path(&path);
            }
        }
        result.prop_data.extend_from_slice(&other.prop_data);
        result
    }

    /// All identifiers bound by the embedding, with path contents expanded.
    /// `vertex_columns` / `edge_columns` / `path_columns` select what to
    /// visit; path entries alternate edge, vertex, edge, ... identifiers.
    pub fn collect_ids(&self, columns: &[usize], out: &mut Vec<u64>) {
        for &column in columns {
            match self.entry(column) {
                Entry::Id(id) => out.push(id),
                Entry::Path(ids) => out.extend(ids),
            }
        }
    }
}

impl Data for Embedding {
    fn byte_size(&self) -> usize {
        12 + self.id_data.len() + self.path_data.len() + self.prop_data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_columns_roundtrip() {
        let mut e = Embedding::new();
        e.push_id(10);
        e.push_id(u64::MAX);
        assert_eq!(e.columns(), 2);
        assert_eq!(e.id(0), 10);
        assert_eq!(e.id(1), u64::MAX);
        assert!(!e.is_path(0));
    }

    #[test]
    fn paper_example_layout() {
        // Second row of Table 2b: fv(p1)=10, path via [5,20,7], fv(p2)=30,
        // properties Alice / Bob.
        let mut e = Embedding::new();
        e.push_id(10);
        e.push_path(&[5, 20, 7]);
        e.push_id(30);
        e.push_property(&PropertyValue::String("Alice".into()));
        e.push_property(&PropertyValue::String("Bob".into()));

        assert_eq!(e.columns(), 3);
        assert_eq!(e.entry(0), Entry::Id(10));
        assert_eq!(e.entry(1), Entry::Path(vec![5, 20, 7]));
        assert_eq!(e.entry(2), Entry::Id(30));
        assert_eq!(e.property_count(), 2);
        assert_eq!(e.property(0), PropertyValue::String("Alice".into()));
        assert_eq!(e.property(1), PropertyValue::String("Bob".into()));
    }

    #[test]
    fn multiple_paths_use_offsets() {
        let mut e = Embedding::new();
        e.push_path(&[1, 2, 3]);
        e.push_path(&[]);
        e.push_path(&[9]);
        assert_eq!(e.path(0), vec![1, 2, 3]);
        assert_eq!(e.path(1), Vec::<u64>::new());
        assert_eq!(e.path(2), vec![9]);
    }

    #[test]
    fn merge_appends_and_skips_join_columns() {
        let mut left = Embedding::new();
        left.push_id(1);
        left.push_id(2);
        left.push_property(&PropertyValue::Long(100));

        let mut right = Embedding::new();
        right.push_id(2); // join column — skipped
        right.push_id(3);
        right.push_property(&PropertyValue::Long(200));

        let merged = left.merge(&right, &[0]);
        assert_eq!(merged.columns(), 3);
        assert_eq!(merged.id(0), 1);
        assert_eq!(merged.id(1), 2);
        assert_eq!(merged.id(2), 3);
        assert_eq!(merged.property_count(), 2);
        assert_eq!(merged.property(1), PropertyValue::Long(200));
    }

    #[test]
    fn merge_rebases_path_offsets() {
        let mut left = Embedding::new();
        left.push_path(&[1, 2]);
        left.push_id(7);

        let mut right = Embedding::new();
        right.push_id(7);
        right.push_path(&[3, 4, 5]);

        let merged = left.merge(&right, &[0]);
        assert_eq!(merged.columns(), 3);
        assert_eq!(merged.path(0), vec![1, 2]);
        assert_eq!(merged.id(1), 7);
        assert_eq!(merged.path(2), vec![3, 4, 5]);
    }

    #[test]
    fn collect_ids_expands_paths() {
        let mut e = Embedding::new();
        e.push_id(10);
        e.push_path(&[5, 20, 7]);
        e.push_id(30);
        let mut ids = Vec::new();
        e.collect_ids(&[0, 1, 2], &mut ids);
        assert_eq!(ids, vec![10, 5, 20, 7, 30]);
        ids.clear();
        e.collect_ids(&[2], &mut ids);
        assert_eq!(ids, vec![30]);
    }

    #[test]
    fn properties_of_all_types_roundtrip() {
        let values = [
            PropertyValue::Null,
            PropertyValue::Boolean(true),
            PropertyValue::Int(-1),
            PropertyValue::Long(1 << 40),
            PropertyValue::Double(2.5),
            PropertyValue::String("Uni Leipzig".into()),
            PropertyValue::List(vec![PropertyValue::Int(1)]),
        ];
        let mut e = Embedding::new();
        for v in &values {
            e.push_property(v);
        }
        for (i, v) in values.iter().enumerate() {
            assert_eq!(&e.property(i), v, "index {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_column_panics() {
        let e = Embedding::new();
        let _ = e.id(0);
    }

    #[test]
    #[should_panic(expected = "holds a path")]
    fn reading_path_as_id_panics() {
        let mut e = Embedding::new();
        e.push_path(&[1]);
        let _ = e.id(0);
    }

    #[test]
    fn byte_size_tracks_payload() {
        let mut e = Embedding::new();
        let empty = e.byte_size();
        e.push_id(1);
        assert_eq!(e.byte_size(), empty + ID_ENTRY_SIZE);
        e.push_path(&[1, 2]);
        assert_eq!(e.byte_size(), empty + 2 * ID_ENTRY_SIZE + 4 + 16);
    }
}
