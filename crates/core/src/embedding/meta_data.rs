//! Embedding meta data: the mapping between query variables/properties and
//! embedding column/property indices.
//!
//! The meta data is maintained by the query operators at *plan* time and is
//! deliberately **not** part of the embedding itself (paper Section 3.3) —
//! every embedding of a dataset shares the same layout, so shipping the
//! mapping with each row would waste network bandwidth.

use gradoop_epgm::{Label, PropertyValue};

use crate::embedding::Embedding;

/// What kind of element a column binds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryType {
    /// A vertex identifier.
    Vertex,
    /// An edge identifier.
    Edge,
    /// A variable-length path (edge, vertex, edge, ... identifiers).
    Path,
}

/// Column/property layout shared by all embeddings of a dataset.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EmbeddingMetaData {
    /// Column index → (variable, type).
    entries: Vec<(String, EntryType)>,
    /// Property index → (variable, property key).
    properties: Vec<(String, String)>,
}

impl EmbeddingMetaData {
    /// Empty layout.
    pub fn new() -> Self {
        EmbeddingMetaData::default()
    }

    /// Appends a column for `variable`, returning its index.
    pub fn add_entry(&mut self, variable: &str, entry_type: EntryType) -> usize {
        debug_assert!(
            self.column(variable).is_none(),
            "variable {variable} already has a column"
        );
        self.entries.push((variable.to_string(), entry_type));
        self.entries.len() - 1
    }

    /// Appends a property slot for `variable.key`, returning its index.
    pub fn add_property(&mut self, variable: &str, key: &str) -> usize {
        self.properties
            .push((variable.to_string(), key.to_string()));
        self.properties.len() - 1
    }

    /// Number of columns.
    pub fn columns(&self) -> usize {
        self.entries.len()
    }

    /// Number of property slots.
    pub fn property_count(&self) -> usize {
        self.properties.len()
    }

    /// Column index of `variable`.
    pub fn column(&self, variable: &str) -> Option<usize> {
        self.entries.iter().position(|(v, _)| v == variable)
    }

    /// Type of the column bound to `variable`.
    pub fn entry_type(&self, variable: &str) -> Option<EntryType> {
        self.entries
            .iter()
            .find(|(v, _)| v == variable)
            .map(|(_, t)| *t)
    }

    /// Property index of `variable.key`.
    pub fn property_index(&self, variable: &str, key: &str) -> Option<usize> {
        self.properties
            .iter()
            .position(|(v, k)| v == variable && k == key)
    }

    /// `true` if `variable` has a column.
    pub fn is_bound(&self, variable: &str) -> bool {
        self.column(variable).is_some()
    }

    /// Iterates (variable, type) per column.
    pub fn entries(&self) -> impl Iterator<Item = (&str, EntryType)> {
        self.entries.iter().map(|(v, t)| (v.as_str(), *t))
    }

    /// Iterates (variable, key) per property slot.
    pub fn properties(&self) -> impl Iterator<Item = (&str, &str)> {
        self.properties
            .iter()
            .map(|(v, k)| (v.as_str(), k.as_str()))
    }

    /// Columns holding vertex identifiers.
    pub fn vertex_columns(&self) -> Vec<usize> {
        self.columns_of(EntryType::Vertex)
    }

    /// Columns holding edge identifiers.
    pub fn edge_columns(&self) -> Vec<usize> {
        self.columns_of(EntryType::Edge)
    }

    /// Columns holding paths.
    pub fn path_columns(&self) -> Vec<usize> {
        self.columns_of(EntryType::Path)
    }

    fn columns_of(&self, wanted: EntryType) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, (_, t))| *t == wanted)
            .map(|(i, _)| i)
            .collect()
    }

    /// The layout resulting from merging a `right` embedding into a `left`
    /// one, skipping `skip_right_columns` (the join columns). Both result
    /// vectors are allocated at their exact final capacity up front.
    pub fn merge(&self, right: &EmbeddingMetaData, skip_right_columns: &[usize]) -> Self {
        let kept = (0..right.entries.len())
            .filter(|column| !skip_right_columns.contains(column))
            .count();
        let mut entries = Vec::with_capacity(self.entries.len() + kept);
        entries.extend(self.entries.iter().cloned());
        entries.extend(
            right
                .entries
                .iter()
                .enumerate()
                .filter(|(column, _)| !skip_right_columns.contains(column))
                .map(|(_, entry)| entry.clone()),
        );
        let mut properties = Vec::with_capacity(self.properties.len() + right.properties.len());
        properties.extend(self.properties.iter().cloned());
        properties.extend(right.properties.iter().cloned());
        EmbeddingMetaData {
            entries,
            properties,
        }
    }
}

/// [`gradoop_cypher::Bindings`] view of one embedding under a layout, used
/// to evaluate cross-variable predicates on embeddings.
pub struct EmbeddingBindings<'a> {
    /// The embedding.
    pub embedding: &'a Embedding,
    /// Its layout.
    pub meta: &'a EmbeddingMetaData,
}

impl gradoop_cypher::Bindings for EmbeddingBindings<'_> {
    fn property(&self, variable: &str, key: &str) -> Option<PropertyValue> {
        let index = self.meta.property_index(variable, key)?;
        let value = self.embedding.property(index);
        (!value.is_null()).then_some(value)
    }

    fn label(&self, _variable: &str) -> Option<Label> {
        // Labels are resolved by the element-centric leaf operators; they
        // are not materialized into embeddings.
        None
    }

    fn element_id(&self, variable: &str) -> Option<u64> {
        let column = self.meta.column(variable)?;
        (!self.embedding.is_path(column)).then(|| self.embedding.id(column))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_meta_data_example() {
        // {p1: 0, p1.name: 0} — variable p1 at column 0, its name at
        // property 0.
        let mut meta = EmbeddingMetaData::new();
        assert_eq!(meta.add_entry("p1", EntryType::Vertex), 0);
        assert_eq!(meta.add_property("p1", "name"), 0);
        assert_eq!(meta.column("p1"), Some(0));
        assert_eq!(meta.property_index("p1", "name"), Some(0));
        assert_eq!(meta.property_index("p1", "age"), None);
        assert_eq!(meta.column("p2"), None);
    }

    #[test]
    fn column_type_queries() {
        let mut meta = EmbeddingMetaData::new();
        meta.add_entry("a", EntryType::Vertex);
        meta.add_entry("e", EntryType::Edge);
        meta.add_entry("p", EntryType::Path);
        meta.add_entry("b", EntryType::Vertex);
        assert_eq!(meta.vertex_columns(), vec![0, 3]);
        assert_eq!(meta.edge_columns(), vec![1]);
        assert_eq!(meta.path_columns(), vec![2]);
        assert_eq!(meta.entry_type("e"), Some(EntryType::Edge));
    }

    #[test]
    fn merge_mirrors_embedding_merge() {
        let mut left = EmbeddingMetaData::new();
        left.add_entry("a", EntryType::Vertex);
        left.add_entry("e", EntryType::Edge);
        left.add_property("a", "name");

        let mut right = EmbeddingMetaData::new();
        right.add_entry("a", EntryType::Vertex); // join column, skipped
        right.add_entry("b", EntryType::Vertex);
        right.add_property("b", "name");

        let merged = left.merge(&right, &[0]);
        assert_eq!(merged.columns(), 3);
        assert_eq!(merged.column("b"), Some(2));
        assert_eq!(merged.property_index("a", "name"), Some(0));
        assert_eq!(merged.property_index("b", "name"), Some(1));
    }

    #[test]
    fn embedding_bindings_resolve_via_meta() {
        use gradoop_cypher::Bindings;
        let mut meta = EmbeddingMetaData::new();
        meta.add_entry("p1", EntryType::Vertex);
        meta.add_property("p1", "name");
        let mut embedding = Embedding::new();
        embedding.push_id(42);
        embedding.push_property(&PropertyValue::String("Alice".into()));
        let bindings = EmbeddingBindings {
            embedding: &embedding,
            meta: &meta,
        };
        assert_eq!(
            bindings.property("p1", "name"),
            Some(PropertyValue::String("Alice".into()))
        );
        assert_eq!(bindings.property("p1", "age"), None);
        assert_eq!(bindings.element_id("p1"), Some(42));
        assert_eq!(bindings.element_id("p2"), None);
        assert_eq!(bindings.label("p1"), None);
    }
}
