//! The embedding data structure (paper Section 3.3).
//!
//! An embedding is the engine's row format for intermediate and final query
//! results: a mapping from query variables to graph element identifiers
//! (or paths), plus the property values later predicates and the RETURN
//! clause need. Embeddings are shuffled between workers constantly, so both
//! (de)serialization and read/write access must be cheap — hence the
//! compact three-byte-array layout.

mod batch;
mod data;
mod meta_data;

pub use batch::EmbeddingBatch;
pub use data::{Embedding, Entry, ID_ENTRY_SIZE};
pub use meta_data::{EmbeddingBindings, EmbeddingMetaData, EntryType};
