//! The engine entry point: parse → simplify → plan → execute, exactly the
//! pipeline of paper Section 3.

use std::collections::HashMap;

use gradoop_cypher::ast::{Pipeline, Projection, ProjectionExpr, Stage};
use gradoop_cypher::{parse, parse_pipeline, Literal, ParseError, QueryGraph, QueryGraphError};
use gradoop_dataflow::{CollectingSink, ExecutionFailure, StageReport};
use gradoop_epgm::{GraphCollection, GraphStatistics, LogicalGraph};

use std::sync::Arc;

use crate::executor::{execute_plan, execute_plan_profiled};
use crate::matching::MatchingConfig;
use crate::observe::{q_error, Explain, ExplainNode, PlannerTrace, Profile, ProfileNode};
use crate::pipeline::{
    check_open_range_caps, execute_pipeline, plan_match_stage, probe_open_ranges,
    table_from_query_result, TableResult,
};
use crate::plancache::PlanCache;
use crate::planner::{plan_query_with_mode, Estimator, PlanError, PlanMode, QueryPlan};
use crate::querylog::{
    global_query_log, normalize_query_shape, record_from_profile, stable_digest, OperatorLogEntry,
    QueryLogRecord, QueryLogSink, QueryOutcome, TeeSink,
};
use crate::result::QueryResult;
use crate::source::GraphSource;

/// Any failure of a Cypher execution.
#[derive(Debug, Clone, PartialEq)]
pub enum CypherError {
    /// Lexing/parsing failed.
    Parse(ParseError),
    /// The query is structurally invalid.
    QueryGraph(QueryGraphError),
    /// Planning failed.
    Plan(PlanError),
    /// Execution failed at runtime: a dataflow stage or bulk iteration
    /// exhausted its retry budget (or a worker died without fault
    /// tolerance headroom). The computed datasets are discarded — a failed
    /// query never returns a partial result set.
    Execution(ExecutionFailure),
}

impl std::fmt::Display for CypherError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CypherError::Parse(e) => write!(f, "{e}"),
            CypherError::QueryGraph(e) => write!(f, "{e}"),
            CypherError::Plan(e) => write!(f, "{e}"),
            CypherError::Execution(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CypherError {}

impl From<ParseError> for CypherError {
    fn from(e: ParseError) -> Self {
        CypherError::Parse(e)
    }
}
impl From<QueryGraphError> for CypherError {
    fn from(e: QueryGraphError) -> Self {
        CypherError::QueryGraph(e)
    }
}
impl From<PlanError> for CypherError {
    fn from(e: PlanError) -> Self {
        CypherError::Plan(e)
    }
}
impl From<ExecutionFailure> for CypherError {
    fn from(e: ExecutionFailure) -> Self {
        CypherError::Execution(e)
    }
}

/// The Cypher query engine. Holds the graph statistics used by the greedy
/// planner; create it once per data graph and reuse it across queries.
///
/// Every run — successful or not — appends one [`QueryLogRecord`] to the
/// engine's query log sink (the process-wide [`global_query_log`] by
/// default; see [`with_query_log`](CypherEngine::with_query_log)).
#[derive(Clone)]
pub struct CypherEngine {
    statistics: GraphStatistics,
    query_log: Arc<dyn QueryLogSink>,
    plan_mode: PlanMode,
    plan_cache: Option<Arc<PlanCache>>,
}

impl std::fmt::Debug for CypherEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CypherEngine")
            .field("statistics", &self.statistics)
            .finish_non_exhaustive()
    }
}

impl CypherEngine {
    /// Creates an engine with pre-computed statistics.
    pub fn with_statistics(statistics: GraphStatistics) -> Self {
        CypherEngine {
            statistics,
            query_log: global_query_log(),
            plan_mode: PlanMode::CostBased,
            plan_cache: None,
        }
    }

    /// Overrides how the planner treats worst-case-optimal intersection
    /// candidates for cyclic patterns: cost-based (default), never
    /// (`ForceBinary`) or whenever eligible (`ForceWco`). Used by the
    /// conformance harness to sweep all strategies over the same queries.
    pub fn with_plan_mode(mut self, mode: PlanMode) -> Self {
        self.plan_mode = mode;
        self
    }

    /// Replaces the query log sink (the process-wide in-memory log by
    /// default) — e.g. with a
    /// [`JsonlQueryLog`](crate::querylog::JsonlQueryLog) file sink.
    pub fn with_query_log(mut self, sink: Arc<dyn QueryLogSink>) -> Self {
        self.query_log = sink;
        self
    }

    /// Installs a shared [`PlanCache`]: the classic single-`MATCH` path
    /// then answers repeated query *shapes* from the cache instead of
    /// re-planning, re-binding each execution's literals and `$param`
    /// values through its freshly built query graph. Cached plans are
    /// cost-based against this engine's statistics — share one cache only
    /// between engines over the same data graph.
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.plan_cache = Some(cache);
        self
    }

    /// The installed plan cache, if any.
    pub fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.plan_cache.as_ref()
    }

    /// Creates an engine, computing statistics from the data graph.
    pub fn for_graph(graph: &LogicalGraph) -> Self {
        CypherEngine::with_statistics(GraphStatistics::of(graph))
    }

    /// The engine's statistics.
    pub fn statistics(&self) -> &GraphStatistics {
        &self.statistics
    }

    /// Plans `query_text` without executing it.
    pub fn plan(
        &self,
        query_text: &str,
        params: &HashMap<String, Literal>,
    ) -> Result<(QueryGraph, QueryPlan), CypherError> {
        let (query, plan, _) = self.plan_cached(query_text, params)?;
        Ok((query, plan))
    }

    /// [`plan`](CypherEngine::plan) through the installed [`PlanCache`]
    /// (when any): the AST is answered per exact text, the plan per
    /// normalized shape + plan mode. The query graph is always rebuilt
    /// from this call's own parameters, so a cached plan's index-based
    /// operators resolve against the caller's literal bindings. Returns
    /// `Some("hit")`/`Some("miss")` for the query log when a cache is
    /// installed, `None` otherwise.
    fn plan_cached(
        &self,
        query_text: &str,
        params: &HashMap<String, Literal>,
    ) -> Result<(QueryGraph, QueryPlan, Option<&'static str>), CypherError> {
        let Some(cache) = &self.plan_cache else {
            let ast = parse(query_text)?;
            let query = QueryGraph::from_query_with_params(&ast, params)?;
            let plan =
                plan_query_with_mode(&query, &Estimator::new(&self.statistics), self.plan_mode)?;
            return Ok((query, plan, None));
        };
        let ast = cache.parse(query_text)?;
        let query = QueryGraph::from_query_with_params(&ast, params)?;
        let shape = normalize_query_shape(query_text);
        if let Some(plan) = cache.lookup(&shape, self.plan_mode, &query) {
            return Ok((query, (*plan).clone(), Some("hit")));
        }
        let plan = plan_query_with_mode(&query, &Estimator::new(&self.statistics), self.plan_mode)?;
        cache.insert(shape, self.plan_mode, &query, Arc::new(plan.clone()));
        Ok((query, plan, Some("miss")))
    }

    /// Parses, plans and executes `query_text` against `source`.
    pub fn execute<S: GraphSource + ?Sized>(
        &self,
        source: &S,
        query_text: &str,
        params: &HashMap<String, Literal>,
        matching: MatchingConfig,
    ) -> Result<QueryResult, CypherError> {
        let started = std::time::Instant::now();
        let shape = normalize_query_shape(query_text);
        let fingerprint = stable_digest(&shape);
        let (query, plan, cache_status) = match self.plan_cached(query_text, params) {
            Ok(planned) => planned,
            Err(error) => {
                self.query_log.log(&QueryLogRecord {
                    query: query_text.to_string(),
                    shape,
                    fingerprint,
                    plan_digest: String::new(),
                    plan_cache: None,
                    outcome: QueryOutcome::Error,
                    error: Some(error.to_string()),
                    matches: 0,
                    wall_seconds: started.elapsed().as_secs_f64(),
                    simulated_seconds: 0.0,
                    operators: vec![],
                    max_q_error: 1.0,
                    recovery_attempts: 0,
                    stolen_morsels: 0,
                    peak_memory_bytes: 0,
                });
                return Err(error);
            }
        };
        let plan_digest = stable_digest(&plan.explain.to_text());
        let env = source.env();
        let metrics_before = env.metrics();
        // Tee stage reports into a collector so the query log sees
        // per-stage rows/bytes without clobbering a user-installed sink.
        let collector = std::sync::Arc::new(gradoop_dataflow::CollectingSink::new());
        let downstream = env.trace_sink();
        env.set_trace_sink(Some(Arc::new(TeeSink::new(
            downstream.clone(),
            collector.clone(),
        ))));
        // Drop any stale poison from a previous failed run on this
        // environment, so this execution is judged on its own faults.
        let _ = env.take_execution_failure();
        // Open-ended variable-length ranges (`*`, `*2..`) execute with one
        // probe hop beyond their substituted cap; anything found there
        // means the cap would silently truncate, and the run fails with a
        // classified error instead (checked below).
        let (probe, caps) = probe_open_ranges(&query);
        let mut result = execute_plan(&plan.root, &probe, source, &matching);
        if query.distinct {
            result = distinct_by_return_items(&result, &query);
        }
        env.set_trace_sink(downstream);
        let stages = collector.drain().stages;
        let metrics = env.metrics();
        let mut record = QueryLogRecord {
            query: query_text.to_string(),
            shape,
            fingerprint,
            plan_digest,
            plan_cache: cache_status,
            outcome: QueryOutcome::Ok,
            error: None,
            matches: 0,
            wall_seconds: 0.0,
            simulated_seconds: metrics.simulated_seconds - metrics_before.simulated_seconds,
            operators: stages
                .iter()
                .map(|s| OperatorLogEntry {
                    name: s.name.clone(),
                    rows_out: s.records_out,
                    bytes: s.bytes_shuffled,
                })
                .collect(),
            max_q_error: 1.0,
            recovery_attempts: stages.iter().map(|s| s.attempts.saturating_sub(1)).sum(),
            stolen_morsels: stages.iter().map(|s| s.stolen_morsels).sum(),
            peak_memory_bytes: stages
                .iter()
                .map(|s| s.peak_memory_bytes)
                .max()
                .unwrap_or(0),
        };
        // Checked after DISTINCT projection so malformed-plan failures
        // recorded there are surfaced too.
        if let Some(failure) = env.take_execution_failure() {
            record.outcome = QueryOutcome::Faulted;
            record.error = Some(failure.to_string());
            record.wall_seconds = started.elapsed().as_secs_f64();
            self.query_log.log(&record);
            return Err(CypherError::Execution(failure));
        }
        if let Err(error) = check_open_range_caps(&result, &caps) {
            record.outcome = QueryOutcome::Error;
            record.error = Some(error.to_string());
            record.wall_seconds = started.elapsed().as_secs_f64();
            self.query_log.log(&record);
            return Err(error);
        }
        record.matches = result.data.len_untracked() as u64;
        record.max_q_error = q_error(plan.estimated_cardinality, record.matches);
        record.wall_seconds = started.elapsed().as_secs_f64();
        self.query_log.log(&record);
        Ok(QueryResult {
            embeddings: result.data,
            meta: result.meta,
            query,
            plan,
        })
    }

    /// EXPLAIN: plans `query_text` without executing it and returns the
    /// annotated plan tree (per-operator estimated cardinalities, predicted
    /// join strategies) together with the greedy planner's decision log.
    pub fn explain(&self, query_text: &str) -> Result<Explain, CypherError> {
        self.explain_with_params(query_text, &HashMap::new())
    }

    /// [`explain`](CypherEngine::explain) with query parameters.
    pub fn explain_with_params(
        &self,
        query_text: &str,
        params: &HashMap<String, Literal>,
    ) -> Result<Explain, CypherError> {
        let pipeline = parse_pipeline(query_text)?;
        if pipeline.as_simple().is_none() {
            return self.pipeline_explain(&pipeline, query_text, params);
        }
        let (_, plan) = self.plan(query_text, params)?;
        Ok(Explain {
            query: query_text.to_string(),
            root: plan.explain,
            planner: plan.planner,
            estimated_cardinality: plan.estimated_cardinality,
        })
    }

    /// EXPLAIN for a multi-clause pipeline: one child per clause. `MATCH`
    /// stages embed their greedy plan subtree; projection stages list their
    /// steps, with a `LIMIT`-bearing sort shown as
    /// `order_by(top-k skip=.. limit=..)` and an unbounded one as
    /// `order_by(full-sort)`.
    fn pipeline_explain(
        &self,
        pipeline: &Pipeline,
        query_text: &str,
        params: &HashMap<String, Literal>,
    ) -> Result<Explain, CypherError> {
        let mut children: Vec<ExplainNode> = Vec::new();
        let mut estimated = 1.0f64;
        for stage in &pipeline.stages {
            match stage {
                Stage::Match(inner) | Stage::OptionalMatch(inner) => {
                    let optional = matches!(stage, Stage::OptionalMatch(_));
                    let (_, plan) = plan_match_stage(inner, params, &self.statistics)?;
                    estimated = (estimated * plan.estimated_cardinality).max(1.0);
                    children.push(ExplainNode::inner(
                        if optional {
                            "optional_match(left-outer-join)"
                        } else {
                            "match(join)"
                        },
                        estimated,
                        vec![plan.explain],
                    ));
                }
                Stage::With(projection) => {
                    estimated = projection_estimate(projection, estimated);
                    children.push(projection_explain("with", projection, estimated));
                }
                Stage::Unwind(unwind) => {
                    children.push(ExplainNode::leaf(
                        format!("unwind({})", unwind.alias),
                        estimated,
                    ));
                }
            }
        }
        estimated = projection_estimate(&pipeline.ret, estimated);
        children.push(projection_explain("return", &pipeline.ret, estimated));
        Ok(Explain {
            query: query_text.to_string(),
            root: ExplainNode::inner("pipeline", estimated, children),
            planner: PlannerTrace::default(),
            estimated_cardinality: estimated,
        })
    }

    /// PROFILE: plans and executes `query_text`, returning the plan tree
    /// annotated with actual per-operator cardinalities, selectivities,
    /// simulated/wall-clock times and estimate-vs-actual errors. More
    /// expensive than [`execute`](CypherEngine::execute): results are
    /// measured per operator (including embedding byte sizes).
    pub fn profile<S: GraphSource + ?Sized>(
        &self,
        source: &S,
        query_text: &str,
        params: &HashMap<String, Literal>,
        matching: MatchingConfig,
    ) -> Result<Profile, CypherError> {
        let pipeline = parse_pipeline(query_text)?;
        if pipeline.as_simple().is_none() {
            return self.pipeline_profile(source, &pipeline, query_text, params, &matching);
        }
        let (query, plan) = self.plan(query_text, params)?;
        let env = source.env();
        let _ = env.take_execution_failure();
        let metrics_before = env.metrics();
        let started = std::time::Instant::now();
        let (probe, caps) = probe_open_ranges(&query);
        let (mut result, root) = execute_plan_profiled(&plan, &probe, source, &matching);
        if query.distinct {
            result = distinct_by_return_items(&result, &query);
        }
        if let Some(failure) = env.take_execution_failure() {
            return Err(CypherError::Execution(failure));
        }
        check_open_range_caps(&result, &caps)?;
        let metrics = env.metrics();
        let profile = Profile {
            query: query_text.to_string(),
            root,
            planner: plan.planner,
            matches: result.data.len_untracked() as u64,
            simulated_seconds: metrics.simulated_seconds - metrics_before.simulated_seconds,
            wall_seconds: started.elapsed().as_secs_f64(),
            recovery_attempts: metrics.recovery_attempts - metrics_before.recovery_attempts,
            recovery_seconds: metrics.recovery_seconds - metrics_before.recovery_seconds,
            checkpoint_bytes: metrics.checkpoint_bytes - metrics_before.checkpoint_bytes,
            restored_bytes: metrics.restored_bytes - metrics_before.restored_bytes,
            peak_memory_bytes: metrics.peak_memory_bytes,
            scratch_allocations: metrics.scratch_allocations - metrics_before.scratch_allocations,
        };
        self.query_log.log(&record_from_profile(
            query_text,
            stable_digest(&plan.explain.to_text()),
            &profile,
            metrics.stolen_morsels - metrics_before.stolen_morsels,
        ));
        Ok(profile)
    }

    /// PROFILE for a multi-clause pipeline: the run's dataflow stage
    /// reports become one profile leaf each under a `pipeline` root, so
    /// top-k vs full-sort choices, outer-join padding counts and
    /// group-reduce sizes are all visible post-hoc.
    fn pipeline_profile<S: GraphSource + ?Sized>(
        &self,
        source: &S,
        pipeline: &Pipeline,
        query_text: &str,
        params: &HashMap<String, Literal>,
        matching: &MatchingConfig,
    ) -> Result<Profile, CypherError> {
        let explain = self.pipeline_explain(pipeline, query_text, params)?;
        let env = source.env();
        let _ = env.take_execution_failure();
        let metrics_before = env.metrics();
        let started = std::time::Instant::now();
        let collector = Arc::new(CollectingSink::new());
        let downstream = env.trace_sink();
        env.set_trace_sink(Some(Arc::new(TeeSink::new(
            downstream.clone(),
            collector.clone(),
        ))));
        let outcome = execute_pipeline(pipeline, params, &self.statistics, source, matching);
        env.set_trace_sink(downstream);
        let stages = collector.drain().stages;
        let table = outcome?;
        if let Some(failure) = env.take_execution_failure() {
            return Err(CypherError::Execution(failure));
        }
        let metrics = env.metrics();
        let matches = table.rows.len() as u64;
        let root = ProfileNode {
            operator: "pipeline".to_string(),
            estimated_cardinality: explain.estimated_cardinality,
            estimated_strategy: None,
            actual_strategy: None,
            actual_ship: None,
            rows_in: stages.first().map(|s| s.records_in).unwrap_or(0),
            rows_out: matches,
            selectivity: 1.0,
            embedding_bytes: 0,
            simulated_seconds: metrics.simulated_seconds - metrics_before.simulated_seconds,
            wall_seconds: started.elapsed().as_secs_f64(),
            stages: stages.len() as u64,
            morsels: stages.iter().map(|s| s.morsels).sum(),
            stolen_morsels: stages.iter().map(|s| s.stolen_morsels).sum(),
            batches: stages.iter().map(|s| s.batches).sum(),
            batch_rows: stages.iter().map(|s| s.batch_rows).sum(),
            batch_rows_selected: stages.iter().map(|s| s.batch_rows_selected).sum(),
            estimate_error: q_error(explain.estimated_cardinality, matches),
            recovery_attempts: stages.iter().map(|s| s.attempts.saturating_sub(1)).sum(),
            recovery_seconds: stages.iter().map(|s| s.recovery_seconds).sum(),
            checkpoint_bytes: stages.iter().map(|s| s.checkpoint_bytes).sum(),
            restored_bytes: stages.iter().map(|s| s.restored_bytes).sum(),
            peak_memory_bytes: stages
                .iter()
                .map(|s| s.peak_memory_bytes)
                .max()
                .unwrap_or(0),
            scratch_allocations: stages.iter().map(|s| s.scratch_allocations).sum(),
            iterations: vec![],
            rows_intersected: 0,
            children: stages.iter().map(profile_stage_node).collect(),
        };
        let profile = Profile {
            query: query_text.to_string(),
            root,
            planner: PlannerTrace::default(),
            matches,
            simulated_seconds: metrics.simulated_seconds - metrics_before.simulated_seconds,
            wall_seconds: started.elapsed().as_secs_f64(),
            recovery_attempts: metrics.recovery_attempts - metrics_before.recovery_attempts,
            recovery_seconds: metrics.recovery_seconds - metrics_before.recovery_seconds,
            checkpoint_bytes: metrics.checkpoint_bytes - metrics_before.checkpoint_bytes,
            restored_bytes: metrics.restored_bytes - metrics_before.restored_bytes,
            peak_memory_bytes: metrics.peak_memory_bytes,
            scratch_allocations: metrics.scratch_allocations - metrics_before.scratch_allocations,
        };
        self.query_log.log(&record_from_profile(
            query_text,
            stable_digest(&explain.root.to_text()),
            &profile,
            metrics.stolen_morsels - metrics_before.stolen_morsels,
        ));
        Ok(profile)
    }

    /// Runs the full read-only clause surface — `MATCH`, `OPTIONAL MATCH`,
    /// `WITH`, `UNWIND`, aggregation, `ORDER BY`/`SKIP`/`LIMIT` — and
    /// returns a tabular [`TableResult`].
    ///
    /// A query that is a single plain `MATCH … RETURN` delegates to the
    /// classic embedding path ([`execute`](CypherEngine::execute), which
    /// merges all patterns into one query graph and applies **query-wide**
    /// morphism uniqueness); everything else runs clause by clause with
    /// openCypher's per-`MATCH` uniqueness scope. Either way the run lands
    /// in the query log.
    pub fn run<S: GraphSource + ?Sized>(
        &self,
        source: &S,
        query_text: &str,
        params: &HashMap<String, Literal>,
        matching: MatchingConfig,
    ) -> Result<TableResult, CypherError> {
        let pipeline = parse_pipeline(query_text)?;
        if pipeline.as_simple().is_some() {
            return table_from_query_result(&self.execute(source, query_text, params, matching)?);
        }
        let started = std::time::Instant::now();
        let shape = normalize_query_shape(query_text);
        let fingerprint = stable_digest(&shape);
        let explain = match self.pipeline_explain(&pipeline, query_text, params) {
            Ok(explain) => explain,
            Err(error) => {
                self.query_log.log(&QueryLogRecord {
                    query: query_text.to_string(),
                    shape,
                    fingerprint,
                    plan_digest: String::new(),
                    plan_cache: None,
                    outcome: QueryOutcome::Error,
                    error: Some(error.to_string()),
                    matches: 0,
                    wall_seconds: started.elapsed().as_secs_f64(),
                    simulated_seconds: 0.0,
                    operators: vec![],
                    max_q_error: 1.0,
                    recovery_attempts: 0,
                    stolen_morsels: 0,
                    peak_memory_bytes: 0,
                });
                return Err(error);
            }
        };
        let plan_digest = stable_digest(&explain.root.to_text());
        let env = source.env();
        let metrics_before = env.metrics();
        let collector = Arc::new(CollectingSink::new());
        let downstream = env.trace_sink();
        env.set_trace_sink(Some(Arc::new(TeeSink::new(
            downstream.clone(),
            collector.clone(),
        ))));
        let _ = env.take_execution_failure();
        let outcome = execute_pipeline(&pipeline, params, &self.statistics, source, &matching);
        env.set_trace_sink(downstream);
        let stages = collector.drain().stages;
        let metrics = env.metrics();
        let mut record = QueryLogRecord {
            query: query_text.to_string(),
            shape,
            fingerprint,
            plan_digest,
            // The pipeline path plans per stage and is not cached (each
            // stage's plan depends on the working table); only the classic
            // single-`MATCH` path reports cache activity.
            plan_cache: None,
            outcome: QueryOutcome::Ok,
            error: None,
            matches: 0,
            wall_seconds: 0.0,
            simulated_seconds: metrics.simulated_seconds - metrics_before.simulated_seconds,
            operators: stages
                .iter()
                .map(|s| OperatorLogEntry {
                    name: s.name.clone(),
                    rows_out: s.records_out,
                    bytes: s.bytes_shuffled,
                })
                .collect(),
            max_q_error: 1.0,
            recovery_attempts: stages.iter().map(|s| s.attempts.saturating_sub(1)).sum(),
            stolen_morsels: stages.iter().map(|s| s.stolen_morsels).sum(),
            peak_memory_bytes: stages
                .iter()
                .map(|s| s.peak_memory_bytes)
                .max()
                .unwrap_or(0),
        };
        let table = match outcome {
            Ok(table) => table,
            Err(error) => {
                record.outcome = match &error {
                    CypherError::Execution(_) => QueryOutcome::Faulted,
                    _ => QueryOutcome::Error,
                };
                record.error = Some(error.to_string());
                record.wall_seconds = started.elapsed().as_secs_f64();
                self.query_log.log(&record);
                return Err(error);
            }
        };
        if let Some(failure) = env.take_execution_failure() {
            record.outcome = QueryOutcome::Faulted;
            record.error = Some(failure.to_string());
            record.wall_seconds = started.elapsed().as_secs_f64();
            self.query_log.log(&record);
            return Err(CypherError::Execution(failure));
        }
        record.matches = table.rows.len() as u64;
        record.max_q_error = q_error(explain.estimated_cardinality, record.matches);
        record.wall_seconds = started.elapsed().as_secs_f64();
        self.query_log.log(&record);
        Ok(table)
    }
}

/// Output-cardinality estimate of one projection stage: aggregation
/// collapses toward the group count (modeled as a square root), `LIMIT`
/// caps the estimate outright.
fn projection_estimate(projection: &Projection, input: f64) -> f64 {
    let mut estimated = input;
    if projection
        .items
        .iter()
        .any(|i| matches!(i.expr, ProjectionExpr::Aggregate(_)))
    {
        estimated = estimated.sqrt().max(1.0);
    }
    if let Some(limit) = projection.limit {
        estimated = estimated.min(limit as f64).max(0.0);
    }
    estimated.max(1.0)
}

/// EXPLAIN node for a `WITH`/`RETURN` stage, one step leaf per applied
/// sub-operation in evaluation order.
fn projection_explain(name: &str, projection: &Projection, estimated: f64) -> ExplainNode {
    let mut steps: Vec<ExplainNode> = Vec::new();
    if projection
        .items
        .iter()
        .any(|i| matches!(i.expr, ProjectionExpr::Aggregate(_)))
    {
        steps.push(ExplainNode::leaf("aggregate(group_reduce)", estimated));
    }
    if projection.distinct {
        steps.push(ExplainNode::leaf("distinct(group_reduce)", estimated));
    }
    if !projection.order_by.is_empty() || projection.skip.is_some() || projection.limit.is_some() {
        let operator = match projection.limit {
            Some(limit) => format!(
                "order_by(top-k skip={} limit={limit})",
                projection.skip.unwrap_or(0)
            ),
            None => "order_by(full-sort)".to_string(),
        };
        steps.push(ExplainNode::leaf(operator, estimated));
    }
    if projection.where_clause.is_some() {
        steps.push(ExplainNode::leaf("filter(where)", estimated));
    }
    ExplainNode::inner(name, estimated, steps)
}

/// One profile leaf per executed dataflow stage of a pipeline run.
fn profile_stage_node(report: &StageReport) -> ProfileNode {
    ProfileNode {
        operator: report.name.clone(),
        estimated_cardinality: report.records_out as f64,
        estimated_strategy: None,
        actual_strategy: None,
        actual_ship: None,
        rows_in: report.records_in,
        rows_out: report.records_out,
        selectivity: if report.records_in > 0 {
            report.records_out as f64 / report.records_in as f64
        } else {
            1.0
        },
        embedding_bytes: 0,
        simulated_seconds: report.seconds,
        wall_seconds: 0.0,
        stages: 1,
        morsels: report.morsels,
        stolen_morsels: report.stolen_morsels,
        batches: report.batches,
        batch_rows: report.batch_rows,
        batch_rows_selected: report.batch_rows_selected,
        estimate_error: 1.0,
        recovery_attempts: report.attempts.saturating_sub(1),
        recovery_seconds: report.recovery_seconds,
        checkpoint_bytes: report.checkpoint_bytes,
        restored_bytes: report.restored_bytes,
        peak_memory_bytes: report.peak_memory_bytes,
        scratch_allocations: report.scratch_allocations,
        iterations: vec![],
        rows_intersected: 0,
        children: vec![],
    }
}

/// `RETURN DISTINCT`: projects embeddings to the returned bindings and
/// deduplicates (a distributed `distinct` over the projected rows). The
/// resulting embeddings bind only the returned variables, so match graphs
/// derived from a DISTINCT result contain only the returned elements.
/// A returned binding the plan never materialized poisons the environment
/// (classified `CypherError::Execution`) instead of panicking.
fn distinct_by_return_items(
    input: &crate::operators::EmbeddingSet,
    query: &QueryGraph,
) -> crate::operators::EmbeddingSet {
    use crate::embedding::{Embedding, EmbeddingMetaData, Entry};
    use gradoop_cypher::ReturnItem;

    if query
        .return_items
        .iter()
        .any(|item| matches!(item, ReturnItem::CountStar))
    {
        // count(*) counts matches, not distinct rows — leave untouched.
        return input.clone();
    }

    let mut meta = EmbeddingMetaData::new();
    let mut entry_sources: Vec<usize> = Vec::new();
    let mut property_sources: Vec<usize> = Vec::new();
    for item in &query.return_items {
        match item {
            ReturnItem::Variable(variable) => {
                if meta.column(variable).is_none() {
                    let Some(column) = input.meta.column(variable) else {
                        return crate::operators::malformed_plan(
                            input,
                            "distinct_by_return_items",
                            format!("returned variable `{variable}` unbound"),
                        );
                    };
                    let Some(entry_type) = input.meta.entry_type(variable) else {
                        return crate::operators::malformed_plan(
                            input,
                            "distinct_by_return_items",
                            format!("returned variable `{variable}` has no entry type"),
                        );
                    };
                    entry_sources.push(column);
                    meta.add_entry(variable, entry_type);
                }
            }
            ReturnItem::Property { variable, key, .. } => {
                let Some(index) = input.meta.property_index(variable, key) else {
                    return crate::operators::malformed_plan(
                        input,
                        "distinct_by_return_items",
                        format!("returned property `{variable}.{key}` unbound"),
                    );
                };
                property_sources.push(index);
                meta.add_property(variable, key);
            }
            ReturnItem::CountStar | ReturnItem::All => {}
        }
    }

    let data = input
        .data
        .map(move |embedding| {
            let mut projected = Embedding::new();
            for &column in &entry_sources {
                match embedding.entry(column) {
                    Entry::Id(id) => projected.push_id(id),
                    Entry::Path(ids) => projected.push_path(&ids),
                }
            }
            for &index in &property_sources {
                // Re-append the canonical encoded bytes instead of decoding
                // and re-encoding the value: the raw encoding is what
                // `distinct` hashes anyway, so the per-row decode (and any
                // string allocation it implies) is pure waste.
                projected.push_raw_property(embedding.raw_property(index));
            }
            projected
        })
        .distinct();
    crate::operators::EmbeddingSet { data, meta }
}

/// The EPGM pattern-matching operator (Definition 2.4): `g.cypher(q, ...)`.
///
/// Returns the collection of logical graphs matching the query, with
/// variable bindings attached as graph-head properties. This mirrors the
/// paper's Java API:
///
/// ```java
/// GraphCollection matches = g.cypher(q, HOMO, ISO);
/// ```
pub trait CypherOperator {
    /// Runs `query` with the given vertex/edge morphism semantics.
    fn cypher(&self, query: &str, matching: MatchingConfig)
        -> Result<GraphCollection, CypherError>;
}

impl CypherOperator for LogicalGraph {
    fn cypher(
        &self,
        query: &str,
        matching: MatchingConfig,
    ) -> Result<GraphCollection, CypherError> {
        let engine = CypherEngine::for_graph(self);
        let result = engine.execute(self, query, &HashMap::new(), matching)?;
        result.to_graph_collection(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::ResultValue;
    use gradoop_dataflow::{CostModel, ExecutionConfig, ExecutionEnvironment};
    use gradoop_epgm::{properties, Edge, GradoopId, GraphHead, Properties, PropertyValue, Vertex};

    fn sample_graph() -> LogicalGraph {
        let env = ExecutionEnvironment::new(
            ExecutionConfig::with_workers(2).cost_model(CostModel::free()),
        );
        let vertices = vec![
            Vertex::new(GradoopId(10), "Person", properties! {"name" => "Alice"}),
            Vertex::new(GradoopId(20), "Person", properties! {"name" => "Eve"}),
            Vertex::new(
                GradoopId(40),
                "University",
                properties! {"name" => "Uni Leipzig"},
            ),
        ];
        let edges = vec![
            Edge::new(
                GradoopId(3),
                "studyAt",
                GradoopId(10),
                GradoopId(40),
                properties! {"classYear" => 2015i64},
            ),
            Edge::new(
                GradoopId(4),
                "studyAt",
                GradoopId(20),
                GradoopId(40),
                properties! {"classYear" => 2016i64},
            ),
            Edge::new(
                GradoopId(5),
                "knows",
                GradoopId(10),
                GradoopId(20),
                Properties::new(),
            ),
        ];
        LogicalGraph::from_data(
            &env,
            GraphHead::new(GradoopId(100), "Community", Properties::new()),
            vertices,
            edges,
        )
    }

    #[test]
    fn end_to_end_table_2a() {
        // The query of paper Table 2a.
        let graph = sample_graph();
        let engine = CypherEngine::for_graph(&graph);
        let result = engine
            .execute(
                &graph,
                "MATCH (p1:Person)-[s:studyAt]->(u:University) \
                 WHERE s.classYear > 2014 RETURN p1.name, u.name",
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .unwrap();
        assert_eq!(result.count(), 2);
        let mut names: Vec<String> = result
            .rows_as_maps()
            .expect("rows")
            .into_iter()
            .map(|row| match &row["p1.name"] {
                ResultValue::Property(PropertyValue::String(s)) => s.clone(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        names.sort();
        assert_eq!(names, vec!["Alice", "Eve"]);
    }

    #[test]
    fn every_run_lands_in_the_query_log() {
        use crate::querylog::MemoryQueryLog;
        let graph = sample_graph();
        let log = Arc::new(MemoryQueryLog::new());
        let engine = CypherEngine::for_graph(&graph).with_query_log(log.clone());

        // A successful run logs `ok` with operator rows and a plan digest.
        let query = "MATCH (p1:Person)-[s:studyAt]->(u:University) RETURN p1.name";
        engine
            .execute(
                &graph,
                query,
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .unwrap();
        // A parse error logs `error` with no digest.
        let bad = engine.execute(
            &graph,
            "MATCH (p:Person RETURN p",
            &HashMap::new(),
            MatchingConfig::cypher_default(),
        );
        assert!(bad.is_err());

        let records = log.snapshot();
        assert_eq!(records.len(), 2);
        let ok = &records[0];
        assert_eq!(ok.outcome, QueryOutcome::Ok);
        assert_eq!(ok.matches, 2);
        assert!(ok.error.is_none());
        assert_eq!(ok.fingerprint.len(), 16);
        assert_eq!(ok.plan_digest.len(), 16);
        assert!(!ok.operators.is_empty());
        assert!(ok.operators.iter().any(|op| op.rows_out > 0));
        // The sample graph runs on CostModel::free(): zero simulated cost.
        assert!(ok.simulated_seconds >= 0.0);
        assert!(ok.max_q_error >= 1.0 && ok.max_q_error.is_finite());
        let err = &records[1];
        assert_eq!(err.outcome, QueryOutcome::Error);
        assert!(err.error.is_some());
        assert!(err.plan_digest.is_empty());

        // The same shape with different literals fingerprints identically.
        let with_filter = |year: i64| {
            format!(
                "MATCH (p1:Person)-[s:studyAt]->(u:University) \
                 WHERE s.classYear > {year} RETURN p1.name"
            )
        };
        engine
            .execute(
                &graph,
                &with_filter(2014),
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .unwrap();
        engine
            .execute(
                &graph,
                &with_filter(2015),
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .unwrap();
        let records = log.snapshot();
        assert_eq!(records[2].fingerprint, records[3].fingerprint);
        assert_ne!(records[2].query, records[3].query);
    }

    #[test]
    fn plan_cache_hits_rebind_parameters_and_match_cold_results() {
        use crate::querylog::MemoryQueryLog;
        let graph = sample_graph();
        let log = Arc::new(MemoryQueryLog::new());
        let cache = Arc::new(PlanCache::default());
        let engine = CypherEngine::for_graph(&graph)
            .with_query_log(log.clone())
            .with_plan_cache(cache.clone());
        // A cache-less engine over the same graph provides the cold
        // reference results.
        let cold = CypherEngine::for_graph(&graph);

        let rows_of = |result: &crate::result::QueryResult| {
            let mut rows: Vec<String> = result
                .rows_as_maps()
                .expect("rows")
                .iter()
                .map(|row| {
                    let mut cells: Vec<String> =
                        row.iter().map(|(k, v)| format!("{k}={v:?}")).collect();
                    cells.sort();
                    cells.join("|")
                })
                .collect();
            rows.sort();
            rows
        };

        let query = "MATCH (p:Person {name: $who})-[s:studyAt]->(u:University) \
                     WHERE s.classYear > $year RETURN p.name, u.name";
        let bind = |who: &str, year: i64| {
            HashMap::from([
                ("who".to_string(), Literal::String(who.to_string())),
                ("year".to_string(), Literal::Integer(year)),
            ])
        };

        // Cold: first execution plans and populates the cache.
        let first = engine
            .execute(
                &graph,
                query,
                &bind("Alice", 2014),
                MatchingConfig::cypher_default(),
            )
            .unwrap();
        // Hit: different parameter values, same shape — the cached plan
        // must re-bind and return exactly what a cold plan returns.
        let second = engine
            .execute(
                &graph,
                query,
                &bind("Eve", 2015),
                MatchingConfig::cypher_default(),
            )
            .unwrap();
        let reference = cold
            .execute(
                &graph,
                query,
                &bind("Eve", 2015),
                MatchingConfig::cypher_default(),
            )
            .unwrap();
        assert_eq!(first.count(), 1);
        assert_eq!(second.count(), 1);
        assert_eq!(rows_of(&second), rows_of(&reference));
        assert_ne!(rows_of(&first), rows_of(&second), "params must re-bind");

        // An inline-literal spelling of the same shape also hits.
        let inline = engine
            .execute(
                &graph,
                "MATCH (p:Person {name: 'Eve'})-[s:studyAt]->(u:University) \
                 WHERE s.classYear > 2015 RETURN p.name, u.name",
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .unwrap();
        assert_eq!(rows_of(&inline), rows_of(&reference));

        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        let records = log.snapshot();
        assert_eq!(records[0].plan_cache, Some("miss"));
        assert_eq!(records[1].plan_cache, Some("hit"));
        assert_eq!(records[2].plan_cache, Some("hit"));
        assert_eq!(records[0].plan_digest, records[1].plan_digest);
    }

    #[test]
    fn profile_runs_are_logged_with_per_operator_entries() {
        use crate::querylog::MemoryQueryLog;
        let graph = sample_graph();
        let log = Arc::new(MemoryQueryLog::new());
        let engine = CypherEngine::for_graph(&graph).with_query_log(log.clone());
        let profile = engine
            .profile(
                &graph,
                "MATCH (p1:Person)-[s:studyAt]->(u:University) RETURN p1.name",
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .unwrap();
        let records = log.snapshot();
        assert_eq!(records.len(), 1);
        let record = &records[0];
        assert_eq!(record.outcome, QueryOutcome::Ok);
        assert_eq!(record.matches, profile.matches);
        // One entry per plan operator, names matching the profile tree.
        assert_eq!(record.operators.len(), profile.root.operator_rows().len());
        assert_eq!(record.operators[0].name, profile.root.operator);
        assert!(record.max_q_error >= 1.0);
    }

    #[test]
    fn count_star_row() {
        let graph = sample_graph();
        let engine = CypherEngine::for_graph(&graph);
        let result = engine
            .execute(
                &graph,
                "MATCH (p:Person) RETURN count(*)",
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .unwrap();
        let rows = result.rows().expect("rows");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values[0].1, ResultValue::Count(2));
    }

    #[test]
    fn cypher_operator_returns_graph_collection() {
        let graph = sample_graph();
        let matches = graph
            .cypher(
                "MATCH (p:Person)-[s:studyAt]->(u:University) RETURN p.name",
                MatchingConfig::cypher_default(),
            )
            .unwrap();
        assert_eq!(matches.graph_count(), 2);
        // Each match graph contains person + university + edge.
        let heads = matches.heads().collect();
        for head in &heads {
            assert!(head.properties.contains_key("p.name"));
        }
        // Result graphs are part of the collection's element membership.
        let first = matches.graph(heads[0].id).expect("match graph");
        assert_eq!(first.vertex_count(), 2);
        assert_eq!(first.edge_count(), 1);
    }

    #[test]
    fn parameterized_execution() {
        let graph = sample_graph();
        let engine = CypherEngine::for_graph(&graph);
        let mut params = HashMap::new();
        params.insert("name".to_string(), Literal::String("Alice".into()));
        let result = engine
            .execute(
                &graph,
                "MATCH (p:Person) WHERE p.name = $name RETURN p",
                &params,
                MatchingConfig::cypher_default(),
            )
            .unwrap();
        assert_eq!(result.count(), 1);
    }

    #[test]
    fn errors_are_classified() {
        let graph = sample_graph();
        let engine = CypherEngine::for_graph(&graph);
        let no_params = HashMap::new();
        let config = MatchingConfig::cypher_default();
        assert!(matches!(
            engine.execute(&graph, "MATCH (p RETURN *", &no_params, config),
            Err(CypherError::Parse(_))
        ));
        assert!(matches!(
            engine.execute(&graph, "MATCH (p) RETURN q.name", &no_params, config),
            Err(CypherError::QueryGraph(_))
        ));
    }

    #[test]
    fn unbound_distinct_return_variable_is_classified_not_a_panic() {
        use crate::embedding::EmbeddingMetaData;
        use crate::operators::EmbeddingSet;
        use gradoop_cypher::{parse, QueryGraph};

        let env = ExecutionEnvironment::new(
            ExecutionConfig::with_workers(2).cost_model(CostModel::free()),
        );
        // An embedding set that binds nothing, paired with a DISTINCT
        // query returning `n`: the projection cannot find the column. The
        // old code panicked; now it poisons the environment so `execute`
        // surfaces a classified execution error.
        let input = EmbeddingSet {
            data: env.from_collection(vec![crate::embedding::Embedding::new()]),
            meta: EmbeddingMetaData::new(),
        };
        let query = QueryGraph::from_query(&parse("MATCH (n) RETURN DISTINCT n").unwrap()).unwrap();
        let projected = distinct_by_return_items(&input, &query);
        assert_eq!(projected.data.count(), 0);
        let failure = env.take_execution_failure().expect("poisoned");
        assert!(failure.message.contains("`n` unbound"));
        assert!(failure.site.contains("distinct_by_return_items"));
    }

    #[test]
    fn unbound_return_item_yields_classified_result_error() {
        // A hand-assembled result whose embeddings never bound the returned
        // variable: materialization reports a classified error, not a panic.
        let graph = sample_graph();
        let engine = CypherEngine::for_graph(&graph);
        let mut result = engine
            .execute(
                &graph,
                "MATCH (p:Person) RETURN p",
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .expect("query executes");
        result.meta = crate::embedding::EmbeddingMetaData::new();
        match result.rows() {
            Err(CypherError::Execution(failure)) => {
                assert!(failure.message.contains("`p` unbound"));
            }
            other => panic!("expected classified execution error, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_retries_yield_classified_execution_error() {
        use gradoop_dataflow::{FailureSchedule, FaultConfig};
        let graph = sample_graph();
        let engine = CypherEngine::for_graph(&graph);
        let query = "MATCH (p:Person)-[s:studyAt]->(u:University) RETURN p.name";
        // Crash the very first query stage with no retry headroom.
        graph.env().install_faults(
            FaultConfig::new(FailureSchedule::none().crash_at_stage(0, 0)).max_attempts(1),
        );
        let result = engine.execute(
            &graph,
            query,
            &HashMap::new(),
            MatchingConfig::cypher_default(),
        );
        match result {
            Err(CypherError::Execution(failure)) => {
                assert!(failure.message.contains("retry budget exhausted"));
            }
            other => panic!("expected classified execution error, got {other:?}"),
        }
        // The schedule is consumed and the poison cleared: the same query
        // succeeds on the next attempt and returns the full result set.
        let retry = engine
            .execute(
                &graph,
                query,
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .unwrap();
        assert_eq!(retry.count(), 2);
    }

    #[test]
    fn survivable_faults_leave_results_identical_and_profile_shows_recovery() {
        use gradoop_dataflow::{FailureSchedule, FaultConfig};
        let graph = sample_graph();
        let engine = CypherEngine::for_graph(&graph);
        let query = "MATCH (p1:Person)-[s:studyAt]->(u:University) \
                     WHERE s.classYear > 2014 RETURN p1.name, u.name";
        let clean = engine
            .execute(
                &graph,
                query,
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .unwrap();
        graph.env().install_faults(
            FaultConfig::new(
                FailureSchedule::none()
                    .crash_at_stage(0, 0)
                    .lost_partition_at_stage(2, 1),
            )
            .max_attempts(3),
        );
        let profile = engine
            .profile(
                &graph,
                query,
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .unwrap();
        graph.env().clear_faults();
        assert_eq!(profile.matches, clean.count() as u64);
        assert_eq!(profile.recovery_attempts, 2);
        assert!(profile.recovery_seconds >= 0.0);
        assert!(profile.to_text().contains("recovery: attempts=2"));
    }

    #[test]
    fn run_delegates_simple_queries_to_the_classic_path() {
        use crate::values::Value;
        let graph = sample_graph();
        let engine = CypherEngine::for_graph(&graph);
        let table = engine
            .run(
                &graph,
                "MATCH (p:Person) RETURN p.name",
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .unwrap();
        assert_eq!(table.columns, vec!["p.name"]);
        let mut names: Vec<String> = table
            .rows
            .iter()
            .map(|row| match &row[0] {
                Value::Str(s) => s.clone(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        names.sort();
        assert_eq!(names, vec!["Alice", "Eve"]);

        let counted = engine
            .run(
                &graph,
                "MATCH (p:Person) RETURN count(*)",
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .unwrap();
        assert_eq!(counted.columns, vec!["count(*)"]);
        assert_eq!(counted.rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn run_executes_with_aggregation_pipelines() {
        use crate::values::Value;
        let graph = sample_graph();
        let engine = CypherEngine::for_graph(&graph);
        let table = engine
            .run(
                &graph,
                "MATCH (p:Person)-[s:studyAt]->(u:University) \
                 WITH u, count(*) AS n RETURN u.name, n",
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .unwrap();
        assert_eq!(table.columns, vec!["u.name", "n"]);
        assert_eq!(
            table.rows,
            vec![vec![Value::Str("Uni Leipzig".to_string()), Value::Int(2)]]
        );
    }

    #[test]
    fn run_pads_optional_match_and_reports_the_pad_count() {
        use crate::querylog::MemoryQueryLog;
        use crate::values::Value;
        let graph = sample_graph();
        let log = Arc::new(MemoryQueryLog::new());
        let engine = CypherEngine::for_graph(&graph).with_query_log(log.clone());
        let table = engine
            .run(
                &graph,
                "MATCH (p:Person) OPTIONAL MATCH (p)-[k:knows]->(q:Person) \
                 RETURN p.name, q.name ORDER BY p.name",
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .unwrap();
        assert!(table.ordered);
        assert_eq!(
            table.rows,
            vec![
                vec![
                    Value::Str("Alice".to_string()),
                    Value::Str("Eve".to_string())
                ],
                // Eve knows nobody: the outer join NULL-pads her row.
                vec![Value::Str("Eve".to_string()), Value::Null],
            ]
        );
        let records = log.snapshot();
        let record = records.last().expect("run was logged");
        assert_eq!(record.outcome, QueryOutcome::Ok);
        assert_eq!(record.matches, 2);
        let pad = record
            .operators
            .iter()
            .find(|op| op.name == "optional_match(pad)")
            .expect("pad telemetry operator");
        assert_eq!(pad.rows_out, 1);
        assert!(record
            .operators
            .iter()
            .any(|op| op.name == "join(left-outer-hash)"));
    }

    #[test]
    fn run_unwinds_lists_and_orders_descending() {
        use crate::values::Value;
        let graph = sample_graph();
        let engine = CypherEngine::for_graph(&graph);
        let table = engine
            .run(
                &graph,
                "UNWIND [1, 2, 3] AS x RETURN x ORDER BY x DESC LIMIT 2",
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .unwrap();
        assert_eq!(table.columns, vec!["x"]);
        assert_eq!(table.rows, vec![vec![Value::Int(3)], vec![Value::Int(2)]]);
    }

    #[test]
    fn explain_and_profile_show_top_k_for_limit_bearing_order_by() {
        let graph = sample_graph();
        let engine = CypherEngine::for_graph(&graph);
        let with_limit = engine
            .explain("MATCH (p:Person) RETURN p.name ORDER BY p.name LIMIT 1")
            .unwrap();
        assert!(with_limit
            .root
            .to_text()
            .contains("order_by(top-k skip=0 limit=1)"));
        let unbounded = engine
            .explain("MATCH (p:Person) RETURN p.name ORDER BY p.name")
            .unwrap();
        assert!(unbounded.root.to_text().contains("order_by(full-sort)"));

        let profile = engine
            .profile(
                &graph,
                "MATCH (p:Person) RETURN p.name ORDER BY p.name LIMIT 1",
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .unwrap();
        assert_eq!(profile.matches, 1);
        let stage_names: Vec<&str> = profile
            .root
            .children
            .iter()
            .map(|c| c.operator.as_str())
            .collect();
        assert!(stage_names.contains(&"order_by(top-k)"));
        assert!(!stage_names.contains(&"order_by(full-sort)"));
    }

    fn chain_graph(hops: u64) -> LogicalGraph {
        let env = ExecutionEnvironment::new(
            ExecutionConfig::with_workers(2).cost_model(CostModel::free()),
        );
        let vertices = (1..=hops + 1)
            .map(|id| Vertex::new(GradoopId(id), "Node", Properties::new()))
            .collect();
        let edges = (1..=hops)
            .map(|i| {
                Edge::new(
                    GradoopId(100 + i),
                    "next",
                    GradoopId(i),
                    GradoopId(i + 1),
                    Properties::new(),
                )
            })
            .collect();
        LogicalGraph::from_data(
            &env,
            GraphHead::new(GradoopId(1000), "chain", Properties::new()),
            vertices,
            edges,
        )
    }

    #[test]
    fn open_range_beyond_the_default_cap_is_a_classified_error() {
        // A 12-hop chain holds paths longer than DEFAULT_MAX_HOPS (10):
        // the old behaviour silently returned the truncated result set.
        let graph = chain_graph(12);
        let engine = CypherEngine::for_graph(&graph);
        let result = engine.execute(
            &graph,
            "MATCH (a)-[*]->(b) RETURN count(*)",
            &HashMap::new(),
            MatchingConfig::cypher_default(),
        );
        match result {
            Err(CypherError::Execution(failure)) => {
                assert!(failure.message.contains("cap of 10 hops"), "{failure}");
                assert!(failure.site.contains("open-range path expansion"));
            }
            other => panic!("expected classified truncation error, got {other:?}"),
        }
        // An explicit upper bound opts into the deeper expansion: every
        // path of 1..=12 hops in the chain, 12+11+…+1 = 78 of them.
        let bounded = engine
            .execute(
                &graph,
                "MATCH (a)-[*1..12]->(b) RETURN count(*)",
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .unwrap();
        assert_eq!(bounded.count(), 78);
        // A graph whose longest path sits at the cap is untouched.
        let short = chain_graph(10);
        let engine = CypherEngine::for_graph(&short);
        let ok = engine
            .execute(
                &short,
                "MATCH (a)-[*]->(b) RETURN count(*)",
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .unwrap();
        assert_eq!(ok.count(), 55);
    }

    #[test]
    fn indexed_graph_gives_same_results() {
        let graph = sample_graph();
        let indexed = graph.to_indexed();
        let engine = CypherEngine::for_graph(&graph);
        let q = "MATCH (p:Person)-[s:studyAt]->(u:University) RETURN *";
        let plain = engine
            .execute(&graph, q, &HashMap::new(), MatchingConfig::cypher_default())
            .unwrap();
        let via_index = engine
            .execute(
                &indexed,
                q,
                &HashMap::new(),
                MatchingConfig::cypher_default(),
            )
            .unwrap();
        assert_eq!(plain.count(), via_index.count());
    }
}
