//! Plan execution: walks the plan tree and instantiates the query operators
//! over the graph source's datasets.
//!
//! Two entry points: [`execute_plan`] runs a plan as cheaply as possible;
//! [`execute_plan_profiled`] additionally installs a [`CollectingSink`] on
//! the environment and attributes every dataflow stage and operator span to
//! the plan node that caused it, producing the [`ProfileNode`] tree behind
//! `CypherEngine::profile`.

use std::sync::Arc;
use std::time::Instant;

use gradoop_cypher::QueryGraph;
use gradoop_dataflow::{CollectingSink, Data, JoinStrategy, Partitioning};

use crate::matching::MatchingConfig;
use crate::observe::{
    q_error, ship_strategies, ExpandIteration, ExplainNode, ProfileNode, ShipStrategy,
};
use crate::operators::{
    cartesian_embeddings, edge_triples, embedding_join_key, expand_embeddings, expand_intersect,
    filter_and_project_edges, filter_and_project_vertices, filter_embeddings, join_embeddings,
    join_embeddings_filtered, value_join_embeddings, EmbeddingSet, ExpandConfig,
};
use crate::planner::{PlanNode, QueryPlan};
use crate::source::GraphSource;

/// Inputs smaller than this many embeddings are broadcast in joins instead
/// of repartitioning the (larger) other side.
const BROADCAST_THRESHOLD: usize = 10_000;

/// Executes `plan` against `source` with the given morphism semantics.
pub fn execute_plan<S: GraphSource + ?Sized>(
    plan: &PlanNode,
    query: &QueryGraph,
    source: &S,
    matching: &MatchingConfig,
) -> EmbeddingSet {
    match plan {
        PlanNode::ScanVertices { vertex } => {
            let query_vertex = &query.vertices[*vertex];
            let candidates = source.vertices_for_labels(&query_vertex.labels);
            filter_and_project_vertices(&candidates, query_vertex)
        }
        PlanNode::ScanEdges { edge } => {
            let query_edge = &query.edges[*edge];
            let candidates = source.edges_for_labels(&query_edge.labels);
            let source_var = &query.vertices[query_edge.source].variable;
            let target_var = &query.vertices[query_edge.target].variable;
            filter_and_project_edges(&candidates, query_edge, source_var, target_var, matching)
        }
        PlanNode::Join {
            left,
            right,
            variables,
        } => {
            let left_set = execute_plan(left, query, source, matching);
            let right_set = execute_plan(right, query, source, matching);
            let (strategy, _) = choose_strategy_partitioned(&left_set, &right_set, variables);
            join_embeddings(&left_set, &right_set, variables, matching, strategy)
        }
        PlanNode::Expand { input, edge } => {
            let input_set = execute_plan(input, query, source, matching);
            let query_edge = &query.edges[*edge];
            let (lower, upper) = query_edge.range.expect("expand node on plain edge");
            let candidates = edge_triples(&source.edges_for_labels(&query_edge.labels), query_edge);
            let config = ExpandConfig {
                source_variable: query.vertices[query_edge.source].variable.clone(),
                edge_variable: query_edge.variable.clone(),
                target_variable: query.vertices[query_edge.target].variable.clone(),
                lower,
                upper,
                matching: *matching,
            };
            expand_embeddings(&input_set, &candidates, &config)
        }
        PlanNode::ExpandIntersect {
            input,
            vertex,
            edges,
        } => {
            let input_set = execute_plan(input, query, source, matching);
            expand_intersect(&input_set, query, source, *vertex, edges, matching)
        }
        PlanNode::Filter { input, clauses } => {
            let clause_list: Vec<_> = clauses
                .iter()
                .map(|&index| query.cross_clauses[index].0.clone())
                .collect();
            // Filter-over-Join is fused into the join kernel: the clauses
            // run against the merged embedding while it still sits in the
            // join's scratch buffer, so embeddings the filter would drop
            // are never allocated or shuffled. (The profiled path keeps
            // the operators separate to attribute rows to each plan node.)
            if let PlanNode::Join {
                left,
                right,
                variables,
            } = input.as_ref()
            {
                let left_set = execute_plan(left, query, source, matching);
                let right_set = execute_plan(right, query, source, matching);
                let (strategy, _) = choose_strategy_partitioned(&left_set, &right_set, variables);
                return join_embeddings_filtered(
                    &left_set,
                    &right_set,
                    variables,
                    matching,
                    strategy,
                    &clause_list,
                );
            }
            let input_set = execute_plan(input, query, source, matching);
            filter_embeddings(&input_set, &clause_list)
        }
        PlanNode::Cartesian { left, right } => {
            let left_set = execute_plan(left, query, source, matching);
            let right_set = execute_plan(right, query, source, matching);
            cartesian_embeddings(&left_set, &right_set, matching)
        }
        PlanNode::ValueJoin {
            left,
            right,
            left_property,
            right_property,
        } => {
            let left_set = execute_plan(left, query, source, matching);
            let right_set = execute_plan(right, query, source, matching);
            let strategy = choose_strategy(&left_set, &right_set);
            value_join_embeddings(
                &left_set,
                &right_set,
                left_property,
                right_property,
                matching,
                strategy,
            )
        }
    }
}

/// Join-strategy choice from the two input cardinalities, standing in for
/// Flink's shipping-strategy optimizer: broadcast a side that is much
/// smaller than the other, else repartition both. Public so the planner can
/// predict (from estimates) the choice the executor will make at runtime —
/// EXPLAIN reports the prediction, PROFILE the actual choice.
pub fn choose_join_strategy(left_rows: usize, right_rows: usize) -> JoinStrategy {
    if right_rows < BROADCAST_THRESHOLD && right_rows * 8 < left_rows {
        JoinStrategy::BroadcastHashSecond
    } else if left_rows < BROADCAST_THRESHOLD && left_rows * 8 < right_rows {
        JoinStrategy::BroadcastHashFirst
    } else {
        JoinStrategy::RepartitionHash
    }
}

/// Like [`choose_join_strategy`], but aware of which inputs are already
/// hash-partitioned on the join key. A co-partitioned side is forwarded for
/// free by the repartition strategies, which changes the trade-off:
/// repartitioning then only ships the *other* side once, whereas a
/// broadcast replicates its side to every worker. Broadcasting is left as
/// the choice only when the side to replicate is much smaller than the side
/// a repartition join would still have to ship. Public for the same reason
/// as [`choose_join_strategy`]: the planner predicts this choice from its
/// estimates and expected partitioning, EXPLAIN reports the prediction,
/// PROFILE the actual decision.
pub fn choose_join_strategy_with_partitioning(
    left_rows: usize,
    right_rows: usize,
    left_partitioned: bool,
    right_partitioned: bool,
) -> JoinStrategy {
    match (left_partitioned, right_partitioned) {
        // Both sides in place: the join is shuffle-free.
        (true, true) => JoinStrategy::RepartitionHash,
        // Left in place: repartitioning ships only `right` once. Broadcast
        // can still win, but only by replicating the *left* side (keeping
        // right stationary) when it is far smaller than shipping right.
        (true, false) => {
            if left_rows < BROADCAST_THRESHOLD && left_rows * 8 < right_rows {
                JoinStrategy::BroadcastHashFirst
            } else {
                JoinStrategy::RepartitionHash
            }
        }
        (false, true) => {
            if right_rows < BROADCAST_THRESHOLD && right_rows * 8 < left_rows {
                JoinStrategy::BroadcastHashSecond
            } else {
                JoinStrategy::RepartitionHash
            }
        }
        (false, false) => choose_join_strategy(left_rows, right_rows),
    }
}

fn choose_strategy(left: &EmbeddingSet, right: &EmbeddingSet) -> JoinStrategy {
    choose_join_strategy(left.data.len_untracked(), right.data.len_untracked())
}

/// Runtime strategy choice for a join on `variables`: reads the inputs'
/// partitioning facts (when awareness is enabled) and returns the chosen
/// strategy plus the `[left, right]` ship strategies it implies.
fn choose_strategy_partitioned(
    left: &EmbeddingSet,
    right: &EmbeddingSet,
    variables: &[String],
) -> (JoinStrategy, [ShipStrategy; 2]) {
    let env = left.data.env();
    let aware = env.partition_aware();
    let target = Partitioning {
        key: embedding_join_key(variables),
        workers: env.workers(),
    };
    let left_partitioned = aware && left.data.partitioning() == Some(target);
    let right_partitioned = aware && right.data.partitioning() == Some(target);
    let strategy = choose_join_strategy_with_partitioning(
        left.data.len_untracked(),
        right.data.len_untracked(),
        left_partitioned,
        right_partitioned,
    );
    (
        strategy,
        ship_strategies(strategy, left_partitioned, right_partitioned),
    )
}

/// Executes `plan` like [`execute_plan`] and returns, next to the result,
/// a [`ProfileNode`] tree mirroring the plan: per operator the actual rows
/// in/out, selectivity, embedding bytes, simulated and wall-clock seconds,
/// executed stages, the join strategy actually chosen, per-iteration
/// counters of variable-length expansions and the estimate-vs-actual
/// q-error.
///
/// A private [`CollectingSink`] is installed on the source's environment for
/// the duration of the run (the previously installed sink, if any, is
/// restored afterwards), so stages and operator spans can be attributed to
/// the plan node that caused them.
pub fn execute_plan_profiled<S: GraphSource + ?Sized>(
    plan: &QueryPlan,
    query: &QueryGraph,
    source: &S,
    matching: &MatchingConfig,
) -> (EmbeddingSet, ProfileNode) {
    let env = source.env();
    let previous = env.trace_sink();
    let sink = Arc::new(CollectingSink::new());
    env.set_trace_sink(Some(sink.clone()));
    let result = profile_node(&plan.root, &plan.explain, query, source, matching, &sink);
    env.set_trace_sink(previous);
    result
}

fn profile_node<S: GraphSource + ?Sized>(
    node: &PlanNode,
    explain: &ExplainNode,
    query: &QueryGraph,
    source: &S,
    matching: &MatchingConfig,
    sink: &Arc<CollectingSink>,
) -> (EmbeddingSet, ProfileNode) {
    let env = source.env();

    // Children run (and drain the sink for themselves) first, so everything
    // buffered after this node's own operator ran belongs to this node.
    let child_nodes: Vec<&PlanNode> = match node {
        PlanNode::Join { left, right, .. }
        | PlanNode::Cartesian { left, right }
        | PlanNode::ValueJoin { left, right, .. } => vec![left, right],
        PlanNode::Expand { input, .. }
        | PlanNode::Filter { input, .. }
        | PlanNode::ExpandIntersect { input, .. } => vec![input],
        PlanNode::ScanVertices { .. } | PlanNode::ScanEdges { .. } => Vec::new(),
    };
    let mut child_sets = Vec::new();
    let mut children = Vec::new();
    for (child, child_explain) in child_nodes.into_iter().zip(&explain.children) {
        let (set, profile) = profile_node(child, child_explain, query, source, matching, sink);
        child_sets.push(set);
        children.push(profile);
    }

    let simulated_before = env.simulated_seconds();
    let started = Instant::now();
    let mut rows_in: u64 = child_sets
        .iter()
        .map(|s| s.data.len_untracked() as u64)
        .sum();
    let mut actual_strategy = None;
    let mut actual_ship = None;

    let result = match node {
        PlanNode::ScanVertices { vertex } => {
            let query_vertex = &query.vertices[*vertex];
            let candidates = source.vertices_for_labels(&query_vertex.labels);
            rows_in = candidates.len_untracked() as u64;
            filter_and_project_vertices(&candidates, query_vertex)
        }
        PlanNode::ScanEdges { edge } => {
            let query_edge = &query.edges[*edge];
            let candidates = source.edges_for_labels(&query_edge.labels);
            rows_in = candidates.len_untracked() as u64;
            let source_var = &query.vertices[query_edge.source].variable;
            let target_var = &query.vertices[query_edge.target].variable;
            filter_and_project_edges(&candidates, query_edge, source_var, target_var, matching)
        }
        PlanNode::Join { variables, .. } => {
            let (strategy, ship) =
                choose_strategy_partitioned(&child_sets[0], &child_sets[1], variables);
            actual_strategy = Some(strategy);
            actual_ship = Some(ship);
            join_embeddings(
                &child_sets[0],
                &child_sets[1],
                variables,
                matching,
                strategy,
            )
        }
        PlanNode::Expand { edge, .. } => {
            let query_edge = &query.edges[*edge];
            let (lower, upper) = query_edge.range.expect("expand node on plain edge");
            let candidates = edge_triples(&source.edges_for_labels(&query_edge.labels), query_edge);
            rows_in += candidates.len_untracked() as u64;
            let config = ExpandConfig {
                source_variable: query.vertices[query_edge.source].variable.clone(),
                edge_variable: query_edge.variable.clone(),
                target_variable: query.vertices[query_edge.target].variable.clone(),
                lower,
                upper,
                matching: *matching,
            };
            expand_embeddings(&child_sets[0], &candidates, &config)
        }
        PlanNode::ExpandIntersect { vertex, edges, .. } => {
            expand_intersect(&child_sets[0], query, source, *vertex, edges, matching)
        }
        PlanNode::Filter { clauses, .. } => {
            let clause_list: Vec<_> = clauses
                .iter()
                .map(|&index| query.cross_clauses[index].0.clone())
                .collect();
            filter_embeddings(&child_sets[0], &clause_list)
        }
        PlanNode::Cartesian { .. } => {
            cartesian_embeddings(&child_sets[0], &child_sets[1], matching)
        }
        PlanNode::ValueJoin {
            left_property,
            right_property,
            ..
        } => {
            let strategy = choose_strategy(&child_sets[0], &child_sets[1]);
            actual_strategy = Some(strategy);
            // Value joins key on property values; no named partitioning
            // fact exists for those, so neither side can be forwarded.
            actual_ship = Some(ship_strategies(strategy, false, false));
            value_join_embeddings(
                &child_sets[0],
                &child_sets[1],
                left_property,
                right_property,
                matching,
                strategy,
            )
        }
    };

    let wall_seconds = started.elapsed().as_secs_f64();
    let simulated_seconds = env.simulated_seconds() - simulated_before;
    let drained = sink.drain();
    let iterations: Vec<ExpandIteration> = drained
        .spans
        .iter()
        .filter(|span| span.name == "expand/iteration")
        .map(|span| ExpandIteration {
            iteration: span.counter("iteration").unwrap_or(0.0) as u64,
            frontier_rows: span.counter("frontier_rows").unwrap_or(0.0) as u64,
            emitted_rows: span.counter("emitted_rows").unwrap_or(0.0) as u64,
            shuffled_bytes: span.counter("shuffled_bytes").unwrap_or(0.0) as u64,
            candidate_shuffled_bytes: span.counter("candidate_shuffled_bytes").unwrap_or(0.0)
                as u64,
        })
        .collect();
    let rows_intersected: u64 = drained
        .spans
        .iter()
        .filter(|span| span.name == "expand_intersect/intersect")
        .map(|span| span.counter("rows_intersected").unwrap_or(0.0) as u64)
        .sum();
    let rows_out = result.data.len_untracked() as u64;
    let embedding_bytes: u64 = result
        .data
        .partitions()
        .iter()
        .flatten()
        .map(|embedding| embedding.byte_size() as u64)
        .sum();
    let selectivity = if rows_in > 0 {
        rows_out as f64 / rows_in as f64
    } else {
        1.0
    };
    let profile = ProfileNode {
        operator: explain.operator.clone(),
        estimated_cardinality: explain.estimated_cardinality,
        estimated_strategy: explain.estimated_strategy,
        actual_strategy,
        actual_ship,
        rows_in,
        rows_out,
        selectivity,
        embedding_bytes,
        simulated_seconds,
        wall_seconds,
        stages: drained.stages.len() as u64,
        morsels: drained.stages.iter().map(|s| s.morsels).sum(),
        stolen_morsels: drained.stages.iter().map(|s| s.stolen_morsels).sum(),
        batches: drained.stages.iter().map(|s| s.batches).sum(),
        batch_rows: drained.stages.iter().map(|s| s.batch_rows).sum(),
        batch_rows_selected: drained.stages.iter().map(|s| s.batch_rows_selected).sum(),
        estimate_error: q_error(explain.estimated_cardinality, rows_out),
        recovery_attempts: drained.recovery_attempts(),
        recovery_seconds: drained.recovery_seconds(),
        checkpoint_bytes: drained.stages.iter().map(|s| s.checkpoint_bytes).sum(),
        restored_bytes: drained.stages.iter().map(|s| s.restored_bytes).sum(),
        peak_memory_bytes: drained
            .stages
            .iter()
            .map(|s| s.peak_memory_bytes)
            .max()
            .unwrap_or(0),
        scratch_allocations: drained.stages.iter().map(|s| s.scratch_allocations).sum(),
        iterations,
        rows_intersected,
        children,
    };
    (result, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{plan_query, Estimator};
    use gradoop_cypher::parse;
    use gradoop_dataflow::{CostModel, ExecutionConfig, ExecutionEnvironment};
    use gradoop_epgm::{
        properties, Edge, GradoopId, GraphHead, GraphStatistics, LogicalGraph, Properties, Vertex,
    };

    /// The social-network sample of the paper's Figure 1 (simplified).
    fn sample_graph() -> LogicalGraph {
        let env = ExecutionEnvironment::new(
            ExecutionConfig::with_workers(2).cost_model(CostModel::free()),
        );
        let person = |id: u64, name: &str, gender: &str| {
            Vertex::new(
                GradoopId(id),
                "Person",
                properties! {"name" => name, "gender" => gender},
            )
        };
        let vertices = vec![
            person(10, "Alice", "female"),
            person(20, "Eve", "female"),
            person(30, "Bob", "male"),
            Vertex::new(
                GradoopId(40),
                "University",
                properties! {"name" => "Uni Leipzig"},
            ),
        ];
        let knows = |id: u64, s: u64, t: u64| {
            Edge::new(
                GradoopId(id),
                "knows",
                GradoopId(s),
                GradoopId(t),
                Properties::new(),
            )
        };
        let edges = vec![
            knows(5, 10, 20),
            knows(6, 20, 10),
            knows(7, 20, 30),
            Edge::new(
                GradoopId(3),
                "studyAt",
                GradoopId(10),
                GradoopId(40),
                properties! {"classYear" => 2015i64},
            ),
            Edge::new(
                GradoopId(4),
                "studyAt",
                GradoopId(30),
                GradoopId(40),
                properties! {"classYear" => 2016i64},
            ),
        ];
        LogicalGraph::from_data(
            &env,
            GraphHead::new(GradoopId(100), "Community", Properties::new()),
            vertices,
            edges,
        )
    }

    fn run(graph: &LogicalGraph, text: &str, matching: MatchingConfig) -> usize {
        let query = gradoop_cypher::QueryGraph::from_query(&parse(text).unwrap()).unwrap();
        let stats = GraphStatistics::of(graph);
        let plan = plan_query(&query, &Estimator::new(&stats)).unwrap();
        let result = execute_plan(&plan.root, &query, graph, &matching);
        result.data.count()
    }

    #[test]
    fn single_edge_pattern() {
        let graph = sample_graph();
        assert_eq!(
            run(
                &graph,
                "MATCH (a:Person)-[e:knows]->(b:Person) RETURN *",
                MatchingConfig::cypher_default()
            ),
            3
        );
    }

    #[test]
    fn two_hop_pattern_with_predicate() {
        let graph = sample_graph();
        // Persons studying at Uni Leipzig after 2015.
        assert_eq!(
            run(
                &graph,
                "MATCH (p:Person)-[s:studyAt]->(u:University) \
                 WHERE u.name = 'Uni Leipzig' AND s.classYear > 2015 RETURN *",
                MatchingConfig::cypher_default()
            ),
            1
        );
    }

    #[test]
    fn variable_length_paths() {
        let graph = sample_graph();
        // knows*1..2 from Alice: 10->20 (1 hop), 10->20->10 (blocked by
        // edge-homo? no — edges 5,6 distinct, vertex HOMO allows), 10->20->30.
        assert_eq!(
            run(
                &graph,
                "MATCH (a:Person {name: 'Alice'})-[e:knows*1..2]->(b:Person) RETURN *",
                MatchingConfig::cypher_default()
            ),
            3
        );
        // Vertex isomorphism removes the path returning to Alice.
        assert_eq!(
            run(
                &graph,
                "MATCH (a:Person {name: 'Alice'})-[e:knows*1..2]->(b:Person) RETURN *",
                MatchingConfig::isomorphism()
            ),
            2
        );
    }

    #[test]
    fn cross_variable_predicate() {
        let graph = sample_graph();
        // Pairs with different genders that know each other directly.
        assert_eq!(
            run(
                &graph,
                "MATCH (p1:Person)-[:knows]->(p2:Person) \
                 WHERE p1.gender <> p2.gender RETURN *",
                MatchingConfig::cypher_default()
            ),
            1 // Eve -> Bob
        );
    }

    #[test]
    fn disconnected_pattern_uses_cartesian() {
        let graph = sample_graph();
        assert_eq!(
            run(
                &graph,
                "MATCH (u:University), (p:Person {name: 'Alice'}) RETURN *",
                MatchingConfig::cypher_default()
            ),
            1
        );
    }

    #[test]
    fn empty_result_for_unsatisfiable_query() {
        let graph = sample_graph();
        assert_eq!(
            run(
                &graph,
                "MATCH (p:Person {name: 'Nobody'})-[:knows]->(q) RETURN *",
                MatchingConfig::cypher_default()
            ),
            0
        );
    }
}
