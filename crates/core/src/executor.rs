//! Plan execution: walks the plan tree and instantiates the query operators
//! over the graph source's datasets.

use gradoop_cypher::QueryGraph;
use gradoop_dataflow::JoinStrategy;

use crate::matching::MatchingConfig;
use crate::operators::{
    cartesian_embeddings, edge_triples, expand_embeddings, filter_and_project_edges,
    filter_and_project_vertices, filter_embeddings, join_embeddings, value_join_embeddings,
    EmbeddingSet, ExpandConfig,
};
use crate::planner::PlanNode;
use crate::source::GraphSource;

/// Inputs smaller than this many embeddings are broadcast in joins instead
/// of repartitioning the (larger) other side.
const BROADCAST_THRESHOLD: usize = 10_000;

/// Executes `plan` against `source` with the given morphism semantics.
pub fn execute_plan<S: GraphSource + ?Sized>(
    plan: &PlanNode,
    query: &QueryGraph,
    source: &S,
    matching: &MatchingConfig,
) -> EmbeddingSet {
    match plan {
        PlanNode::ScanVertices { vertex } => {
            let query_vertex = &query.vertices[*vertex];
            let candidates = source.vertices_for_labels(&query_vertex.labels);
            filter_and_project_vertices(&candidates, query_vertex)
        }
        PlanNode::ScanEdges { edge } => {
            let query_edge = &query.edges[*edge];
            let candidates = source.edges_for_labels(&query_edge.labels);
            let source_var = &query.vertices[query_edge.source].variable;
            let target_var = &query.vertices[query_edge.target].variable;
            filter_and_project_edges(&candidates, query_edge, source_var, target_var, matching)
        }
        PlanNode::Join {
            left,
            right,
            variables,
        } => {
            let left_set = execute_plan(&**left, query, source, matching);
            let right_set = execute_plan(&**right, query, source, matching);
            let strategy = choose_strategy(&left_set, &right_set);
            join_embeddings(&left_set, &right_set, variables, matching, strategy)
        }
        PlanNode::Expand { input, edge } => {
            let input_set = execute_plan(&**input, query, source, matching);
            let query_edge = &query.edges[*edge];
            let (lower, upper) = query_edge.range.expect("expand node on plain edge");
            let candidates =
                edge_triples(&source.edges_for_labels(&query_edge.labels), query_edge);
            let config = ExpandConfig {
                source_variable: query.vertices[query_edge.source].variable.clone(),
                edge_variable: query_edge.variable.clone(),
                target_variable: query.vertices[query_edge.target].variable.clone(),
                lower,
                upper,
                matching: *matching,
            };
            expand_embeddings(&input_set, &candidates, &config)
        }
        PlanNode::Filter { input, clauses } => {
            let input_set = execute_plan(&**input, query, source, matching);
            let clause_list: Vec<_> = clauses
                .iter()
                .map(|&index| query.cross_clauses[index].0.clone())
                .collect();
            filter_embeddings(&input_set, &clause_list)
        }
        PlanNode::Cartesian { left, right } => {
            let left_set = execute_plan(&**left, query, source, matching);
            let right_set = execute_plan(&**right, query, source, matching);
            cartesian_embeddings(&left_set, &right_set, matching)
        }
        PlanNode::ValueJoin {
            left,
            right,
            left_property,
            right_property,
        } => {
            let left_set = execute_plan(&**left, query, source, matching);
            let right_set = execute_plan(&**right, query, source, matching);
            let strategy = choose_strategy(&left_set, &right_set);
            value_join_embeddings(
                &left_set,
                &right_set,
                left_property,
                right_property,
                matching,
                strategy,
            )
        }
    }
}

/// Runtime join-strategy choice, standing in for Flink's shipping-strategy
/// optimizer: broadcast a side that is much smaller than the other, else
/// repartition both.
fn choose_strategy(left: &EmbeddingSet, right: &EmbeddingSet) -> JoinStrategy {
    let left_len = left.data.len_untracked();
    let right_len = right.data.len_untracked();
    if right_len < BROADCAST_THRESHOLD && right_len * 8 < left_len {
        JoinStrategy::BroadcastHashSecond
    } else if left_len < BROADCAST_THRESHOLD && left_len * 8 < right_len {
        JoinStrategy::BroadcastHashFirst
    } else {
        JoinStrategy::RepartitionHash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{plan_query, Estimator};
    use gradoop_cypher::parse;
    use gradoop_epgm::{
        properties, Edge, GradoopId, GraphHead, GraphStatistics, LogicalGraph, Properties, Vertex,
    };
    use gradoop_dataflow::{CostModel, ExecutionConfig, ExecutionEnvironment};

    /// The social-network sample of the paper's Figure 1 (simplified).
    fn sample_graph() -> LogicalGraph {
        let env = ExecutionEnvironment::new(
            ExecutionConfig::with_workers(2).cost_model(CostModel::free()),
        );
        let person = |id: u64, name: &str, gender: &str| {
            Vertex::new(
                GradoopId(id),
                "Person",
                properties! {"name" => name, "gender" => gender},
            )
        };
        let vertices = vec![
            person(10, "Alice", "female"),
            person(20, "Eve", "female"),
            person(30, "Bob", "male"),
            Vertex::new(GradoopId(40), "University", properties! {"name" => "Uni Leipzig"}),
        ];
        let knows = |id: u64, s: u64, t: u64| {
            Edge::new(GradoopId(id), "knows", GradoopId(s), GradoopId(t), Properties::new())
        };
        let edges = vec![
            knows(5, 10, 20),
            knows(6, 20, 10),
            knows(7, 20, 30),
            Edge::new(
                GradoopId(3),
                "studyAt",
                GradoopId(10),
                GradoopId(40),
                properties! {"classYear" => 2015i64},
            ),
            Edge::new(
                GradoopId(4),
                "studyAt",
                GradoopId(30),
                GradoopId(40),
                properties! {"classYear" => 2016i64},
            ),
        ];
        LogicalGraph::from_data(
            &env,
            GraphHead::new(GradoopId(100), "Community", Properties::new()),
            vertices,
            edges,
        )
    }

    fn run(graph: &LogicalGraph, text: &str, matching: MatchingConfig) -> usize {
        let query = gradoop_cypher::QueryGraph::from_query(&parse(text).unwrap()).unwrap();
        let stats = GraphStatistics::of(graph);
        let plan = plan_query(&query, &Estimator::new(&stats)).unwrap();
        let result = execute_plan(&plan.root, &query, graph, &matching);
        result.data.count()
    }

    #[test]
    fn single_edge_pattern() {
        let graph = sample_graph();
        assert_eq!(
            run(
                &graph,
                "MATCH (a:Person)-[e:knows]->(b:Person) RETURN *",
                MatchingConfig::cypher_default()
            ),
            3
        );
    }

    #[test]
    fn two_hop_pattern_with_predicate() {
        let graph = sample_graph();
        // Persons studying at Uni Leipzig after 2015.
        assert_eq!(
            run(
                &graph,
                "MATCH (p:Person)-[s:studyAt]->(u:University) \
                 WHERE u.name = 'Uni Leipzig' AND s.classYear > 2015 RETURN *",
                MatchingConfig::cypher_default()
            ),
            1
        );
    }

    #[test]
    fn variable_length_paths() {
        let graph = sample_graph();
        // knows*1..2 from Alice: 10->20 (1 hop), 10->20->10 (blocked by
        // edge-homo? no — edges 5,6 distinct, vertex HOMO allows), 10->20->30.
        assert_eq!(
            run(
                &graph,
                "MATCH (a:Person {name: 'Alice'})-[e:knows*1..2]->(b:Person) RETURN *",
                MatchingConfig::cypher_default()
            ),
            3
        );
        // Vertex isomorphism removes the path returning to Alice.
        assert_eq!(
            run(
                &graph,
                "MATCH (a:Person {name: 'Alice'})-[e:knows*1..2]->(b:Person) RETURN *",
                MatchingConfig::isomorphism()
            ),
            2
        );
    }

    #[test]
    fn cross_variable_predicate() {
        let graph = sample_graph();
        // Pairs with different genders that know each other directly.
        assert_eq!(
            run(
                &graph,
                "MATCH (p1:Person)-[:knows]->(p2:Person) \
                 WHERE p1.gender <> p2.gender RETURN *",
                MatchingConfig::cypher_default()
            ),
            1 // Eve -> Bob
        );
    }

    #[test]
    fn disconnected_pattern_uses_cartesian() {
        let graph = sample_graph();
        assert_eq!(
            run(
                &graph,
                "MATCH (u:University), (p:Person {name: 'Alice'}) RETURN *",
                MatchingConfig::cypher_default()
            ),
            1
        );
    }

    #[test]
    fn empty_result_for_unsatisfiable_query() {
        let graph = sample_graph();
        assert_eq!(
            run(
                &graph,
                "MATCH (p:Person {name: 'Nobody'})-[:knows]->(q) RETURN *",
                MatchingConfig::cypher_default()
            ),
            0
        );
    }
}
