#![warn(missing_docs)]

//! # gradoop-core
//!
//! The Cypher query engine on a distributed dataflow — the primary
//! contribution of *"Cypher-based Graph Pattern Matching in Gradoop"*
//! (GRADES'17), reproduced in Rust.
//!
//! The engine parses a Cypher query (via `gradoop-cypher`), builds a query
//! graph, plans it with a greedy cost-based optimizer over pre-computed
//! graph statistics (Section 3.2), and executes the plan as dataflow
//! transformations over compact byte-array [`embedding::Embedding`]s
//! (Section 3.3) with the query operators of Section 3.1 — including
//! bulk-iteration-based variable-length path expansion. Morphism semantics
//! (`HOMO`/`ISO` for vertices and edges independently) are chosen per call,
//! and results are delivered both as a tabular view (Table 2) and as an
//! EPGM graph collection (Definition 2.4).
//!
//! ```
//! use gradoop_core::{CypherOperator, MatchingConfig};
//! use gradoop_dataflow::{CostModel, ExecutionConfig, ExecutionEnvironment};
//! use gradoop_epgm::{properties, Edge, GradoopId, GraphHead, LogicalGraph, Properties, Vertex};
//!
//! let env = ExecutionEnvironment::with_workers(2);
//! let graph = LogicalGraph::from_data(
//!     &env,
//!     GraphHead::new(GradoopId(100), "Community", Properties::new()),
//!     vec![
//!         Vertex::new(GradoopId(1), "Person", properties! {"name" => "Alice"}),
//!         Vertex::new(GradoopId(2), "Person", properties! {"name" => "Bob"}),
//!     ],
//!     vec![Edge::new(GradoopId(10), "knows", GradoopId(1), GradoopId(2), Properties::new())],
//! );
//! let matches = graph
//!     .cypher(
//!         "MATCH (a:Person)-[e:knows]->(b:Person) RETURN a.name, b.name",
//!         MatchingConfig::cypher_default(),
//!     )
//!     .unwrap();
//! assert_eq!(matches.graph_count(), 1);
//! ```

pub mod embedding;
pub mod engine;
pub mod executor;
pub mod matching;
pub mod observe;
pub mod operators;
pub mod pipeline;
pub mod plancache;
pub mod planner;
pub mod querylog;
pub mod reference;
pub mod result;
pub mod source;
pub mod values;

pub use embedding::{Embedding, EmbeddingBatch, EmbeddingMetaData, Entry, EntryType};
pub use engine::{CypherEngine, CypherError, CypherOperator};
pub use executor::{
    choose_join_strategy, choose_join_strategy_with_partitioning, execute_plan,
    execute_plan_profiled,
};
pub use matching::{MatchingConfig, MorphismCheck, MorphismType};
pub use observe::{
    ship_strategies, ExpandIteration, Explain, ExplainNode, PlannerCandidate, PlannerRound,
    PlannerTrace, Profile, ProfileNode, ShipStrategy,
};
pub use pipeline::{check_open_range_caps, execute_pipeline, probe_open_ranges, TableResult};
pub use plancache::{PlanCache, PlanCacheStats, DEFAULT_PLAN_CAPACITY};
pub use planner::{
    plan_query, plan_query_with_mode, Estimator, PlanError, PlanMode, PlanNode, QueryPlan,
};
pub use querylog::{
    global_query_log, normalize_query_shape, stable_digest, JsonlQueryLog, MemoryQueryLog,
    OperatorLogEntry, QueryLogRecord, QueryLogSink, QueryOutcome, TeeSink,
};
pub use reference::{reference_match, reference_pipeline, RefTable, ReferenceMatch};
pub use result::{QueryResult, ResultRow, ResultValue};
pub use source::GraphSource;
pub use values::{
    canonical_row, canonical_string, cmp_rows, cmp_values, compare_rows_by_keys, fold_aggregate,
    property_to_value, value_to_property, Row, RowScope, Snapshot, Value,
};
