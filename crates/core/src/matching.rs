//! Morphism semantics (paper Sections 2.2 and 2.3).
//!
//! Neo4j fixes homomorphic semantics for vertices and isomorphic semantics
//! for edges; Gradoop's operator lets the user choose both independently
//! when calling the operator — `g.cypher(q, HOMO, ISO)`. Isomorphism
//! requires the mapping to be injective: no two query vertices (edges) may
//! bind the same data vertex (edge).

use crate::embedding::{Embedding, EmbeddingBatch, EmbeddingMetaData};

/// Mapping semantics for one element kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MorphismType {
    /// Non-injective mapping — elements may repeat (`HOMO`).
    Homomorphism,
    /// Injective mapping — all bound elements are pairwise distinct (`ISO`).
    Isomorphism,
}

/// The semantics of one query execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchingConfig {
    /// Vertex mapping semantics.
    pub vertices: MorphismType,
    /// Edge mapping semantics.
    pub edges: MorphismType,
}

impl MatchingConfig {
    /// Homomorphism for vertices and edges.
    pub fn homomorphism() -> Self {
        MatchingConfig {
            vertices: MorphismType::Homomorphism,
            edges: MorphismType::Homomorphism,
        }
    }

    /// Isomorphism for vertices and edges.
    pub fn isomorphism() -> Self {
        MatchingConfig {
            vertices: MorphismType::Isomorphism,
            edges: MorphismType::Isomorphism,
        }
    }

    /// Neo4j's fixed semantics: homomorphic vertices, isomorphic edges.
    pub fn cypher_default() -> Self {
        MatchingConfig {
            vertices: MorphismType::Homomorphism,
            edges: MorphismType::Isomorphism,
        }
    }
}

impl Default for MatchingConfig {
    fn default() -> Self {
        MatchingConfig::cypher_default()
    }
}

/// A uniqueness check compiled against one embedding layout: the vertex,
/// edge and path column sets are resolved once per operator instead of once
/// per embedding, and the id buffer is caller-provided scratch so a whole
/// morsel of checks shares a single allocation.
#[derive(Debug, Clone)]
pub struct MorphismCheck {
    vertex_columns: Vec<usize>,
    edge_columns: Vec<usize>,
    path_columns: Vec<usize>,
    config: MatchingConfig,
}

impl MorphismCheck {
    /// Compiles the check for embeddings laid out by `meta`.
    pub fn new(meta: &EmbeddingMetaData, config: &MatchingConfig) -> Self {
        MorphismCheck {
            vertex_columns: meta.vertex_columns(),
            edge_columns: meta.edge_columns(),
            path_columns: meta.path_columns(),
            config: *config,
        }
    }

    /// `true` if the check can never reject (full homomorphism).
    pub fn is_trivial(&self) -> bool {
        self.config.vertices == MorphismType::Homomorphism
            && self.config.edges == MorphismType::Homomorphism
    }

    /// Checks the uniqueness constraints on `embedding`, using `scratch` as
    /// the id staging buffer (cleared on entry).
    pub fn check(&self, embedding: &Embedding, scratch: &mut Vec<u64>) -> bool {
        if self.config.vertices == MorphismType::Isomorphism {
            scratch.clear();
            embedding.collect_ids(&self.vertex_columns, scratch);
            for &column in &self.path_columns {
                // Odd positions are the intermediate vertices.
                scratch.extend(embedding.path_iter(column).skip(1).step_by(2));
            }
            if has_duplicates(scratch) {
                return false;
            }
        }
        if self.config.edges == MorphismType::Isomorphism {
            scratch.clear();
            embedding.collect_ids(&self.edge_columns, scratch);
            for &column in &self.path_columns {
                // Even positions are the path's edges.
                scratch.extend(embedding.path_iter(column).step_by(2));
            }
            if has_duplicates(scratch) {
                return false;
            }
        }
        true
    }

    /// Batched form of [`MorphismCheck::check`]: narrows `batch`'s
    /// selection to the rows satisfying the uniqueness constraints.
    ///
    /// With no path columns in the layout the check runs over the batch's
    /// gathered id columns — a pairwise-distinctness pass per row over
    /// primitive slices (column sets are tiny, so pairwise beats sorting).
    /// Layouts with path columns fall back to the row check, reusing
    /// `scratch` across the whole batch.
    pub fn check_batch(&self, batch: &mut EmbeddingBatch<'_>, scratch: &mut Vec<u64>) {
        if self.is_trivial() || batch.is_empty() {
            return;
        }
        let check_vertices =
            self.config.vertices == MorphismType::Isomorphism && self.vertex_columns.len() > 1;
        let check_edges =
            self.config.edges == MorphismType::Isomorphism && self.edge_columns.len() > 1;
        if self.path_columns.is_empty() {
            if !check_vertices && !check_edges {
                return;
            }
            if check_vertices {
                for &column in &self.vertex_columns {
                    batch.ensure_ids(column);
                }
            }
            if check_edges {
                for &column in &self.edge_columns {
                    batch.ensure_ids(column);
                }
            }
            let keep: Vec<u32> = {
                let gather = |columns: &[usize]| -> Vec<&[u64]> {
                    columns
                        .iter()
                        .map(|&column| batch.ids(column).expect("id column materialized"))
                        .collect()
                };
                let vertex_ids = if check_vertices {
                    gather(&self.vertex_columns)
                } else {
                    Vec::new()
                };
                let edge_ids = if check_edges {
                    gather(&self.edge_columns)
                } else {
                    Vec::new()
                };
                batch
                    .selection()
                    .iter()
                    .copied()
                    .filter(|&row| {
                        columns_distinct_at(&vertex_ids, row as usize)
                            && columns_distinct_at(&edge_ids, row as usize)
                    })
                    .collect()
            };
            batch.set_selection(keep);
        } else {
            let rows = batch.rows();
            let keep: Vec<u32> = batch
                .selection()
                .iter()
                .copied()
                .filter(|&row| self.check(&rows[row as usize], scratch))
                .collect();
            batch.set_selection(keep);
        }
    }
}

/// `true` when the ids the columns hold at `row` are pairwise distinct.
fn columns_distinct_at(columns: &[&[u64]], row: usize) -> bool {
    for (index, column) in columns.iter().enumerate() {
        let id = column[row];
        if columns[index + 1..].iter().any(|other| other[row] == id) {
            return false;
        }
    }
    true
}

/// Checks the uniqueness constraints of `config` on an embedding: under
/// vertex (edge) isomorphism, all bound vertex (edge) identifiers —
/// including those inside paths, where entries alternate edge, vertex,
/// edge, ... — must be pairwise distinct.
///
/// Convenience form of [`MorphismCheck`] for one-off checks; hot loops
/// should compile the check once and reuse a scratch buffer.
pub fn satisfies_morphism(
    embedding: &Embedding,
    meta: &EmbeddingMetaData,
    config: &MatchingConfig,
) -> bool {
    MorphismCheck::new(meta, config).check(embedding, &mut Vec::new())
}

fn has_duplicates(ids: &mut [u64]) -> bool {
    ids.sort_unstable();
    ids.windows(2).any(|w| w[0] == w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::EntryType;

    fn triangle_meta() -> EmbeddingMetaData {
        let mut meta = EmbeddingMetaData::new();
        meta.add_entry("a", EntryType::Vertex);
        meta.add_entry("e", EntryType::Edge);
        meta.add_entry("b", EntryType::Vertex);
        meta
    }

    fn embedding(a: u64, e: u64, b: u64) -> Embedding {
        let mut emb = Embedding::new();
        emb.push_id(a);
        emb.push_id(e);
        emb.push_id(b);
        emb
    }

    #[test]
    fn homomorphism_allows_everything() {
        let meta = triangle_meta();
        let config = MatchingConfig::homomorphism();
        assert!(satisfies_morphism(&embedding(1, 5, 1), &meta, &config));
    }

    #[test]
    fn vertex_isomorphism_rejects_repeated_vertices() {
        let meta = triangle_meta();
        let config = MatchingConfig::isomorphism();
        assert!(satisfies_morphism(&embedding(1, 5, 2), &meta, &config));
        assert!(!satisfies_morphism(&embedding(1, 5, 1), &meta, &config));
    }

    #[test]
    fn edge_isomorphism_checks_edge_columns_only() {
        let mut meta = EmbeddingMetaData::new();
        meta.add_entry("e1", EntryType::Edge);
        meta.add_entry("e2", EntryType::Edge);
        let mut emb = Embedding::new();
        emb.push_id(5);
        emb.push_id(5);
        let homo_v_iso_e = MatchingConfig::cypher_default();
        assert!(!satisfies_morphism(&emb, &meta, &homo_v_iso_e));
        assert!(satisfies_morphism(
            &emb,
            &meta,
            &MatchingConfig::homomorphism()
        ));
    }

    #[test]
    fn path_contents_participate_in_checks() {
        let mut meta = EmbeddingMetaData::new();
        meta.add_entry("a", EntryType::Vertex);
        meta.add_entry("p", EntryType::Path);
        meta.add_entry("b", EntryType::Vertex);

        // Path via [e5, v20, e7]; endpoint a=10, b=30.
        let mut ok = Embedding::new();
        ok.push_id(10);
        ok.push_path(&[5, 20, 7]);
        ok.push_id(30);
        assert!(satisfies_morphism(
            &ok,
            &meta,
            &MatchingConfig::isomorphism()
        ));

        // Intermediate vertex equals an endpoint: vertex-ISO must reject.
        let mut dup_vertex = Embedding::new();
        dup_vertex.push_id(10);
        dup_vertex.push_path(&[5, 10, 7]);
        dup_vertex.push_id(30);
        assert!(!satisfies_morphism(
            &dup_vertex,
            &meta,
            &MatchingConfig::isomorphism()
        ));
        // ...but vertex-HOMO accepts (edge ids 5, 7 are distinct).
        assert!(satisfies_morphism(
            &dup_vertex,
            &meta,
            &MatchingConfig::cypher_default()
        ));

        // Repeated edge inside the path: edge-ISO must reject.
        let mut dup_edge = Embedding::new();
        dup_edge.push_id(10);
        dup_edge.push_path(&[5, 20, 5]);
        dup_edge.push_id(30);
        assert!(!satisfies_morphism(
            &dup_edge,
            &meta,
            &MatchingConfig::cypher_default()
        ));
        assert!(satisfies_morphism(
            &dup_edge,
            &meta,
            &MatchingConfig::homomorphism()
        ));
    }

    #[test]
    fn batched_check_matches_row_check() {
        // Column layout (a)-[e1]->(b)-[e2]->(c), no paths: the batched
        // check runs on gathered id columns.
        let mut meta = EmbeddingMetaData::new();
        meta.add_entry("a", EntryType::Vertex);
        meta.add_entry("e1", EntryType::Edge);
        meta.add_entry("b", EntryType::Vertex);
        meta.add_entry("e2", EntryType::Edge);
        meta.add_entry("c", EntryType::Vertex);
        let rows: Vec<Embedding> = [
            (1u64, 10u64, 2u64, 11u64, 3u64), // all distinct
            (1, 10, 2, 11, 1),                // vertex repeats (a = c)
            (1, 10, 2, 10, 3),                // edge repeats
            (5, 20, 5, 20, 5),                // everything repeats
        ]
        .iter()
        .map(|&(a, e1, b, e2, c)| {
            let mut emb = Embedding::new();
            emb.push_id(a);
            emb.push_id(e1);
            emb.push_id(b);
            emb.push_id(e2);
            emb.push_id(c);
            emb
        })
        .collect();

        // Path layout: the batched check falls back to the row check.
        let mut path_meta = EmbeddingMetaData::new();
        path_meta.add_entry("a", EntryType::Vertex);
        path_meta.add_entry("p", EntryType::Path);
        path_meta.add_entry("b", EntryType::Vertex);
        let path_rows: Vec<Embedding> = [
            (10u64, vec![5u64, 20, 7], 30u64), // ok
            (10, vec![5, 10, 7], 30),          // endpoint repeats inside path
            (10, vec![5, 20, 5], 30),          // edge repeats inside path
        ]
        .iter()
        .map(|(a, via, b)| {
            let mut emb = Embedding::new();
            emb.push_id(*a);
            emb.push_path(via);
            emb.push_id(*b);
            emb
        })
        .collect();

        for config in [
            MatchingConfig::homomorphism(),
            MatchingConfig::isomorphism(),
            MatchingConfig::cypher_default(),
            MatchingConfig {
                vertices: MorphismType::Isomorphism,
                edges: MorphismType::Homomorphism,
            },
        ] {
            for (meta, rows) in [(&meta, &rows), (&path_meta, &path_rows)] {
                let check = MorphismCheck::new(meta, &config);
                let mut scratch = Vec::new();
                let expected: Vec<u32> = rows
                    .iter()
                    .enumerate()
                    .filter(|(_, row)| check.check(row, &mut scratch))
                    .map(|(index, _)| index as u32)
                    .collect();
                let mut batch = crate::embedding::EmbeddingBatch::new(rows, meta);
                check.check_batch(&mut batch, &mut scratch);
                assert_eq!(batch.selection(), &expected[..], "config: {config:?}");
            }
        }
    }
}
