//! Morphism semantics (paper Sections 2.2 and 2.3).
//!
//! Neo4j fixes homomorphic semantics for vertices and isomorphic semantics
//! for edges; Gradoop's operator lets the user choose both independently
//! when calling the operator — `g.cypher(q, HOMO, ISO)`. Isomorphism
//! requires the mapping to be injective: no two query vertices (edges) may
//! bind the same data vertex (edge).

use crate::embedding::{Embedding, EmbeddingMetaData};

/// Mapping semantics for one element kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MorphismType {
    /// Non-injective mapping — elements may repeat (`HOMO`).
    Homomorphism,
    /// Injective mapping — all bound elements are pairwise distinct (`ISO`).
    Isomorphism,
}

/// The semantics of one query execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchingConfig {
    /// Vertex mapping semantics.
    pub vertices: MorphismType,
    /// Edge mapping semantics.
    pub edges: MorphismType,
}

impl MatchingConfig {
    /// Homomorphism for vertices and edges.
    pub fn homomorphism() -> Self {
        MatchingConfig {
            vertices: MorphismType::Homomorphism,
            edges: MorphismType::Homomorphism,
        }
    }

    /// Isomorphism for vertices and edges.
    pub fn isomorphism() -> Self {
        MatchingConfig {
            vertices: MorphismType::Isomorphism,
            edges: MorphismType::Isomorphism,
        }
    }

    /// Neo4j's fixed semantics: homomorphic vertices, isomorphic edges.
    pub fn cypher_default() -> Self {
        MatchingConfig {
            vertices: MorphismType::Homomorphism,
            edges: MorphismType::Isomorphism,
        }
    }
}

impl Default for MatchingConfig {
    fn default() -> Self {
        MatchingConfig::cypher_default()
    }
}

/// A uniqueness check compiled against one embedding layout: the vertex,
/// edge and path column sets are resolved once per operator instead of once
/// per embedding, and the id buffer is caller-provided scratch so a whole
/// morsel of checks shares a single allocation.
#[derive(Debug, Clone)]
pub struct MorphismCheck {
    vertex_columns: Vec<usize>,
    edge_columns: Vec<usize>,
    path_columns: Vec<usize>,
    config: MatchingConfig,
}

impl MorphismCheck {
    /// Compiles the check for embeddings laid out by `meta`.
    pub fn new(meta: &EmbeddingMetaData, config: &MatchingConfig) -> Self {
        MorphismCheck {
            vertex_columns: meta.vertex_columns(),
            edge_columns: meta.edge_columns(),
            path_columns: meta.path_columns(),
            config: *config,
        }
    }

    /// `true` if the check can never reject (full homomorphism).
    pub fn is_trivial(&self) -> bool {
        self.config.vertices == MorphismType::Homomorphism
            && self.config.edges == MorphismType::Homomorphism
    }

    /// Checks the uniqueness constraints on `embedding`, using `scratch` as
    /// the id staging buffer (cleared on entry).
    pub fn check(&self, embedding: &Embedding, scratch: &mut Vec<u64>) -> bool {
        if self.config.vertices == MorphismType::Isomorphism {
            scratch.clear();
            embedding.collect_ids(&self.vertex_columns, scratch);
            for &column in &self.path_columns {
                // Odd positions are the intermediate vertices.
                scratch.extend(embedding.path_iter(column).skip(1).step_by(2));
            }
            if has_duplicates(scratch) {
                return false;
            }
        }
        if self.config.edges == MorphismType::Isomorphism {
            scratch.clear();
            embedding.collect_ids(&self.edge_columns, scratch);
            for &column in &self.path_columns {
                // Even positions are the path's edges.
                scratch.extend(embedding.path_iter(column).step_by(2));
            }
            if has_duplicates(scratch) {
                return false;
            }
        }
        true
    }
}

/// Checks the uniqueness constraints of `config` on an embedding: under
/// vertex (edge) isomorphism, all bound vertex (edge) identifiers —
/// including those inside paths, where entries alternate edge, vertex,
/// edge, ... — must be pairwise distinct.
///
/// Convenience form of [`MorphismCheck`] for one-off checks; hot loops
/// should compile the check once and reuse a scratch buffer.
pub fn satisfies_morphism(
    embedding: &Embedding,
    meta: &EmbeddingMetaData,
    config: &MatchingConfig,
) -> bool {
    MorphismCheck::new(meta, config).check(embedding, &mut Vec::new())
}

fn has_duplicates(ids: &mut [u64]) -> bool {
    ids.sort_unstable();
    ids.windows(2).any(|w| w[0] == w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::EntryType;

    fn triangle_meta() -> EmbeddingMetaData {
        let mut meta = EmbeddingMetaData::new();
        meta.add_entry("a", EntryType::Vertex);
        meta.add_entry("e", EntryType::Edge);
        meta.add_entry("b", EntryType::Vertex);
        meta
    }

    fn embedding(a: u64, e: u64, b: u64) -> Embedding {
        let mut emb = Embedding::new();
        emb.push_id(a);
        emb.push_id(e);
        emb.push_id(b);
        emb
    }

    #[test]
    fn homomorphism_allows_everything() {
        let meta = triangle_meta();
        let config = MatchingConfig::homomorphism();
        assert!(satisfies_morphism(&embedding(1, 5, 1), &meta, &config));
    }

    #[test]
    fn vertex_isomorphism_rejects_repeated_vertices() {
        let meta = triangle_meta();
        let config = MatchingConfig::isomorphism();
        assert!(satisfies_morphism(&embedding(1, 5, 2), &meta, &config));
        assert!(!satisfies_morphism(&embedding(1, 5, 1), &meta, &config));
    }

    #[test]
    fn edge_isomorphism_checks_edge_columns_only() {
        let mut meta = EmbeddingMetaData::new();
        meta.add_entry("e1", EntryType::Edge);
        meta.add_entry("e2", EntryType::Edge);
        let mut emb = Embedding::new();
        emb.push_id(5);
        emb.push_id(5);
        let homo_v_iso_e = MatchingConfig::cypher_default();
        assert!(!satisfies_morphism(&emb, &meta, &homo_v_iso_e));
        assert!(satisfies_morphism(
            &emb,
            &meta,
            &MatchingConfig::homomorphism()
        ));
    }

    #[test]
    fn path_contents_participate_in_checks() {
        let mut meta = EmbeddingMetaData::new();
        meta.add_entry("a", EntryType::Vertex);
        meta.add_entry("p", EntryType::Path);
        meta.add_entry("b", EntryType::Vertex);

        // Path via [e5, v20, e7]; endpoint a=10, b=30.
        let mut ok = Embedding::new();
        ok.push_id(10);
        ok.push_path(&[5, 20, 7]);
        ok.push_id(30);
        assert!(satisfies_morphism(
            &ok,
            &meta,
            &MatchingConfig::isomorphism()
        ));

        // Intermediate vertex equals an endpoint: vertex-ISO must reject.
        let mut dup_vertex = Embedding::new();
        dup_vertex.push_id(10);
        dup_vertex.push_path(&[5, 10, 7]);
        dup_vertex.push_id(30);
        assert!(!satisfies_morphism(
            &dup_vertex,
            &meta,
            &MatchingConfig::isomorphism()
        ));
        // ...but vertex-HOMO accepts (edge ids 5, 7 are distinct).
        assert!(satisfies_morphism(
            &dup_vertex,
            &meta,
            &MatchingConfig::cypher_default()
        ));

        // Repeated edge inside the path: edge-ISO must reject.
        let mut dup_edge = Embedding::new();
        dup_edge.push_id(10);
        dup_edge.push_path(&[5, 20, 5]);
        dup_edge.push_id(30);
        assert!(!satisfies_morphism(
            &dup_edge,
            &meta,
            &MatchingConfig::cypher_default()
        ));
        assert!(satisfies_morphism(
            &dup_edge,
            &meta,
            &MatchingConfig::homomorphism()
        ));
    }
}
