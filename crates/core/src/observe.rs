//! EXPLAIN / PROFILE: the engine's observability layer.
//!
//! The paper's whole evaluation (Section 4) rests on observing the engine —
//! per-query runtimes, intermediate-result cardinalities per operator
//! (Table 3), and shuffle behaviour across worker counts. This module holds
//! the data model for that:
//!
//! * [`ExplainNode`] — the annotated plan tree produced by the planner:
//!   one node per plan operator with its estimated cardinality and, for
//!   joins, the join strategy predicted from the estimates;
//! * [`PlannerTrace`] — the greedy planner's decision log: per round, every
//!   candidate edge with its estimated intermediate-result size and which
//!   one was committed;
//! * [`ProfileNode`] — the same tree after execution, annotated with actual
//!   rows in/out, selectivity, embedding bytes, simulated and wall-clock
//!   seconds, the join strategy actually chosen, per-iteration counters of
//!   variable-length expansion, and the estimate-vs-actual q-error;
//! * [`Explain`] / [`Profile`] — the top-level documents returned by
//!   [`CypherEngine::explain`](crate::CypherEngine::explain) and
//!   [`CypherEngine::profile`](crate::CypherEngine::profile), with pretty
//!   text and JSON renderers. JSON is emitted through the dependency-free
//!   [`JsonValue`] model (the offline stand-in for `serde_json`), so every
//!   document can be parsed back and compared.

use gradoop_dataflow::{JoinStrategy, JsonValue};

/// Stable lower-case name of a join strategy, used in text and JSON output.
pub fn strategy_name(strategy: JoinStrategy) -> &'static str {
    match strategy {
        JoinStrategy::RepartitionHash => "repartition-hash",
        JoinStrategy::BroadcastHashFirst => "broadcast-hash-first",
        JoinStrategy::BroadcastHashSecond => "broadcast-hash-second",
        JoinStrategy::RepartitionSortMerge => "repartition-sort-merge",
    }
}

/// How one input of a join is shipped to the workers that join it — the
/// simulated analogue of Flink's ship strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShipStrategy {
    /// The input is already partitioned on the join key: it stays in place
    /// and no network traffic is charged for it.
    Forward,
    /// The input is hash-repartitioned by the join key.
    Shuffle,
    /// The input is replicated to every worker.
    Broadcast,
}

/// Stable lower-case name of a ship strategy, used in text and JSON output.
pub fn ship_name(ship: ShipStrategy) -> &'static str {
    match ship {
        ShipStrategy::Forward => "forward",
        ShipStrategy::Shuffle => "shuffle",
        ShipStrategy::Broadcast => "broadcast",
    }
}

/// The `[left, right]` ship strategies a join strategy implies, given which
/// inputs are known to be partitioned on the join key already. Used by the
/// planner (with *expected* partitioning) and the executor (with the actual
/// run-time placement facts), so EXPLAIN and PROFILE show which shuffles
/// are elided.
pub fn ship_strategies(
    strategy: JoinStrategy,
    left_partitioned: bool,
    right_partitioned: bool,
) -> [ShipStrategy; 2] {
    let repartition = |partitioned: bool| {
        if partitioned {
            ShipStrategy::Forward
        } else {
            ShipStrategy::Shuffle
        }
    };
    match strategy {
        JoinStrategy::RepartitionHash | JoinStrategy::RepartitionSortMerge => [
            repartition(left_partitioned),
            repartition(right_partitioned),
        ],
        JoinStrategy::BroadcastHashFirst => [ShipStrategy::Broadcast, ShipStrategy::Forward],
        JoinStrategy::BroadcastHashSecond => [ShipStrategy::Forward, ShipStrategy::Broadcast],
    }
}

/// Renders a `[left, right]` ship-strategy pair as `forward,shuffle`.
pub fn ship_pair_name(pair: [ShipStrategy; 2]) -> String {
    format!("{},{}", ship_name(pair[0]), ship_name(pair[1]))
}

/// Ceiling for [`q_error`]: estimates that are non-finite (NaN, ±∞) or
/// astronomically wrong report this sentinel instead of propagating `inf`
/// or `NaN` into PROFILE text/JSON (where non-finite numbers render as
/// `null` and break downstream consumers).
pub const Q_ERROR_CAP: f64 = 1.0e12;

/// The estimate-vs-actual q-error: `max(est/act, act/est)`, with both sides
/// clamped to 1 so empty results do not divide by zero. 1.0 is a perfect
/// estimate; 10 means one order of magnitude off in either direction.
/// Non-finite estimates (and ratios beyond [`Q_ERROR_CAP`]) are clamped to
/// the cap, so the result is always a finite value in `[1, Q_ERROR_CAP]`.
pub fn q_error(estimated: f64, actual: u64) -> f64 {
    if !estimated.is_finite() {
        return Q_ERROR_CAP;
    }
    let estimated = estimated.max(1.0);
    let actual = (actual as f64).max(1.0);
    (estimated / actual)
        .max(actual / estimated)
        .min(Q_ERROR_CAP)
}

/// One operator of the annotated plan tree produced by the planner.
#[derive(Debug, Clone)]
pub struct ExplainNode {
    /// Operator label, e.g. `"ScanVertices(u:University)"` — the same
    /// format as [`QueryPlan::describe`](crate::QueryPlan::describe).
    pub operator: String,
    /// Estimated result cardinality of this operator.
    pub estimated_cardinality: f64,
    /// For joins and value joins: the strategy predicted from the estimated
    /// input cardinalities (the choice `choose_join_strategy` will make if
    /// the estimates are accurate).
    pub estimated_strategy: Option<JoinStrategy>,
    /// For joins: the `[left, right]` ship strategies expected from the
    /// predicted partitioning of each input — `forward` marks a shuffle the
    /// engine expects to elide.
    pub estimated_ship: Option<[ShipStrategy; 2]>,
    /// Input operators (0 for scans, 1 for expand/filter, 2 for joins).
    pub children: Vec<ExplainNode>,
}

impl ExplainNode {
    /// A leaf node.
    pub fn leaf(operator: impl Into<String>, estimated_cardinality: f64) -> Self {
        ExplainNode {
            operator: operator.into(),
            estimated_cardinality,
            estimated_strategy: None,
            estimated_ship: None,
            children: Vec::new(),
        }
    }

    /// An inner node over the given inputs.
    pub fn inner(
        operator: impl Into<String>,
        estimated_cardinality: f64,
        children: Vec<ExplainNode>,
    ) -> Self {
        ExplainNode {
            operator: operator.into(),
            estimated_cardinality,
            estimated_strategy: None,
            estimated_ship: None,
            children,
        }
    }

    /// Renders the subtree as indented text, one operator per line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write_text(0, &mut out);
        out
    }

    fn write_text(&self, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&self.operator);
        out.push_str(&format!("  est={:.0}", self.estimated_cardinality));
        if let Some(strategy) = self.estimated_strategy {
            out.push_str(&format!("  strategy={}", strategy_name(strategy)));
        }
        if let Some(ship) = self.estimated_ship {
            out.push_str(&format!("  ship={}", ship_pair_name(ship)));
        }
        out.push('\n');
        for child in &self.children {
            child.write_text(depth + 1, out);
        }
    }

    /// The subtree as a JSON document.
    pub fn to_json_value(&self) -> JsonValue {
        let mut pairs = vec![
            ("operator", JsonValue::string(self.operator.clone())),
            (
                "estimated_cardinality",
                JsonValue::Number(self.estimated_cardinality),
            ),
        ];
        if let Some(strategy) = self.estimated_strategy {
            pairs.push((
                "estimated_strategy",
                JsonValue::string(strategy_name(strategy)),
            ));
        }
        if let Some(ship) = self.estimated_ship {
            pairs.push(("estimated_ship", JsonValue::string(ship_pair_name(ship))));
        }
        pairs.push((
            "children",
            JsonValue::Array(self.children.iter().map(|c| c.to_json_value()).collect()),
        ));
        JsonValue::object(pairs)
    }
}

/// One candidate the greedy planner evaluated in a planning round.
#[derive(Debug, Clone)]
pub struct PlannerCandidate {
    /// Variable of the query edge the candidate would cover.
    pub edge_variable: String,
    /// Estimated intermediate-result size after committing this candidate.
    pub estimated_cardinality: f64,
}

/// One round of the greedy loop: every candidate considered, and the one
/// committed (always the minimum-cardinality candidate).
#[derive(Debug, Clone)]
pub struct PlannerRound {
    /// All evaluated alternatives.
    pub candidates: Vec<PlannerCandidate>,
    /// Edge variable of the committed candidate.
    pub chosen_edge: String,
    /// Estimated cardinality of the committed candidate.
    pub chosen_cardinality: f64,
}

/// The planner's full decision log.
#[derive(Debug, Clone, Default)]
pub struct PlannerTrace {
    /// Rounds of the greedy loop, in order.
    pub rounds: Vec<PlannerRound>,
}

impl PlannerTrace {
    /// Renders the decision log as text, one round per line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (index, round) in self.rounds.iter().enumerate() {
            let alternatives: Vec<String> = round
                .candidates
                .iter()
                .map(|c| format!("{}≈{:.0}", c.edge_variable, c.estimated_cardinality))
                .collect();
            out.push_str(&format!(
                "round {}: chose {} (est {:.0}) from [{}]\n",
                index + 1,
                round.chosen_edge,
                round.chosen_cardinality,
                alternatives.join(", ")
            ));
        }
        out
    }

    /// The decision log as a JSON document.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(
            self.rounds
                .iter()
                .map(|round| {
                    JsonValue::object(vec![
                        ("chosen_edge", JsonValue::string(round.chosen_edge.clone())),
                        (
                            "chosen_cardinality",
                            JsonValue::Number(round.chosen_cardinality),
                        ),
                        (
                            "candidates",
                            JsonValue::Array(
                                round
                                    .candidates
                                    .iter()
                                    .map(|c| {
                                        JsonValue::object(vec![
                                            (
                                                "edge_variable",
                                                JsonValue::string(c.edge_variable.clone()),
                                            ),
                                            (
                                                "estimated_cardinality",
                                                JsonValue::Number(c.estimated_cardinality),
                                            ),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        )
    }
}

/// The EXPLAIN document: annotated plan tree plus planner decision log.
#[derive(Debug, Clone)]
pub struct Explain {
    /// The query text.
    pub query: String,
    /// Root of the annotated plan tree.
    pub root: ExplainNode,
    /// The planner's decision log.
    pub planner: PlannerTrace,
    /// Estimated result cardinality of the whole query.
    pub estimated_cardinality: f64,
}

impl Explain {
    /// Pretty multi-line rendering: plan tree followed by planner rounds.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("EXPLAIN {}\n", self.query));
        out.push_str(&self.root.to_text());
        out.push_str(&format!(
            "estimated cardinality: {:.0}\n",
            self.estimated_cardinality
        ));
        if !self.planner.rounds.is_empty() {
            out.push_str("planner decisions:\n");
            out.push_str(&self.planner.to_text());
        }
        out
    }

    /// The document as a [`JsonValue`].
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("query", JsonValue::string(self.query.clone())),
            (
                "estimated_cardinality",
                JsonValue::Number(self.estimated_cardinality),
            ),
            ("plan", self.root.to_json_value()),
            ("planner", self.planner.to_json_value()),
        ])
    }

    /// The document as compact JSON text.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }

    /// All join strategies reported in the plan, pre-order.
    pub fn join_strategies(&self) -> Vec<(String, JoinStrategy)> {
        fn walk(node: &ExplainNode, out: &mut Vec<(String, JoinStrategy)>) {
            if let Some(strategy) = node.estimated_strategy {
                out.push((node.operator.clone(), strategy));
            }
            for child in &node.children {
                walk(child, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut out);
        out
    }
}

/// Per-iteration counters of one variable-length expansion.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpandIteration {
    /// Iteration number `k` (path length reached), 1-based.
    pub iteration: u64,
    /// Size of the working set after the k-hop extension.
    pub frontier_rows: u64,
    /// Embeddings emitted to the result in this iteration.
    pub emitted_rows: u64,
    /// Network bytes moved shipping the working set this iteration.
    pub shuffled_bytes: u64,
    /// Network bytes moved shipping the candidate edges this iteration.
    /// With the loop-invariant index (partition awareness on) this is
    /// non-zero only in iteration 1.
    pub candidate_shuffled_bytes: u64,
}

/// One operator of the profiled plan tree: the [`ExplainNode`] annotations
/// plus everything measured during execution.
#[derive(Debug, Clone)]
pub struct ProfileNode {
    /// Operator label (same format as [`ExplainNode::operator`]).
    pub operator: String,
    /// Estimated result cardinality (from the planner).
    pub estimated_cardinality: f64,
    /// Join strategy predicted from estimates, if this is a join.
    pub estimated_strategy: Option<JoinStrategy>,
    /// Join strategy actually chosen at runtime, if this is a join.
    pub actual_strategy: Option<JoinStrategy>,
    /// For joins: the `[left, right]` ship strategies actually applied,
    /// derived from the runtime partitioning facts of the inputs —
    /// `forward` marks a shuffle that was elided.
    pub actual_ship: Option<[ShipStrategy; 2]>,
    /// Rows consumed: scanned candidate elements for leaves, the children's
    /// output rows otherwise.
    pub rows_in: u64,
    /// Result embeddings produced.
    pub rows_out: u64,
    /// `rows_out / rows_in` (1.0 for empty inputs).
    pub selectivity: f64,
    /// Total bytes of the produced embeddings.
    pub embedding_bytes: u64,
    /// Simulated seconds charged by this operator (children excluded).
    pub simulated_seconds: f64,
    /// Wall-clock seconds spent in this operator (children excluded).
    pub wall_seconds: f64,
    /// Dataflow stages this operator executed.
    pub stages: u64,
    /// Morsels executed by this operator's stages (zero when work stealing
    /// is disabled — static stages are not morselized).
    pub morsels: u64,
    /// Morsels that ran on a worker other than their partition's owner.
    pub stolen_morsels: u64,
    /// Batches processed by this operator's vectorized kernels (zero on the
    /// row-at-a-time path).
    pub batches: u64,
    /// Rows scanned by those batches.
    pub batch_rows: u64,
    /// Rows still selected when the batches were materialized;
    /// `batch_rows_selected / batch_rows` is the mean selection-vector fill.
    pub batch_rows_selected: u64,
    /// Estimate-vs-actual q-error (see [`q_error`]).
    pub estimate_error: f64,
    /// Recovery attempts consumed by this operator's stages (retries after
    /// injected crashes/lost partitions, checkpoint rollbacks). Zero on a
    /// fault-free run.
    pub recovery_attempts: u64,
    /// Simulated seconds this operator spent on recovery (wasted attempts,
    /// backoff, restores). Included in
    /// [`simulated_seconds`](ProfileNode::simulated_seconds).
    pub recovery_seconds: f64,
    /// Bytes this operator's bulk iterations wrote as checkpoints.
    pub checkpoint_bytes: u64,
    /// Bytes re-read from durable storage while recovering.
    pub restored_bytes: u64,
    /// Peak transient bytes (join build sides, sort runs) held by the most
    /// loaded worker across this operator's stages.
    pub peak_memory_bytes: u64,
    /// Scratch buffers (hash tables, sort runs) allocated by this
    /// operator's stages, summed over workers.
    pub scratch_allocations: u64,
    /// Per-iteration counters (variable-length expansion only).
    pub iterations: Vec<ExpandIteration>,
    /// Adjacency candidate-list entries fetched by worst-case-optimal
    /// intersection (`ExpandIntersect` only) — the rows a binary plan would
    /// have materialized as open-path intermediates.
    pub rows_intersected: u64,
    /// Profiled inputs.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Mean selection-vector fill ratio of this operator's batches
    /// (`batch_rows_selected / batch_rows`; 0 when no batch ran).
    pub fn batch_fill(&self) -> f64 {
        if self.batch_rows > 0 {
            self.batch_rows_selected as f64 / self.batch_rows as f64
        } else {
            0.0
        }
    }

    /// Renders the subtree as indented text, one operator per line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write_text(0, &mut out);
        out
    }

    fn write_text(&self, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&self.operator);
        out.push_str(&format!(
            "  in={} out={} sel={:.3} est={:.0} q_err={:.1} bytes={} t_sim={:.4}s t_wall={:.4}s",
            self.rows_in,
            self.rows_out,
            self.selectivity,
            self.estimated_cardinality,
            self.estimate_error,
            self.embedding_bytes,
            self.simulated_seconds,
            self.wall_seconds,
        ));
        if let Some(strategy) = self.actual_strategy {
            out.push_str(&format!("  strategy={}", strategy_name(strategy)));
        }
        if let Some(ship) = self.actual_ship {
            out.push_str(&format!("  ship={}", ship_pair_name(ship)));
        }
        if self.morsels > 0 {
            out.push_str(&format!(
                "  morsels={} stolen={}",
                self.morsels, self.stolen_morsels
            ));
        }
        if self.batches > 0 {
            out.push_str(&format!(
                "  batches={} sel={:.2}",
                self.batches,
                self.batch_fill()
            ));
        }
        if self.peak_memory_bytes > 0 || self.scratch_allocations > 0 {
            out.push_str(&format!(
                "  mem_peak={}B allocs={}",
                self.peak_memory_bytes, self.scratch_allocations
            ));
        }
        if self.rows_intersected > 0 {
            out.push_str(&format!("  wco: intersected={}", self.rows_intersected));
        }
        if self.recovery_attempts > 0 || self.checkpoint_bytes > 0 || self.restored_bytes > 0 {
            out.push_str(&format!(
                "  retries={} t_recovery={:.4}s ckpt={}B restored={}B",
                self.recovery_attempts,
                self.recovery_seconds,
                self.checkpoint_bytes,
                self.restored_bytes,
            ));
        }
        out.push('\n');
        for iteration in &self.iterations {
            out.push_str(&"  ".repeat(depth + 1));
            out.push_str(&format!(
                "· iteration {}: frontier={} emitted={} shuffled={}B candidates={}B\n",
                iteration.iteration,
                iteration.frontier_rows,
                iteration.emitted_rows,
                iteration.shuffled_bytes,
                iteration.candidate_shuffled_bytes
            ));
        }
        for child in &self.children {
            child.write_text(depth + 1, out);
        }
    }

    /// The subtree as a JSON document.
    pub fn to_json_value(&self) -> JsonValue {
        let mut pairs = vec![
            ("operator", JsonValue::string(self.operator.clone())),
            (
                "estimated_cardinality",
                JsonValue::Number(self.estimated_cardinality),
            ),
            ("rows_in", JsonValue::Number(self.rows_in as f64)),
            ("rows_out", JsonValue::Number(self.rows_out as f64)),
            ("selectivity", JsonValue::Number(self.selectivity)),
            (
                "embedding_bytes",
                JsonValue::Number(self.embedding_bytes as f64),
            ),
            (
                "simulated_seconds",
                JsonValue::Number(self.simulated_seconds),
            ),
            ("wall_seconds", JsonValue::Number(self.wall_seconds)),
            ("stages", JsonValue::Number(self.stages as f64)),
            ("estimate_error", JsonValue::Number(self.estimate_error)),
            (
                "peak_memory_bytes",
                JsonValue::Number(self.peak_memory_bytes as f64),
            ),
            (
                "scratch_allocations",
                JsonValue::Number(self.scratch_allocations as f64),
            ),
        ];
        if let Some(strategy) = self.estimated_strategy {
            pairs.push((
                "estimated_strategy",
                JsonValue::string(strategy_name(strategy)),
            ));
        }
        if let Some(strategy) = self.actual_strategy {
            pairs.push((
                "actual_strategy",
                JsonValue::string(strategy_name(strategy)),
            ));
        }
        if let Some(ship) = self.actual_ship {
            pairs.push(("actual_ship", JsonValue::string(ship_pair_name(ship))));
        }
        if self.morsels > 0 {
            pairs.push(("morsels", JsonValue::Number(self.morsels as f64)));
            pairs.push((
                "stolen_morsels",
                JsonValue::Number(self.stolen_morsels as f64),
            ));
        }
        if self.batches > 0 {
            pairs.push(("batches", JsonValue::Number(self.batches as f64)));
            pairs.push(("batch_rows", JsonValue::Number(self.batch_rows as f64)));
            pairs.push((
                "batch_rows_selected",
                JsonValue::Number(self.batch_rows_selected as f64),
            ));
        }
        if self.recovery_attempts > 0 || self.checkpoint_bytes > 0 || self.restored_bytes > 0 {
            pairs.push((
                "recovery_attempts",
                JsonValue::Number(self.recovery_attempts as f64),
            ));
            pairs.push(("recovery_seconds", JsonValue::Number(self.recovery_seconds)));
            pairs.push((
                "checkpoint_bytes",
                JsonValue::Number(self.checkpoint_bytes as f64),
            ));
            pairs.push((
                "restored_bytes",
                JsonValue::Number(self.restored_bytes as f64),
            ));
        }
        if self.rows_intersected > 0 {
            pairs.push((
                "rows_intersected",
                JsonValue::Number(self.rows_intersected as f64),
            ));
        }
        if !self.iterations.is_empty() {
            pairs.push((
                "iterations",
                JsonValue::Array(
                    self.iterations
                        .iter()
                        .map(|i| {
                            JsonValue::object(vec![
                                ("iteration", JsonValue::Number(i.iteration as f64)),
                                ("frontier_rows", JsonValue::Number(i.frontier_rows as f64)),
                                ("emitted_rows", JsonValue::Number(i.emitted_rows as f64)),
                                ("shuffled_bytes", JsonValue::Number(i.shuffled_bytes as f64)),
                                (
                                    "candidate_shuffled_bytes",
                                    JsonValue::Number(i.candidate_shuffled_bytes as f64),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        pairs.push((
            "children",
            JsonValue::Array(self.children.iter().map(|c| c.to_json_value()).collect()),
        ));
        JsonValue::object(pairs)
    }

    /// Pre-order flattening to `(operator, rows_out)` — the Table 3
    /// "intermediate result count per operator" view.
    pub fn operator_rows(&self) -> Vec<(String, u64)> {
        fn walk(node: &ProfileNode, out: &mut Vec<(String, u64)>) {
            out.push((node.operator.clone(), node.rows_out));
            for child in &node.children {
                walk(child, out);
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Sum of `rows_out` over all non-root operators — the paper's
    /// "intermediate results" measure (Table 3).
    pub fn intermediate_rows(&self) -> u64 {
        self.operator_rows()
            .iter()
            .skip(1)
            .map(|(_, rows)| rows)
            .sum()
    }
}

/// The PROFILE document: profiled plan tree, planner log and query totals.
#[derive(Debug, Clone)]
pub struct Profile {
    /// The query text.
    pub query: String,
    /// Root of the profiled plan tree.
    pub root: ProfileNode,
    /// The planner's decision log.
    pub planner: PlannerTrace,
    /// Final match count (after `RETURN DISTINCT` deduplication, if any).
    pub matches: u64,
    /// Total simulated seconds of the run.
    pub simulated_seconds: f64,
    /// Total wall-clock seconds of the run.
    pub wall_seconds: f64,
    /// Total recovery attempts across the run (0 on a fault-free run).
    pub recovery_attempts: u64,
    /// Total simulated seconds spent on recovery, included in
    /// [`simulated_seconds`](Profile::simulated_seconds).
    pub recovery_seconds: f64,
    /// Total checkpoint bytes written by bulk iterations.
    pub checkpoint_bytes: u64,
    /// Total bytes re-read from durable storage during recovery.
    pub restored_bytes: u64,
    /// Peak transient bytes held by the most loaded worker across the run.
    pub peak_memory_bytes: u64,
    /// Scratch buffers allocated across the run, summed over workers.
    pub scratch_allocations: u64,
}

impl Profile {
    /// Pretty multi-line rendering.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("PROFILE {}\n", self.query));
        out.push_str(&self.root.to_text());
        out.push_str(&format!(
            "matches: {}   simulated: {:.4}s   wall: {:.4}s\n",
            self.matches, self.simulated_seconds, self.wall_seconds
        ));
        if self.peak_memory_bytes > 0 || self.scratch_allocations > 0 {
            out.push_str(&format!(
                "memory: peak={}B   scratch allocations={}\n",
                self.peak_memory_bytes, self.scratch_allocations
            ));
        }
        if self.recovery_attempts > 0 || self.checkpoint_bytes > 0 || self.restored_bytes > 0 {
            out.push_str(&format!(
                "recovery: attempts={}   simulated: {:.4}s   checkpoints: {}B   restored: {}B\n",
                self.recovery_attempts,
                self.recovery_seconds,
                self.checkpoint_bytes,
                self.restored_bytes,
            ));
        }
        if !self.planner.rounds.is_empty() {
            out.push_str("planner decisions:\n");
            out.push_str(&self.planner.to_text());
        }
        out
    }

    /// The document as a [`JsonValue`].
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("query", JsonValue::string(self.query.clone())),
            ("matches", JsonValue::Number(self.matches as f64)),
            (
                "simulated_seconds",
                JsonValue::Number(self.simulated_seconds),
            ),
            ("wall_seconds", JsonValue::Number(self.wall_seconds)),
            (
                "recovery_attempts",
                JsonValue::Number(self.recovery_attempts as f64),
            ),
            ("recovery_seconds", JsonValue::Number(self.recovery_seconds)),
            (
                "checkpoint_bytes",
                JsonValue::Number(self.checkpoint_bytes as f64),
            ),
            (
                "restored_bytes",
                JsonValue::Number(self.restored_bytes as f64),
            ),
            (
                "peak_memory_bytes",
                JsonValue::Number(self.peak_memory_bytes as f64),
            ),
            (
                "scratch_allocations",
                JsonValue::Number(self.scratch_allocations as f64),
            ),
            ("plan", self.root.to_json_value()),
            ("planner", self.planner.to_json_value()),
        ])
    }

    /// The document as compact JSON text.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ship_strategies_follow_partitioning() {
        use JoinStrategy::*;
        // Repartition joins forward any side already placed on the key.
        assert_eq!(
            ship_strategies(RepartitionHash, false, false),
            [ShipStrategy::Shuffle, ShipStrategy::Shuffle]
        );
        assert_eq!(
            ship_strategies(RepartitionHash, true, false),
            [ShipStrategy::Forward, ShipStrategy::Shuffle]
        );
        assert_eq!(
            ship_strategies(RepartitionSortMerge, true, true),
            [ShipStrategy::Forward, ShipStrategy::Forward]
        );
        // Broadcast replicates the build side; the other side never moves,
        // regardless of partitioning.
        assert_eq!(
            ship_strategies(BroadcastHashFirst, false, true),
            [ShipStrategy::Broadcast, ShipStrategy::Forward]
        );
        assert_eq!(
            ship_strategies(BroadcastHashSecond, true, false),
            [ShipStrategy::Forward, ShipStrategy::Broadcast]
        );
        assert_eq!(
            ship_pair_name(ship_strategies(RepartitionHash, true, false)),
            "forward,shuffle"
        );
    }

    fn sample_profile() -> Profile {
        let scan = ProfileNode {
            operator: "ScanEdges(e:knows)".into(),
            estimated_cardinality: 10.0,
            estimated_strategy: None,
            actual_strategy: None,
            actual_ship: None,
            rows_in: 5,
            rows_out: 3,
            selectivity: 0.6,
            embedding_bytes: 96,
            simulated_seconds: 0.5,
            wall_seconds: 0.001,
            stages: 2,
            morsels: 0,
            stolen_morsels: 0,
            batches: 0,
            batch_rows: 0,
            batch_rows_selected: 0,
            estimate_error: q_error(10.0, 3),
            recovery_attempts: 0,
            recovery_seconds: 0.0,
            checkpoint_bytes: 0,
            restored_bytes: 0,
            peak_memory_bytes: 0,
            scratch_allocations: 0,
            iterations: vec![],
            rows_intersected: 0,
            children: vec![],
        };
        let expand = ProfileNode {
            operator: "ExpandEmbeddings(e *1..2)".into(),
            estimated_cardinality: 4.0,
            estimated_strategy: Some(JoinStrategy::RepartitionHash),
            actual_strategy: Some(JoinStrategy::RepartitionHash),
            actual_ship: Some([ShipStrategy::Shuffle, ShipStrategy::Forward]),
            rows_in: 3,
            rows_out: 4,
            selectivity: 4.0 / 3.0,
            embedding_bytes: 128,
            simulated_seconds: 1.25,
            wall_seconds: 0.002,
            stages: 5,
            morsels: 8,
            stolen_morsels: 2,
            batches: 4,
            batch_rows: 8,
            batch_rows_selected: 4,
            estimate_error: q_error(4.0, 4),
            recovery_attempts: 1,
            recovery_seconds: 0.25,
            checkpoint_bytes: 128,
            restored_bytes: 64,
            peak_memory_bytes: 2048,
            scratch_allocations: 3,
            iterations: vec![
                ExpandIteration {
                    iteration: 1,
                    frontier_rows: 3,
                    emitted_rows: 3,
                    shuffled_bytes: 96,
                    candidate_shuffled_bytes: 72,
                },
                ExpandIteration {
                    iteration: 2,
                    frontier_rows: 1,
                    emitted_rows: 1,
                    shuffled_bytes: 32,
                    candidate_shuffled_bytes: 0,
                },
            ],
            rows_intersected: 0,
            children: vec![scan],
        };
        Profile {
            query: "MATCH (a)-[e:knows*1..2]->(b) RETURN *".into(),
            root: expand,
            planner: PlannerTrace {
                rounds: vec![PlannerRound {
                    candidates: vec![PlannerCandidate {
                        edge_variable: "e".into(),
                        estimated_cardinality: 4.0,
                    }],
                    chosen_edge: "e".into(),
                    chosen_cardinality: 4.0,
                }],
            },
            matches: 4,
            simulated_seconds: 1.75,
            wall_seconds: 0.003,
            recovery_attempts: 1,
            recovery_seconds: 0.25,
            checkpoint_bytes: 128,
            restored_bytes: 64,
            peak_memory_bytes: 2048,
            scratch_allocations: 3,
        }
    }

    #[test]
    fn q_error_is_symmetric_and_clamped() {
        assert_eq!(q_error(10.0, 10), 1.0);
        assert_eq!(q_error(100.0, 10), 10.0);
        assert_eq!(q_error(10.0, 100), 10.0);
        // Empty actuals clamp to 1 instead of dividing by zero.
        assert_eq!(q_error(5.0, 0), 5.0);
        assert_eq!(q_error(0.0, 0), 1.0);
        // Negative estimates clamp to 1, never flipping the ratio's sign.
        assert_eq!(q_error(-12.0, 5), 5.0);
    }

    #[test]
    fn q_error_never_emits_non_finite_values() {
        // A runaway (or overflowed) estimate caps at the sentinel instead
        // of rendering as `inf` (→ `null` in JSON).
        assert_eq!(q_error(f64::INFINITY, 3), Q_ERROR_CAP);
        assert_eq!(q_error(f64::NEG_INFINITY, 3), Q_ERROR_CAP);
        assert_eq!(q_error(f64::NAN, 3), Q_ERROR_CAP);
        assert_eq!(q_error(1.0e300, 1), Q_ERROR_CAP);
        for value in [
            q_error(f64::INFINITY, 0),
            q_error(f64::NAN, u64::MAX),
            q_error(f64::MAX, 1),
        ] {
            assert!(value.is_finite());
            assert!((1.0..=Q_ERROR_CAP).contains(&value));
        }
    }

    #[test]
    fn profile_json_round_trips() {
        let profile = sample_profile();
        let json = profile.to_json();
        let parsed = JsonValue::parse(&json).expect("profile JSON parses");
        assert!(parsed.semantically_eq(&profile.to_json_value()));
        // Spot-check nested content survives.
        let plan = parsed.get("plan").unwrap();
        assert_eq!(
            plan.get("operator").and_then(JsonValue::as_str),
            Some("ExpandEmbeddings(e *1..2)")
        );
        assert_eq!(
            plan.get("iterations")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(2)
        );
    }

    #[test]
    fn explain_json_and_text_render() {
        let explain = Explain {
            query: "MATCH (a)-[e]->(b) RETURN *".into(),
            root: ExplainNode {
                operator: "JoinEmbeddings(on a)".into(),
                estimated_cardinality: 42.0,
                estimated_strategy: Some(JoinStrategy::BroadcastHashSecond),
                estimated_ship: Some([ShipStrategy::Forward, ShipStrategy::Broadcast]),
                children: vec![
                    ExplainNode::leaf("ScanVertices(a)", 100.0),
                    ExplainNode::leaf("ScanEdges(e)", 5.0),
                ],
            },
            planner: PlannerTrace::default(),
            estimated_cardinality: 42.0,
        };
        let text = explain.to_text();
        assert!(text.contains("JoinEmbeddings(on a)"));
        assert!(text.contains("strategy=broadcast-hash-second"));
        assert!(text.contains("ship=forward,broadcast"), "{text}");
        assert!(text.contains("  ScanVertices(a)"));
        let parsed = JsonValue::parse(&explain.to_json()).unwrap();
        assert!(parsed.semantically_eq(&explain.to_json_value()));
        assert_eq!(
            explain.join_strategies(),
            vec![(
                "JoinEmbeddings(on a)".to_string(),
                JoinStrategy::BroadcastHashSecond
            )]
        );
    }

    #[test]
    fn operator_rows_flattens_preorder() {
        let profile = sample_profile();
        assert_eq!(
            profile.root.operator_rows(),
            vec![
                ("ExpandEmbeddings(e *1..2)".to_string(), 4),
                ("ScanEdges(e:knows)".to_string(), 3),
            ]
        );
        assert_eq!(profile.root.intermediate_rows(), 3);
    }

    #[test]
    fn profile_text_includes_iterations() {
        let text = sample_profile().to_text();
        assert!(
            text.contains("iteration 1: frontier=3 emitted=3 shuffled=96B candidates=72B"),
            "{text}"
        );
        assert!(text.contains("ship=shuffle,forward"), "{text}");
        assert!(text.contains("q_err="), "{text}");
        assert!(text.contains("planner decisions:"), "{text}");
        assert!(
            text.contains("retries=1 t_recovery=0.2500s ckpt=128B restored=64B"),
            "{text}"
        );
        assert!(
            text.contains("recovery: attempts=1   simulated: 0.2500s"),
            "{text}"
        );
        assert!(text.contains("mem_peak=2048B allocs=3"), "{text}");
        assert!(
            text.contains("memory: peak=2048B   scratch allocations=3"),
            "{text}"
        );
    }
}
