//! Cartesian product of embedding sets — required when the query graph has
//! multiple connected components (e.g. `MATCH (a), (b) RETURN *`).

use gradoop_dataflow::JoinStrategy;

use crate::matching::{satisfies_morphism, MatchingConfig};
use crate::operators::{observe_operator, EmbeddingSet};

/// Combines every left embedding with every right embedding, subject to the
/// morphism semantics. The (smaller) right side is broadcast.
pub fn cartesian_embeddings(
    left: &EmbeddingSet,
    right: &EmbeddingSet,
    config: &MatchingConfig,
) -> EmbeddingSet {
    let meta = left.meta.merge(&right.meta, &[]);
    let merged_meta = meta.clone();
    let config = *config;
    let data = left.data.join(
        &right.data,
        |_| (),
        |_| (),
        JoinStrategy::BroadcastHashSecond,
        move |l, r| {
            let merged = l.merge(r, &[]);
            satisfies_morphism(&merged, &merged_meta, &config).then_some(merged)
        },
    );
    let rows_in = (left.data.len_untracked() + right.data.len_untracked()) as u64;
    let result = EmbeddingSet { data, meta };
    observe_operator("cartesian_embeddings", rows_in, &result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::{Embedding, EmbeddingMetaData, EntryType};
    use gradoop_dataflow::{CostModel, ExecutionConfig, ExecutionEnvironment};

    fn vertices(env: &ExecutionEnvironment, variable: &str, ids: &[u64]) -> EmbeddingSet {
        let mut meta = EmbeddingMetaData::new();
        meta.add_entry(variable, EntryType::Vertex);
        let data = env.from_collection(
            ids.iter()
                .map(|id| {
                    let mut emb = Embedding::new();
                    emb.push_id(*id);
                    emb
                })
                .collect::<Vec<_>>(),
        );
        EmbeddingSet { data, meta }
    }

    #[test]
    fn homomorphism_produces_full_product() {
        let env = ExecutionEnvironment::new(
            ExecutionConfig::with_workers(2).cost_model(CostModel::free()),
        );
        let a = vertices(&env, "a", &[1, 2]);
        let b = vertices(&env, "b", &[1, 2, 3]);
        let product = cartesian_embeddings(&a, &b, &MatchingConfig::homomorphism());
        assert_eq!(product.data.count(), 6);
        assert_eq!(product.meta.columns(), 2);
    }

    #[test]
    fn vertex_isomorphism_excludes_diagonal() {
        let env = ExecutionEnvironment::new(
            ExecutionConfig::with_workers(2).cost_model(CostModel::free()),
        );
        let a = vertices(&env, "a", &[1, 2]);
        let b = vertices(&env, "b", &[1, 2, 3]);
        let product = cartesian_embeddings(&a, &b, &MatchingConfig::isomorphism());
        // (1,1) and (2,2) are pruned.
        assert_eq!(product.data.count(), 4);
    }

    #[test]
    fn empty_side_yields_empty_product() {
        let env = ExecutionEnvironment::new(
            ExecutionConfig::with_workers(2).cost_model(CostModel::free()),
        );
        let a = vertices(&env, "a", &[1]);
        let b = vertices(&env, "b", &[]);
        let product = cartesian_embeddings(&a, &b, &MatchingConfig::homomorphism());
        assert_eq!(product.data.count(), 0);
    }
}
