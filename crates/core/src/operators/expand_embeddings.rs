//! `ExpandEmbeddings`: variable-length path expressions via bulk iteration
//! (paper Section 3.1).
//!
//! A path of length `k` corresponds to a k-way join between the input
//! embeddings and the edge set. The operator runs a bulk iteration whose
//! body performs a 1-hop expansion (a join with the candidate edges),
//! keeps only paths that satisfy the configured morphism semantics, and
//! unions embeddings into the result set once the iteration counter reaches
//! the lower bound. The iteration terminates when the upper bound is
//! reached or no extensible paths remain.
//!
//! The candidate edge set is **loop-invariant**: it never changes between
//! supersteps. With partition awareness enabled (the default) the operator
//! partitions the candidates by source vertex and hash-indexes them *once*,
//! before the iteration starts, and every superstep only ships the working
//! set to the cached index — Flink caches loop-invariant datasets inside a
//! `BulkIteration` the same way. With awareness disabled the candidates are
//! re-shuffled and re-indexed every round, which is what the shuffle-
//! avoidance ablation in the benchmark harness measures.

use gradoop_dataflow::{
    bulk_iterate_with_invariant_index, bulk_iterate_with_results, Dataset, PartitionKey,
    PartitionedIndex, SpanRecord,
};

use crate::embedding::{Embedding, EntryType};
use crate::matching::{satisfies_morphism, MatchingConfig, MorphismType};
use crate::operators::{malformed_plan, observe_operator, EmbeddingSet};

/// A candidate edge, projected to `(source, edge, target)` identifiers.
pub type EdgeTriple = (u64, u64, u64);

/// Configuration of one expansion.
#[derive(Debug, Clone)]
pub struct ExpandConfig {
    /// Variable the expansion starts from (must be bound in the input).
    pub source_variable: String,
    /// The path's edge variable (bound to a path column in the output).
    pub edge_variable: String,
    /// Variable the expansion ends at. If already bound in the input the
    /// expansion closes a cycle; otherwise a new vertex column is added.
    pub target_variable: String,
    /// Minimum number of edges (0 allows the empty path).
    pub lower: usize,
    /// Maximum number of edges.
    pub upper: usize,
    /// Morphism semantics.
    pub matching: MatchingConfig,
}

/// Working-set element: the base embedding, the path's `via` identifiers
/// (alternating edge, vertex, edge, ...) and the current end vertex.
type ExpandState = (Embedding, Vec<u64>, u64);

/// Expands `input` along `candidates` according to `config`.
pub fn expand_embeddings(
    input: &EmbeddingSet,
    candidates: &Dataset<EdgeTriple>,
    config: &ExpandConfig,
) -> EmbeddingSet {
    let Some(source_column) = input.meta.column(&config.source_variable) else {
        // A malformed plan, not a data fault: record a classified failure
        // and degrade to an empty result instead of panicking.
        return malformed_plan(
            input,
            "expand_embeddings",
            format!("expand source `{}` unbound", config.source_variable),
        );
    };
    let close_column = input.meta.column(&config.target_variable);

    // Output layout: input columns + path column (+ target column unless
    // the expansion closes a cycle on an already-bound variable).
    let mut meta = input.meta.clone();
    meta.add_entry(&config.edge_variable, EntryType::Path);
    if close_column.is_none() {
        meta.add_entry(&config.target_variable, EntryType::Vertex);
    }

    let base_vertex_columns = input.meta.vertex_columns();
    let base_edge_columns = input.meta.edge_columns();
    let base_path_columns = input.meta.path_columns();
    let matching = config.matching;

    let emit = |state: &ExpandState| -> Option<Embedding> {
        let (base, via, end) = state;
        if let Some(close) = close_column {
            if base.id(close) != *end {
                return None;
            }
        }
        // Path column + optional target column land in one exact-capacity
        // allocation instead of clone-then-splice.
        let result = base.extend_with_path_and_id(via, close_column.is_none().then_some(*end));
        satisfies_morphism(&result, &meta, &matching).then_some(result)
    };

    let env = input.data.env().clone();

    // Initial working set: empty path anchored at the source column.
    let initial: Dataset<ExpandState> = input
        .data
        .map(move |embedding| (embedding.clone(), Vec::new(), embedding.id(source_column)));

    // Zero-length paths (lower bound 0) are emitted before the iteration.
    let mut results: Dataset<Embedding> = if config.lower == 0 {
        initial.flat_map(|state, out| out.extend(emit(state)))
    } else {
        env.empty()
    };

    let lower = config.lower.max(1);
    let aware = env.partition_aware();
    let candidate_key = PartitionKey::named("expand:candidate.source");

    // The 1-hop expansion probing the candidate index with the working set,
    // shared by both execution modes. Emits per-iteration PROFILE counters:
    // path length reached, size of the surviving working set, embeddings
    // emitted this round, frontier bytes shipped, and candidate-side bytes
    // shipped (the loop-invariant cache makes the last drop to zero after
    // round 1). A no-op unless a trace sink is installed.
    let step_env = env.clone();
    let step = |states: Dataset<ExpandState>,
                index: &PartitionedIndex<u64, EdgeTriple>,
                k: usize|
     -> (Dataset<ExpandState>, Dataset<Embedding>) {
        let bytes_before = step_env.metrics().bytes_shuffled;
        let candidate_bytes = if aware && k > 1 {
            0
        } else {
            index.build_shuffled_bytes()
        };
        let next: Dataset<ExpandState> = index.probe_join(
            &states,
            |(_, _, end)| *end,
            |(base, via, end), (_, edge, target)| {
                if !valid_extension(
                    base,
                    via,
                    *end,
                    *edge,
                    &base_vertex_columns,
                    &base_edge_columns,
                    &base_path_columns,
                    &matching,
                ) {
                    return None;
                }
                let mut extended = Vec::with_capacity(via.len() + 2);
                if via.is_empty() {
                    extended.push(*edge);
                } else {
                    extended.extend_from_slice(via);
                    extended.push(*end);
                    extended.push(*edge);
                }
                Some((base.clone(), extended, *target))
            },
        );
        let found: Dataset<Embedding> = if k >= lower {
            next.flat_map(|state, out| out.extend(emit(state)))
        } else {
            step_env.empty()
        };
        let frontier_bytes = step_env.metrics().bytes_shuffled - bytes_before;
        step_env.emit_span(SpanRecord {
            name: "expand/iteration".to_string(),
            wall_seconds: 0.0,
            simulated_seconds: 0.0,
            counters: vec![
                ("iteration".to_string(), k as f64),
                ("frontier_rows".to_string(), next.len_untracked() as f64),
                ("emitted_rows".to_string(), found.len_untracked() as f64),
                ("shuffled_bytes".to_string(), frontier_bytes as f64),
                (
                    "candidate_shuffled_bytes".to_string(),
                    candidate_bytes as f64,
                ),
            ],
        });
        (next, found)
    };

    let (_, iterated) = if aware {
        // Loop-invariant path: candidates are shuffled by source vertex and
        // hash-indexed exactly once, before the first superstep.
        bulk_iterate_with_invariant_index(
            initial,
            config.upper,
            candidates,
            candidate_key,
            |(source, _, _)| *source,
            |states, index, k| step(states, index, k),
        )
    } else {
        // Ablation path: re-shuffle and re-index the candidates each round,
        // like the pre-optimization dataflow did.
        bulk_iterate_with_results(initial, config.upper, |states, k| {
            let index = candidates.build_partitioned_index(candidate_key, |(source, _, _)| *source);
            step(states, &index, k)
        })
    };
    results = results.union(&iterated);

    let rows_in = (input.data.len_untracked() + candidates.len_untracked()) as u64;
    let result = EmbeddingSet {
        data: results,
        meta,
    };
    observe_operator("expand_embeddings", rows_in, &result);
    result
}

/// Checks whether extending a path with `edge` keeps it viable under the
/// configured semantics. The final embedding is re-checked by
/// [`satisfies_morphism`]; this pre-check prunes states that could never
/// produce a valid embedding, keeping intermediate results small — the
/// "keep only paths that satisfy the specified query semantics" step of the
/// paper's iteration body.
#[allow(clippy::too_many_arguments)]
fn valid_extension(
    base: &Embedding,
    via: &[u64],
    end: u64,
    edge: u64,
    base_vertex_columns: &[usize],
    base_edge_columns: &[usize],
    base_path_columns: &[usize],
    matching: &MatchingConfig,
) -> bool {
    if matching.edges == MorphismType::Isomorphism {
        // The new edge must not repeat any edge of this path, any edge
        // column of the base, or any edge inside the base's path columns.
        if via.iter().step_by(2).any(|&e| e == edge) {
            return false;
        }
        for &column in base_edge_columns {
            if base.id(column) == edge {
                return false;
            }
        }
        for &column in base_path_columns {
            if base.path_iter(column).step_by(2).any(|e| e == edge) {
                return false;
            }
        }
    }
    if matching.vertices == MorphismType::Isomorphism && !via.is_empty() {
        // `end` becomes an intermediate path vertex: it must be fresh.
        if via.iter().skip(1).step_by(2).any(|&v| v == end) {
            return false;
        }
        for &column in base_vertex_columns {
            if base.id(column) == end {
                return false;
            }
        }
        for &column in base_path_columns {
            if base.path_iter(column).skip(1).step_by(2).any(|v| v == end) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::EmbeddingMetaData;
    use gradoop_dataflow::{CostModel, ExecutionConfig, ExecutionEnvironment};

    fn env() -> ExecutionEnvironment {
        ExecutionEnvironment::new(ExecutionConfig::with_workers(2).cost_model(CostModel::free()))
    }

    /// One-column input: vertex variable `a` bound to each given id.
    fn starts(env: &ExecutionEnvironment, ids: &[u64]) -> EmbeddingSet {
        let mut meta = EmbeddingMetaData::new();
        meta.add_entry("a", EntryType::Vertex);
        let data = env.from_collection(
            ids.iter()
                .map(|id| {
                    let mut emb = Embedding::new();
                    emb.push_id(*id);
                    emb
                })
                .collect::<Vec<_>>(),
        );
        EmbeddingSet { data, meta }
    }

    fn config(lower: usize, upper: usize, matching: MatchingConfig) -> ExpandConfig {
        ExpandConfig {
            source_variable: "a".into(),
            edge_variable: "e".into(),
            target_variable: "b".into(),
            lower,
            upper,
            matching,
        }
    }

    /// Chain 1 -e10-> 2 -e11-> 3 -e12-> 4.
    fn chain(env: &ExecutionEnvironment) -> Dataset<EdgeTriple> {
        env.from_collection(vec![(1u64, 10u64, 2u64), (2, 11, 3), (3, 12, 4)])
    }

    #[test]
    fn expands_paths_between_bounds() {
        let env = env();
        let input = starts(&env, &[1]);
        let result = expand_embeddings(
            &input,
            &chain(&env),
            &config(1, 3, MatchingConfig::cypher_default()),
        );
        let rows = result.data.collect();
        // Paths from 1 of length 1, 2, 3.
        assert_eq!(rows.len(), 3);
        let path_col = result.meta.column("e").unwrap();
        let target_col = result.meta.column("b").unwrap();
        let mut summary: Vec<(usize, u64)> = rows
            .iter()
            .map(|r| (r.path(path_col).len(), r.id(target_col)))
            .collect();
        summary.sort();
        // via lengths: k=1 -> 1 entry, k=2 -> 3, k=3 -> 5.
        assert_eq!(summary, vec![(1, 2), (3, 3), (5, 4)]);
    }

    #[test]
    fn paper_via_representation() {
        let env = env();
        let input = starts(&env, &[1]);
        let result = expand_embeddings(
            &input,
            &chain(&env),
            &config(2, 2, MatchingConfig::cypher_default()),
        );
        let rows = result.data.collect();
        assert_eq!(rows.len(), 1);
        // via holds [edge, vertex, edge] like Table 2b.
        assert_eq!(
            rows[0].path(result.meta.column("e").unwrap()),
            vec![10, 2, 11]
        );
    }

    #[test]
    fn zero_lower_bound_emits_empty_path() {
        let env = env();
        let input = starts(&env, &[1]);
        let result = expand_embeddings(
            &input,
            &chain(&env),
            &config(0, 1, MatchingConfig::cypher_default()),
        );
        let rows = result.data.collect();
        assert_eq!(rows.len(), 2);
        let path_col = result.meta.column("e").unwrap();
        let target_col = result.meta.column("b").unwrap();
        let zero = rows.iter().find(|r| r.path(path_col).is_empty()).unwrap();
        // Zero-length path: target equals source.
        assert_eq!(zero.id(target_col), 1);
    }

    #[test]
    fn cycle_edge_isomorphism_terminates() {
        let env = env();
        // 1 <-> 2 cycle.
        let candidates = env.from_collection(vec![(1u64, 10u64, 2u64), (2, 11, 1)]);
        let input = starts(&env, &[1]);
        let result = expand_embeddings(
            &input,
            &candidates,
            &config(1, 10, MatchingConfig::cypher_default()),
        );
        // Edge-ISO: 1->2 (len 1), 1->2->1 (len 2). Vertex repeats allowed
        // under HOMO vertices.
        assert_eq!(result.data.count(), 2);
    }

    #[test]
    fn cycle_homomorphism_expands_to_upper_bound() {
        let env = env();
        let candidates = env.from_collection(vec![(1u64, 10u64, 2u64), (2, 11, 1)]);
        let input = starts(&env, &[1]);
        let result = expand_embeddings(
            &input,
            &candidates,
            &config(1, 6, MatchingConfig::homomorphism()),
        );
        // One path per length 1..=6.
        assert_eq!(result.data.count(), 6);
    }

    #[test]
    fn vertex_isomorphism_prunes_revisits() {
        let env = env();
        // Diamond with return: 1->2, 2->3, 3->2 would revisit 2.
        let candidates = env.from_collection(vec![(1u64, 10u64, 2u64), (2, 11, 3), (3, 12, 2)]);
        let input = starts(&env, &[1]);
        let result = expand_embeddings(
            &input,
            &candidates,
            &config(1, 5, MatchingConfig::isomorphism()),
        );
        // 1->2 and 1->2->3 only; 1->2->3->2 revisits vertex 2.
        assert_eq!(result.data.count(), 2);
    }

    #[test]
    fn closing_expansion_filters_on_bound_target() {
        let env = env();
        // Input binds a=1 and b=3; expansion must end at 3.
        let mut meta = EmbeddingMetaData::new();
        meta.add_entry("a", EntryType::Vertex);
        meta.add_entry("b", EntryType::Vertex);
        let mut emb = Embedding::new();
        emb.push_id(1);
        emb.push_id(3);
        let input = EmbeddingSet {
            data: env.from_collection(vec![emb]),
            meta,
        };
        let result = expand_embeddings(
            &input,
            &chain(&env),
            &config(1, 3, MatchingConfig::cypher_default()),
        );
        let rows = result.data.collect();
        assert_eq!(rows.len(), 1);
        // Only the length-2 path 1->2->3 closes on b=3; no new column added.
        assert_eq!(result.meta.columns(), 3);
        assert_eq!(rows[0].path(2), vec![10, 2, 11]);
    }

    #[test]
    fn candidates_are_shuffled_exactly_once_across_iterations() {
        use gradoop_dataflow::CollectingSink;
        use std::sync::Arc;

        let iteration_counters = |aware: bool| -> Vec<(f64, f64)> {
            let env = ExecutionEnvironment::new(
                ExecutionConfig::with_workers(2)
                    .cost_model(CostModel::free())
                    .partition_aware(aware),
            );
            let sink = Arc::new(CollectingSink::new());
            env.set_trace_sink(Some(sink.clone()));
            let input = starts(&env, &[1]);
            let result = expand_embeddings(
                &input,
                &chain(&env),
                &config(1, 3, MatchingConfig::cypher_default()),
            );
            assert_eq!(result.data.count(), 3);
            sink.snapshot()
                .spans
                .iter()
                .filter(|s| s.name == "expand/iteration")
                .map(|s| {
                    (
                        s.counter("iteration").unwrap(),
                        s.counter("candidate_shuffled_bytes").unwrap(),
                    )
                })
                .collect()
        };

        // Loop-invariant caching on: the candidate edges ship in round 1
        // only; later rounds probe the cached index for free.
        let aware = iteration_counters(true);
        assert_eq!(aware.len(), 3);
        assert!(aware[0].1 > 0.0);
        assert_eq!(aware[1], (2.0, 0.0));
        assert_eq!(aware[2], (3.0, 0.0));

        // Ablation: with awareness off every round re-ships the candidates.
        let unaware = iteration_counters(false);
        assert_eq!(unaware.len(), 3);
        for (_, bytes) in &unaware {
            assert_eq!(*bytes, aware[0].1);
        }
    }

    #[test]
    fn no_candidates_yields_empty_unless_zero_allowed() {
        let env = env();
        let input = starts(&env, &[1]);
        let empty: Dataset<EdgeTriple> = env.empty();
        let strict = expand_embeddings(
            &input,
            &empty,
            &config(1, 3, MatchingConfig::cypher_default()),
        );
        assert_eq!(strict.data.count(), 0);
        let zero = expand_embeddings(
            &input,
            &empty,
            &config(0, 3, MatchingConfig::cypher_default()),
        );
        assert_eq!(zero.data.count(), 1);
    }
}
