//! `ExpandIntersect`: worst-case-optimal closure of a cycle.
//!
//! Binds one new query vertex by intersecting, per partial embedding, the
//! sorted adjacency lists of every already-bound endpoint of the closing
//! edges. A binary plan would first materialize the open path — on a
//! triangle that intermediate is `O(|E|·d)` rows — and filter it down with
//! a closing join; the intersection emits only vertices adjacent to *all*
//! bound endpoints, so the open path never exists. The adjacency indexes
//! are replicated (charged like a broadcast-join build) and the probe runs
//! partition-local, so no embedding is ever shuffled.

use std::cell::RefCell;
use std::collections::HashSet;

use gradoop_cypher::predicates::eval::{eval_predicate, SingleElement};
use gradoop_cypher::QueryGraph;
use gradoop_dataflow::{build_adjacency_index, probe_intersect, AdjacencyIndex, SpanRecord};

use crate::embedding::EntryType;
use crate::matching::{MatchingConfig, MorphismCheck};
use crate::operators::{edge_triples, malformed_plan, observe_operator, EmbeddingSet};
use crate::source::GraphSource;

thread_local! {
    /// Per-worker morphism-check scratch: candidate embeddings are checked
    /// before they are pushed, so rejected ones still cost one clone but
    /// never a scratch allocation.
    static WCO_SCRATCH: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Extends `input` by the query vertex `vertex`, closing all `edges` at
/// once via sorted-adjacency intersection.
///
/// Every closing edge must have its non-`vertex` endpoint bound by `input`
/// (the planner guarantees this); an unbound endpoint marks the plan
/// malformed — recorded on the environment, not panicked. Label and
/// element-centric predicates of the new vertex are enforced through an
/// admissibility set, edge predicates inside the adjacency index build, and
/// the configured morphism semantics on each candidate embedding before it
/// is emitted.
pub fn expand_intersect<S: GraphSource + ?Sized>(
    input: &EmbeddingSet,
    query: &QueryGraph,
    source: &S,
    vertex: usize,
    edges: &[usize],
    matching: &MatchingConfig,
) -> EmbeddingSet {
    let target_vertex = &query.vertices[vertex];

    // One replicated adjacency index per closing edge, oriented so the key
    // is the id of the endpoint `input` already binds. Undirected edges
    // carry both orientations in their triples, so keying by the stored
    // source covers either direction.
    let mut bound_columns: Vec<usize> = Vec::with_capacity(edges.len());
    let mut indexes: Vec<AdjacencyIndex> = Vec::with_capacity(edges.len());
    for &e in edges {
        let query_edge = &query.edges[e];
        let bound_vertex = if query_edge.source == vertex {
            query_edge.target
        } else {
            query_edge.source
        };
        let bound_var = &query.vertices[bound_vertex].variable;
        let column = match input.meta.column(bound_var) {
            Some(column) => column,
            None => {
                return malformed_plan(
                    input,
                    "expand_intersect",
                    format!("intersection endpoint `{bound_var}` unbound"),
                )
            }
        };
        bound_columns.push(column);
        let keyed_by_source = query_edge.undirected || query_edge.target == vertex;
        let triples = edge_triples(&source.edges_for_labels(&query_edge.labels), query_edge);
        let oriented = if keyed_by_source {
            triples.map(|t| (t.0, t.2, t.1))
        } else {
            triples.map(|t| (t.2, t.0, t.1))
        };
        indexes.push(build_adjacency_index(&oriented, "wco(build-adjacency)"));
    }

    // Admissible bindings of the new vertex: label plus element-centric
    // predicate, mirroring what a ScanVertices leaf would have produced.
    let candidates = source.vertices_for_labels(&target_vertex.labels);
    let mut admissible: HashSet<u64> = HashSet::new();
    for part in candidates.partitions().iter() {
        for v in part {
            if !target_vertex.labels.is_empty() && !target_vertex.labels.contains(&v.label) {
                continue;
            }
            let bindings = SingleElement {
                variable: &target_vertex.variable,
                label: &v.label,
                properties: &v.properties,
                id: v.id.0,
            };
            if !eval_predicate(&target_vertex.predicates, &bindings) {
                continue;
            }
            admissible.insert(v.id.0);
        }
    }

    let mut meta = input.meta.clone();
    for &e in edges {
        meta.add_entry(&query.edges[e].variable, EntryType::Edge);
    }
    meta.add_entry(&target_vertex.variable, EntryType::Vertex);
    let check = MorphismCheck::new(&meta, matching);

    let rows_in = input.data.len_untracked() as u64;
    let (data, stats) = probe_intersect(
        &input.data,
        &indexes,
        |row, keys| {
            for &column in &bound_columns {
                keys.push(row.id(column));
            }
        },
        |row, w, edge_ids, out| {
            if !admissible.contains(&w) {
                return;
            }
            let mut embedding = row.clone();
            for &edge_id in edge_ids {
                embedding.push_id(edge_id);
            }
            embedding.push_id(w);
            let ok = WCO_SCRATCH.with(|cell| check.check(&embedding, &mut cell.borrow_mut()));
            if ok {
                out.push(embedding);
            }
        },
    );

    let result = EmbeddingSet { data, meta };
    result.data.env().emit_span(SpanRecord {
        name: "expand_intersect/intersect".to_string(),
        wall_seconds: 0.0,
        simulated_seconds: 0.0,
        counters: vec![
            (
                "rows_intersected".to_string(),
                stats.rows_intersected as f64,
            ),
            ("rows_emitted".to_string(), stats.rows_emitted as f64),
        ],
    });
    observe_operator("expand_intersect", rows_in, &result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::filter_and_project_edges;
    use gradoop_cypher::parse;
    use gradoop_dataflow::{CostModel, ExecutionConfig, ExecutionEnvironment};
    use gradoop_epgm::{properties, Edge, GradoopId, GraphHead, LogicalGraph, Properties, Vertex};

    /// A graph with exactly one directed triangle 1→2→3→1 plus a dangling
    /// open path 1→4 (wedge 3→1→4 never closes).
    fn triangle_graph(env: &ExecutionEnvironment) -> LogicalGraph {
        let person =
            |id: u64| Vertex::new(GradoopId(id), "Person", properties! {"vid" => id as i64});
        let knows = |id: u64, s: u64, t: u64| {
            Edge::new(
                GradoopId(id),
                "knows",
                GradoopId(s),
                GradoopId(t),
                Properties::new(),
            )
        };
        LogicalGraph::from_data(
            env,
            GraphHead::new(GradoopId(100), "g", Properties::new()),
            vec![person(1), person(2), person(3), person(4)],
            vec![
                knows(10, 1, 2),
                knows(11, 2, 3),
                knows(12, 3, 1),
                knows(13, 1, 4),
            ],
        )
    }

    /// The directed cycle a→b→c→a: closing at `c` intersects one
    /// source-keyed index (e2: b→c) with one target-keyed index (e3: c→a).
    fn triangle_query() -> QueryGraph {
        QueryGraph::from_query(
            &parse(
                "MATCH (a:Person)-[e1:knows]->(b:Person), \
                 (b)-[e2:knows]->(c:Person), (c)-[e3:knows]->(a) RETURN *",
            )
            .unwrap(),
        )
        .unwrap()
    }

    fn env() -> ExecutionEnvironment {
        ExecutionEnvironment::new(ExecutionConfig::with_workers(2).cost_model(CostModel::free()))
    }

    #[test]
    fn closes_the_triangle_without_open_paths() {
        let env = env();
        let graph = triangle_graph(&env);
        let query = triangle_query();
        // Input: embeddings of (a)-[e1]->(b); close c = e2 ∩ e3.
        let e1 = &query.edges[0];
        let input = filter_and_project_edges(
            &graph.edges_for_labels(&e1.labels),
            e1,
            "a",
            "b",
            &MatchingConfig::cypher_default(),
        );
        let c = query
            .vertices
            .iter()
            .position(|v| v.variable == "c")
            .unwrap();
        let closing: Vec<usize> = (0..query.edges.len())
            .filter(|&i| query.edges[i].source == c || query.edges[i].target == c)
            .collect();
        assert_eq!(closing.len(), 2);
        let result = expand_intersect(
            &input,
            &query,
            &graph,
            c,
            &closing,
            &MatchingConfig::cypher_default(),
        );
        // The one triangle matches in all three rotations; the wedge through
        // vertex 4 never closes.
        let rows = result.data.collect();
        let mut abc: Vec<(u64, u64, u64)> = rows
            .iter()
            .map(|row| {
                (
                    row.id(result.meta.column("a").unwrap()),
                    row.id(result.meta.column("b").unwrap()),
                    row.id(result.meta.column("c").unwrap()),
                )
            })
            .collect();
        abc.sort();
        assert_eq!(abc, vec![(1, 2, 3), (2, 3, 1), (3, 1, 2)]);
        let first = rows
            .iter()
            .find(|row| row.id(result.meta.column("a").unwrap()) == 1)
            .unwrap();
        assert_eq!(first.id(result.meta.column("e2").unwrap()), 11);
        assert_eq!(first.id(result.meta.column("e3").unwrap()), 12);
    }

    #[test]
    fn vertex_predicate_restricts_the_intersection() {
        let env = env();
        let graph = triangle_graph(&env);
        let query = QueryGraph::from_query(
            &parse(
                "MATCH (a:Person)-[e1:knows]->(b:Person), \
                 (b)-[e2:knows]->(c:Person), (c)-[e3:knows]->(a) \
                 WHERE c.vid > 90 RETURN *",
            )
            .unwrap(),
        )
        .unwrap();
        let e1 = &query.edges[0];
        let input = filter_and_project_edges(
            &graph.edges_for_labels(&e1.labels),
            e1,
            "a",
            "b",
            &MatchingConfig::cypher_default(),
        );
        let c = query
            .vertices
            .iter()
            .position(|v| v.variable == "c")
            .unwrap();
        let closing: Vec<usize> = (0..query.edges.len())
            .filter(|&i| query.edges[i].source == c || query.edges[i].target == c)
            .collect();
        let result = expand_intersect(
            &input,
            &query,
            &graph,
            c,
            &closing,
            &MatchingConfig::cypher_default(),
        );
        assert_eq!(result.data.count(), 0);
    }

    #[test]
    fn unbound_endpoint_poisons_environment() {
        let env = env();
        let graph = triangle_graph(&env);
        let query = triangle_query();
        // Input binds only vertex a — endpoint b of the closing edges is
        // unbound, so the plan is malformed.
        let input = crate::operators::filter_and_project_vertices(
            &graph.vertices_for_labels(&query.vertices[0].labels),
            &query.vertices[0],
        );
        let c = query
            .vertices
            .iter()
            .position(|v| v.variable == "c")
            .unwrap();
        let closing: Vec<usize> = (0..query.edges.len())
            .filter(|&i| query.edges[i].source == c || query.edges[i].target == c)
            .collect();
        let result = expand_intersect(
            &input,
            &query,
            &graph,
            c,
            &closing,
            &MatchingConfig::cypher_default(),
        );
        assert_eq!(result.data.count(), 0);
        let failure = env.take_execution_failure().expect("poisoned");
        assert!(failure.site.contains("expand_intersect"));
        assert!(failure.message.contains("unbound"));
    }
}
