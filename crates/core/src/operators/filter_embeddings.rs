//! `SelectEmbeddings`: evaluates predicates that span multiple query
//! elements on embeddings (paper Section 3.1).
//!
//! Two execution paths share one semantics: the row path evaluates the CNF
//! per embedding; under [`ExecutionConfig::vectorized`] the predicate is
//! compiled once ([`CompiledFilter`]) and applied per morsel as a batched
//! kernel that narrows a selection vector — same surviving rows, byte for
//! byte, but with per-row operand resolution and property decoding hoisted
//! out of the loop.
//!
//! [`ExecutionConfig::vectorized`]: gradoop_dataflow::ExecutionConfig::vectorized

use gradoop_cypher::predicates::eval::eval_clause;
use gradoop_cypher::CnfClause;

use crate::embedding::{EmbeddingBatch, EmbeddingBindings};
use crate::operators::{observe_operator, CompiledFilter, EmbeddingSet};

/// Keeps the embeddings satisfying all `clauses`.
pub fn filter_embeddings(input: &EmbeddingSet, clauses: &[CnfClause]) -> EmbeddingSet {
    if clauses.is_empty() {
        return input.clone();
    }
    let meta = input.meta.clone();
    let data = if input.data.env().vectorized() {
        let compiled = CompiledFilter::compile(clauses, &input.meta);
        input
            .data
            .transform_batched("filter_embeddings", true, move |rows, out| {
                let mut batch = EmbeddingBatch::new(rows, &meta);
                compiled.apply(&mut batch);
                batch.emit_selected(out);
                batch.stats()
            })
    } else {
        let clauses = clauses.to_vec();
        input.data.filter(move |embedding| {
            let bindings = EmbeddingBindings {
                embedding,
                meta: &meta,
            };
            clauses.iter().all(|clause| eval_clause(clause, &bindings))
        })
    };
    let result = EmbeddingSet {
        data,
        meta: input.meta.clone(),
    };
    observe_operator(
        "filter_embeddings",
        input.data.len_untracked() as u64,
        &result,
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::{Embedding, EmbeddingMetaData, EntryType};
    use gradoop_cypher::predicates::cnf::to_cnf;
    use gradoop_cypher::{parse, Expression};
    use gradoop_dataflow::{CostModel, ExecutionConfig, ExecutionEnvironment};
    use gradoop_epgm::PropertyValue;

    fn where_clauses(text: &str) -> Vec<CnfClause> {
        let query = parse(text).unwrap();
        let expr: Expression = query.where_clause.unwrap();
        to_cnf(&expr).clauses
    }

    fn person_pair(env: &ExecutionEnvironment, genders: &[(&str, &str)]) -> EmbeddingSet {
        let mut meta = EmbeddingMetaData::new();
        meta.add_entry("p1", EntryType::Vertex);
        meta.add_entry("p2", EntryType::Vertex);
        meta.add_property("p1", "gender");
        meta.add_property("p2", "gender");
        let data = env.from_collection(
            genders
                .iter()
                .enumerate()
                .map(|(i, (g1, g2))| {
                    let mut emb = Embedding::new();
                    emb.push_id(i as u64 * 2);
                    emb.push_id(i as u64 * 2 + 1);
                    emb.push_property(&PropertyValue::String((*g1).into()));
                    emb.push_property(&PropertyValue::String((*g2).into()));
                    emb
                })
                .collect::<Vec<_>>(),
        );
        EmbeddingSet { data, meta }
    }

    #[test]
    fn filters_cross_variable_comparison() {
        let env = ExecutionEnvironment::new(
            ExecutionConfig::with_workers(2).cost_model(CostModel::free()),
        );
        let input = person_pair(
            &env,
            &[("female", "male"), ("male", "male"), ("female", "female")],
        );
        let clauses = where_clauses("MATCH (p1)-->(p2) WHERE p1.gender <> p2.gender RETURN *");
        let filtered = filter_embeddings(&input, &clauses);
        assert_eq!(filtered.data.count(), 1);
    }

    #[test]
    fn empty_clause_list_is_identity() {
        let env = ExecutionEnvironment::new(
            ExecutionConfig::with_workers(2).cost_model(CostModel::free()),
        );
        let input = person_pair(&env, &[("a", "b")]);
        let filtered = filter_embeddings(&input, &[]);
        assert_eq!(filtered.data.count(), 1);
    }

    #[test]
    fn variable_identity_comparison_on_embeddings() {
        let env = ExecutionEnvironment::new(
            ExecutionConfig::with_workers(2).cost_model(CostModel::free()),
        );
        let input = person_pair(&env, &[("a", "a")]);
        // p1 and p2 bind ids 0 and 1 — p1 = p2 is false, p1 <> p2 true.
        let neq = where_clauses("MATCH (p1)-->(p2) WHERE p1 <> p2 RETURN *");
        assert_eq!(filter_embeddings(&input, &neq).data.count(), 1);
        let eq = where_clauses("MATCH (p1)-->(p2) WHERE p1 = p2 RETURN *");
        assert_eq!(filter_embeddings(&input, &eq).data.count(), 0);
    }

    #[test]
    fn vectorized_path_is_byte_identical_to_row_path() {
        let genders: Vec<(&str, &str)> = (0..600)
            .map(|i| {
                let g1 = if i % 3 == 0 { "female" } else { "male" };
                let g2 = if i % 2 == 0 { "female" } else { "male" };
                (g1, g2)
            })
            .collect();
        let queries = [
            "MATCH (p1)-->(p2) WHERE p1.gender <> p2.gender RETURN *",
            "MATCH (p1)-->(p2) WHERE p1.gender = 'female' RETURN *",
            "MATCH (p1)-->(p2) WHERE p1.gender = 'female' OR p2.gender = 'male' RETURN *",
            "MATCH (p1)-->(p2) WHERE p1 <> p2 RETURN *",
            "MATCH (p1)-->(p2) WHERE p1.gender = 'none' RETURN *",
        ];
        for query in queries {
            let clauses = where_clauses(query);
            // Small morsels so batches straddle morsel boundaries.
            let row_env = ExecutionEnvironment::new(
                ExecutionConfig::with_workers(3)
                    .morsel_size(64)
                    .cost_model(CostModel::free()),
            );
            let vec_env = ExecutionEnvironment::new(
                ExecutionConfig::with_workers(3)
                    .morsel_size(64)
                    .vectorized(true)
                    .cost_model(CostModel::free()),
            );
            let row_out = filter_embeddings(&person_pair(&row_env, &genders), &clauses);
            let vec_out = filter_embeddings(&person_pair(&vec_env, &genders), &clauses);
            assert_eq!(
                row_out.data.collect(),
                vec_out.data.collect(),
                "query: {query}"
            );
        }
    }

    #[test]
    fn vectorized_filter_reports_batch_statistics() {
        let env = ExecutionEnvironment::new(
            ExecutionConfig::with_workers(2)
                .morsel_size(8)
                .vectorized(true)
                .cost_model(CostModel::free()),
        );
        let genders: Vec<(&str, &str)> = (0..40)
            .map(|i| (if i % 2 == 0 { "female" } else { "male" }, "male"))
            .collect();
        let input = person_pair(&env, &genders);
        let clauses = where_clauses("MATCH (p1)-->(p2) WHERE p1.gender = 'female' RETURN *");
        let filtered = filter_embeddings(&input, &clauses);
        assert_eq!(filtered.data.count(), 20);
        let metrics = env.metrics();
        assert!(metrics.batches >= 5, "morsel-sized batches: {metrics:?}");
        assert_eq!(metrics.batch_rows, 40);
        assert_eq!(metrics.batch_rows_selected, 20);
    }
}
