//! `SelectAndProjectEdges`: the edge leaf operator.
//!
//! Emits one embedding per matching edge with columns
//! `[source, edge, target]` (or `[vertex, edge]` for loops, where the query
//! edge starts and ends at the same query vertex). Undirected query edges
//! emit both orientations, letting all downstream joins stay purely
//! directional.

use gradoop_cypher::predicates::eval::{eval_predicate, SingleElement};
use gradoop_cypher::QueryEdge;
use gradoop_dataflow::Dataset;
use gradoop_epgm::{Edge, PropertyValue};

use crate::embedding::{Embedding, EmbeddingMetaData, EntryType};
use crate::operators::{observe_operator, EmbeddingSet};

fn edge_matches(edge: &Edge, query_edge: &QueryEdge) -> bool {
    if !query_edge.labels.is_empty() && !query_edge.labels.contains(&edge.label) {
        return false;
    }
    let bindings = SingleElement {
        variable: &query_edge.variable,
        label: &edge.label,
        properties: &edge.properties,
        id: edge.id.0,
    };
    eval_predicate(&query_edge.predicates, &bindings)
}

fn push_properties(embedding: &mut Embedding, edge: &Edge, keys: &[String]) {
    for key in keys {
        let value = edge
            .properties
            .get(key)
            .cloned()
            .unwrap_or(PropertyValue::Null);
        embedding.push_property(&value);
    }
}

/// Builds the embedding dataset for one plain (1-hop) query edge from its
/// candidate edges. `source_var` / `target_var` are the variables of the
/// query edge's endpoints.
///
/// The morphism semantics are enforced here for the one violation a single
/// edge can already exhibit: under vertex isomorphism, a data loop cannot
/// bind two *distinct* query vertices.
pub fn filter_and_project_edges(
    candidates: &Dataset<Edge>,
    query_edge: &QueryEdge,
    source_var: &str,
    target_var: &str,
    matching: &crate::matching::MatchingConfig,
) -> EmbeddingSet {
    let is_loop = source_var == target_var;
    let reject_data_loops =
        !is_loop && matching.vertices == crate::matching::MorphismType::Isomorphism;
    let mut meta = EmbeddingMetaData::new();
    meta.add_entry(source_var, EntryType::Vertex);
    meta.add_entry(&query_edge.variable, EntryType::Edge);
    if !is_loop {
        meta.add_entry(target_var, EntryType::Vertex);
    }
    for key in &query_edge.required_keys {
        meta.add_property(&query_edge.variable, key);
    }

    let qe = query_edge.clone();
    let undirected = query_edge.undirected;
    let data = candidates.flat_map(move |edge, out| {
        if !edge_matches(edge, &qe) {
            return;
        }
        if is_loop {
            // The query edge starts and ends at the same query vertex: only
            // data loops can match.
            if edge.source == edge.target {
                let mut embedding = Embedding::new();
                embedding.push_id(edge.source.0);
                embedding.push_id(edge.id.0);
                push_properties(&mut embedding, edge, &qe.required_keys);
                out.push(embedding);
            }
            return;
        }
        if reject_data_loops && edge.source == edge.target {
            return;
        }
        let mut forward = Embedding::new();
        forward.push_id(edge.source.0);
        forward.push_id(edge.id.0);
        forward.push_id(edge.target.0);
        push_properties(&mut forward, edge, &qe.required_keys);
        out.push(forward);
        if undirected && edge.source != edge.target {
            let mut backward = Embedding::new();
            backward.push_id(edge.target.0);
            backward.push_id(edge.id.0);
            backward.push_id(edge.source.0);
            push_properties(&mut backward, edge, &qe.required_keys);
            out.push(backward);
        }
    });

    let result = EmbeddingSet { data, meta };
    observe_operator(
        "filter_and_project_edges",
        candidates.len_untracked() as u64,
        &result,
    );
    result
}

/// Projects candidate edges to bare `(source, edge, target)` identifier
/// triples for the bulk-iteration expansion — label and element predicates
/// applied, undirected edges emitted in both orientations.
pub fn edge_triples(
    candidates: &Dataset<Edge>,
    query_edge: &QueryEdge,
) -> Dataset<crate::operators::EdgeTriple> {
    let qe = query_edge.clone();
    let undirected = query_edge.undirected;
    candidates.flat_map(move |edge, out| {
        if !edge_matches(edge, &qe) {
            return;
        }
        out.push((edge.source.0, edge.id.0, edge.target.0));
        if undirected && edge.source != edge.target {
            out.push((edge.target.0, edge.id.0, edge.source.0));
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::MatchingConfig;
    use gradoop_cypher::{parse, QueryGraph};
    use gradoop_dataflow::{CostModel, ExecutionConfig, ExecutionEnvironment};
    use gradoop_epgm::{properties, GradoopId, Properties};

    fn env() -> ExecutionEnvironment {
        ExecutionEnvironment::new(ExecutionConfig::with_workers(2).cost_model(CostModel::free()))
    }

    fn edges(env: &ExecutionEnvironment) -> Dataset<Edge> {
        env.from_collection(vec![
            Edge::new(
                GradoopId(10),
                "knows",
                GradoopId(1),
                GradoopId(2),
                properties! {"since" => 2014i64},
            ),
            Edge::new(
                GradoopId(11),
                "knows",
                GradoopId(2),
                GradoopId(2), // data loop
                Properties::new(),
            ),
            Edge::new(
                GradoopId(12),
                "studyAt",
                GradoopId(1),
                GradoopId(3),
                properties! {"classYear" => 2016i64},
            ),
        ])
    }

    fn query_edge(text: &str) -> (QueryEdge, String, String) {
        let graph = QueryGraph::from_query(&parse(text).unwrap()).unwrap();
        let edge = graph.edges[0].clone();
        let source = graph.vertices[edge.source].variable.clone();
        let target = graph.vertices[edge.target].variable.clone();
        (edge, source, target)
    }

    #[test]
    fn directed_edge_emits_one_embedding_per_match() {
        let env = env();
        let (qe, s, t) = query_edge("MATCH (a)-[e:knows]->(b) RETURN *");
        let result =
            filter_and_project_edges(&edges(&env), &qe, &s, &t, &MatchingConfig::homomorphism());
        assert_eq!(result.data.count(), 2);
        assert_eq!(result.meta.column("a"), Some(0));
        assert_eq!(result.meta.column("e"), Some(1));
        assert_eq!(result.meta.column("b"), Some(2));
    }

    #[test]
    fn undirected_edge_emits_both_orientations() {
        let env = env();
        let (qe, s, t) = query_edge("MATCH (a)-[e:knows]-(b) RETURN *");
        let result =
            filter_and_project_edges(&edges(&env), &qe, &s, &t, &MatchingConfig::homomorphism());
        // Edge 10 twice (both directions), loop edge 11 once.
        assert_eq!(result.data.count(), 3);
    }

    #[test]
    fn predicate_and_projection() {
        let env = env();
        let (qe, s, t) =
            query_edge("MATCH (a)-[e:studyAt]->(b) WHERE e.classYear > 2014 RETURN e.classYear");
        let result =
            filter_and_project_edges(&edges(&env), &qe, &s, &t, &MatchingConfig::homomorphism());
        let rows = result.data.collect();
        assert_eq!(rows.len(), 1);
        let index = result.meta.property_index("e", "classYear").unwrap();
        assert_eq!(rows[0].property(index), PropertyValue::Long(2016));
    }

    #[test]
    fn loop_query_edge_matches_only_data_loops() {
        let env = env();
        let (qe, s, t) = query_edge("MATCH (a)-[e:knows]->(a) RETURN *");
        assert_eq!(s, t);
        let result =
            filter_and_project_edges(&edges(&env), &qe, &s, &t, &MatchingConfig::homomorphism());
        let rows = result.data.collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].id(0), 2);
        assert_eq!(rows[0].id(1), 11);
        assert_eq!(result.meta.columns(), 2);
    }

    #[test]
    fn triples_respect_direction_flag() {
        let env = env();
        let (qe, _, _) = query_edge("MATCH (a)-[e:knows]->(b) RETURN *");
        let mut directed = edge_triples(&edges(&env), &qe).collect();
        directed.sort();
        assert_eq!(directed, vec![(1, 10, 2), (2, 11, 2)]);

        let (qe, _, _) = query_edge("MATCH (a)-[e:knows]-(b) RETURN *");
        assert_eq!(edge_triples(&edges(&env), &qe).count(), 3);
    }
}
