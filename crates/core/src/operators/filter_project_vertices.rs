//! `SelectAndProjectVertices`: the vertex leaf operator.
//!
//! Fuses the Select → Project → Transform steps into a single `flat_map`
//! (the paper uses Flink's `FlatMap` for the same reason: one pass, no
//! intermediate (de)serialization). Select evaluates the element-centric
//! predicate, Project keeps only the property keys later operators need,
//! Transform emits the one-column embedding.

use gradoop_cypher::predicates::eval::{eval_predicate, SingleElement};
use gradoop_cypher::QueryVertex;
use gradoop_dataflow::Dataset;
use gradoop_epgm::{PropertyValue, Vertex};

use crate::embedding::{Embedding, EntryType};
use crate::operators::{observe_operator, EmbeddingSet};

/// Builds the embedding dataset for one query vertex from its candidate
/// vertices (already label-restricted by the graph source).
pub fn filter_and_project_vertices(
    candidates: &Dataset<Vertex>,
    query_vertex: &QueryVertex,
) -> EmbeddingSet {
    let mut meta = crate::embedding::EmbeddingMetaData::new();
    meta.add_entry(&query_vertex.variable, EntryType::Vertex);
    for key in &query_vertex.required_keys {
        meta.add_property(&query_vertex.variable, key);
    }

    let variable = query_vertex.variable.clone();
    let labels = query_vertex.labels.clone();
    let predicates = query_vertex.predicates.clone();
    let keys = query_vertex.required_keys.clone();

    let data = candidates.flat_map(move |vertex, out| {
        // Select: label predicate (defensive re-check — sources may serve a
        // superset when unindexed) plus the element-centric predicate.
        if !labels.is_empty() && !labels.contains(&vertex.label) {
            return;
        }
        let bindings = SingleElement {
            variable: &variable,
            label: &vertex.label,
            properties: &vertex.properties,
            id: vertex.id.0,
        };
        if !eval_predicate(&predicates, &bindings) {
            return;
        }
        // Project + Transform: one-column embedding with required values.
        let mut embedding = Embedding::new();
        embedding.push_id(vertex.id.0);
        for key in &keys {
            let value = vertex
                .properties
                .get(key)
                .cloned()
                .unwrap_or(PropertyValue::Null);
            embedding.push_property(&value);
        }
        out.push(embedding);
    });

    let result = EmbeddingSet { data, meta };
    observe_operator(
        "filter_and_project_vertices",
        candidates.len_untracked() as u64,
        &result,
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradoop_cypher::{parse, QueryGraph};
    use gradoop_dataflow::{CostModel, ExecutionConfig, ExecutionEnvironment};
    use gradoop_epgm::{properties, GradoopId};

    fn env() -> ExecutionEnvironment {
        ExecutionEnvironment::new(ExecutionConfig::with_workers(2).cost_model(CostModel::free()))
    }

    fn vertices(env: &ExecutionEnvironment) -> Dataset<Vertex> {
        env.from_collection(vec![
            Vertex::new(
                GradoopId(1),
                "Person",
                properties! {"name" => "Alice", "yob" => 1984i64},
            ),
            Vertex::new(GradoopId(2), "Person", properties! {"name" => "Bob"}),
            Vertex::new(GradoopId(3), "City", properties! {"name" => "Leipzig"}),
        ])
    }

    fn query_vertex(text: &str) -> QueryVertex {
        let graph = QueryGraph::from_query(&parse(text).unwrap()).unwrap();
        graph.vertices[0].clone()
    }

    #[test]
    fn filters_by_label_and_predicate() {
        let env = env();
        let qv = query_vertex("MATCH (p:Person) WHERE p.name = 'Alice' RETURN p.name");
        let result = filter_and_project_vertices(&vertices(&env), &qv);
        let rows = result.data.collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].id(0), 1);
    }

    #[test]
    fn projects_required_keys_in_meta_order() {
        let env = env();
        let qv = query_vertex("MATCH (p:Person) WHERE p.yob > 1980 RETURN p.name");
        let result = filter_and_project_vertices(&vertices(&env), &qv);
        // required keys: yob (predicate), name (return)
        let yob = result.meta.property_index("p", "yob").unwrap();
        let name = result.meta.property_index("p", "name").unwrap();
        let rows = result.data.collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].property(yob), PropertyValue::Long(1984));
        assert_eq!(
            rows[0].property(name),
            PropertyValue::String("Alice".into())
        );
    }

    #[test]
    fn missing_properties_are_null() {
        let env = env();
        let qv = query_vertex("MATCH (p:Person) RETURN p.yob");
        let result = filter_and_project_vertices(&vertices(&env), &qv);
        let rows = result.data.collect();
        assert_eq!(rows.len(), 2);
        let index = result.meta.property_index("p", "yob").unwrap();
        assert!(rows.iter().any(|r| r.property(index).is_null()));
    }

    #[test]
    fn unlabeled_query_vertex_accepts_everything() {
        let env = env();
        let qv = query_vertex("MATCH (x) RETURN count(*)");
        let result = filter_and_project_vertices(&vertices(&env), &qv);
        assert_eq!(result.data.count(), 3);
        assert_eq!(result.meta.property_count(), 0);
    }

    #[test]
    fn unsatisfiable_predicate_yields_empty() {
        let env = env();
        let qv = query_vertex("MATCH (p:Person) WHERE p.name = 'Zz' RETURN *");
        let result = filter_and_project_vertices(&vertices(&env), &qv);
        assert_eq!(result.data.count(), 0);
    }
}
