//! `JoinEmbeddings`: connects two subqueries by joining their embedding
//! datasets on shared variables.
//!
//! Uses the FlatJoin pattern of the paper: the joined embedding is only
//! emitted if the configured morphism semantics hold, so rejected
//! combinations are never materialized or shuffled further.

use gradoop_dataflow::JoinStrategy;

use crate::matching::{satisfies_morphism, MatchingConfig};
use crate::operators::{observe_operator, EmbeddingSet};

/// Joins `left` and `right` on the columns bound to `join_variables`.
///
/// Panics if a join variable is unbound on either side or bound to a path
/// column (paths carry no single identifier to join on) — the planner never
/// produces such plans.
pub fn join_embeddings(
    left: &EmbeddingSet,
    right: &EmbeddingSet,
    join_variables: &[String],
    config: &MatchingConfig,
    strategy: JoinStrategy,
) -> EmbeddingSet {
    assert!(
        !join_variables.is_empty(),
        "join requires at least one shared variable"
    );
    let left_columns: Vec<usize> = join_variables
        .iter()
        .map(|v| {
            left.meta
                .column(v)
                .unwrap_or_else(|| panic!("join variable `{v}` unbound on left side"))
        })
        .collect();
    let right_columns: Vec<usize> = join_variables
        .iter()
        .map(|v| {
            right
                .meta
                .column(v)
                .unwrap_or_else(|| panic!("join variable `{v}` unbound on right side"))
        })
        .collect();

    let meta = left.meta.merge(&right.meta, &right_columns);
    let config = *config;
    let merged_meta = meta.clone();
    let skip = right_columns.clone();

    let data = left.data.join(
        &right.data,
        {
            let columns = left_columns.clone();
            move |embedding| {
                columns
                    .iter()
                    .map(|&c| embedding.id(c))
                    .collect::<Vec<u64>>()
            }
        },
        {
            let columns = right_columns.clone();
            move |embedding| {
                columns
                    .iter()
                    .map(|&c| embedding.id(c))
                    .collect::<Vec<u64>>()
            }
        },
        strategy,
        move |l, r| {
            let merged = l.merge(r, &skip);
            satisfies_morphism(&merged, &merged_meta, &config).then_some(merged)
        },
    );

    let rows_in = (left.data.len_untracked() + right.data.len_untracked()) as u64;
    let result = EmbeddingSet { data, meta };
    observe_operator("join_embeddings", rows_in, &result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::{Embedding, EmbeddingMetaData, EntryType};
    use gradoop_dataflow::{CostModel, Dataset, ExecutionConfig, ExecutionEnvironment};

    fn env() -> ExecutionEnvironment {
        ExecutionEnvironment::new(ExecutionConfig::with_workers(2).cost_model(CostModel::free()))
    }

    /// Embeddings for (a)-[e]->(b): rows of (a, e, b) ids.
    fn edge_set(
        env: &ExecutionEnvironment,
        rows: &[(u64, u64, u64)],
        vars: [&str; 3],
    ) -> EmbeddingSet {
        let mut meta = EmbeddingMetaData::new();
        meta.add_entry(vars[0], EntryType::Vertex);
        meta.add_entry(vars[1], EntryType::Edge);
        meta.add_entry(vars[2], EntryType::Vertex);
        let data: Dataset<Embedding> = env.from_collection(
            rows.iter()
                .map(|(a, e, b)| {
                    let mut emb = Embedding::new();
                    emb.push_id(*a);
                    emb.push_id(*e);
                    emb.push_id(*b);
                    emb
                })
                .collect::<Vec<_>>(),
        );
        EmbeddingSet { data, meta }
    }

    #[test]
    fn joins_on_shared_vertex() {
        let env = env();
        // (a)-[e1]->(b) joined with (b)-[e2]->(c) on b.
        let left = edge_set(&env, &[(1, 10, 2), (3, 11, 4)], ["a", "e1", "b"]);
        let right = edge_set(&env, &[(2, 20, 5), (4, 21, 6)], ["b", "e2", "c"]);
        let joined = join_embeddings(
            &left,
            &right,
            &["b".to_string()],
            &MatchingConfig::homomorphism(),
            JoinStrategy::RepartitionHash,
        );
        assert_eq!(joined.meta.columns(), 5);
        let rows = joined.data.collect();
        assert_eq!(rows.len(), 2);
        for row in rows {
            let b = row.id(joined.meta.column("b").unwrap());
            let c = row.id(joined.meta.column("c").unwrap());
            assert!((b == 2 && c == 5) || (b == 4 && c == 6));
        }
    }

    #[test]
    fn vertex_isomorphism_prunes_repeats() {
        let env = env();
        // Path of length 2 where data vertex 1 would repeat: 1->2->1.
        let left = edge_set(&env, &[(1, 10, 2)], ["a", "e1", "b"]);
        let right = edge_set(&env, &[(2, 20, 1), (2, 21, 3)], ["b", "e2", "c"]);
        let homo = join_embeddings(
            &left,
            &right,
            &["b".to_string()],
            &MatchingConfig::homomorphism(),
            JoinStrategy::RepartitionHash,
        );
        assert_eq!(homo.data.count(), 2);
        let iso = join_embeddings(
            &left,
            &right,
            &["b".to_string()],
            &MatchingConfig::isomorphism(),
            JoinStrategy::RepartitionHash,
        );
        assert_eq!(iso.data.count(), 1);
    }

    #[test]
    fn edge_isomorphism_prunes_repeated_edges() {
        let env = env();
        // Undirected-style data: the same data edge 10 in both directions.
        let left = edge_set(&env, &[(1, 10, 2)], ["a", "e1", "b"]);
        let right = edge_set(&env, &[(2, 10, 1)], ["b", "e2", "c"]);
        let cypher = join_embeddings(
            &left,
            &right,
            &["b".to_string()],
            &MatchingConfig::cypher_default(),
            JoinStrategy::RepartitionHash,
        );
        assert_eq!(cypher.data.count(), 0); // edge 10 bound twice
        let homo = join_embeddings(
            &left,
            &right,
            &["b".to_string()],
            &MatchingConfig::homomorphism(),
            JoinStrategy::RepartitionHash,
        );
        assert_eq!(homo.data.count(), 1);
    }

    #[test]
    fn multi_column_join_closes_triangles() {
        let env = env();
        // (a)-[e1]->(b)-[e2]->(c) as left; (a)-[e3]->(c) as right:
        // join on both a and c.
        let mut left_meta = EmbeddingMetaData::new();
        left_meta.add_entry("a", EntryType::Vertex);
        left_meta.add_entry("b", EntryType::Vertex);
        left_meta.add_entry("c", EntryType::Vertex);
        let mut emb = Embedding::new();
        emb.push_id(1);
        emb.push_id(2);
        emb.push_id(3);
        let left = EmbeddingSet {
            data: env.from_collection(vec![emb]),
            meta: left_meta,
        };
        let right = edge_set(&env, &[(1, 30, 3), (1, 31, 4)], ["a", "e3", "c"]);
        let joined = join_embeddings(
            &left,
            &right,
            &["a".to_string(), "c".to_string()],
            &MatchingConfig::homomorphism(),
            JoinStrategy::RepartitionHash,
        );
        let rows = joined.data.collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].id(joined.meta.column("e3").unwrap()), 30);
    }

    #[test]
    #[should_panic(expected = "unbound")]
    fn unknown_join_variable_panics() {
        let env = env();
        let left = edge_set(&env, &[(1, 10, 2)], ["a", "e1", "b"]);
        let right = edge_set(&env, &[(2, 20, 3)], ["b", "e2", "c"]);
        let _ = join_embeddings(
            &left,
            &right,
            &["nope".to_string()],
            &MatchingConfig::homomorphism(),
            JoinStrategy::RepartitionHash,
        );
    }
}
