//! `JoinEmbeddings`: connects two subqueries by joining their embedding
//! datasets on shared variables.
//!
//! Uses the FlatJoin pattern of the paper: the joined embedding is only
//! emitted if the configured morphism semantics hold, so rejected
//! combinations are never materialized or shuffled further.
//!
//! The join key is *named*: the set of join variables is canonicalized
//! (sorted) into a [`PartitionKey`], and key extraction follows that
//! canonical order on both sides. An embedding set that is already
//! partitioned on the same variables — typically the output of a previous
//! join in a chain — is forwarded instead of shuffled (Flink FORWARD), and
//! the join's output is stamped so the *next* join on those variables can
//! elide its shuffle too.

use std::cell::RefCell;

use gradoop_cypher::predicates::eval::eval_clause;
use gradoop_cypher::CnfClause;
use gradoop_dataflow::{JoinStrategy, PartitionKey};

use crate::embedding::{Embedding, EmbeddingBindings};
use crate::matching::{MatchingConfig, MorphismCheck};
use crate::operators::{malformed_plan, observe_operator, EmbeddingSet};

/// A join key extracted from one or two id columns hashes inline; only
/// wider keys (rare in practice — most joins share one or two variables)
/// fall back to an allocated vector.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum JoinKey {
    One(u64),
    Two(u64, u64),
    Many(Vec<u64>),
}

fn extract_key(embedding: &Embedding, columns: &[usize]) -> JoinKey {
    match columns {
        [a] => JoinKey::One(embedding.id(*a)),
        [a, b] => JoinKey::Two(embedding.id(*a), embedding.id(*b)),
        _ => JoinKey::Many(columns.iter().map(|&c| embedding.id(c)).collect()),
    }
}

thread_local! {
    /// Per-worker scratch for the join kernel: the merged embedding is
    /// staged here, checked, and only cloned out (one exact-size
    /// allocation) if it survives; rejected pairs allocate nothing.
    static JOIN_SCRATCH: RefCell<(Embedding, Vec<u64>)> =
        RefCell::new((Embedding::new(), Vec::new()));
}

/// The canonical [`PartitionKey`] for embeddings hash-placed by the ids of
/// `variables` (order-insensitive: the variables are sorted first, and key
/// extraction everywhere follows the sorted order). Shared by the join
/// operator, the executor and the planner so that plan-time shuffle
/// predictions and run-time placement facts agree.
pub fn embedding_join_key(variables: &[String]) -> PartitionKey {
    let mut sorted: Vec<&str> = variables.iter().map(String::as_str).collect();
    sorted.sort_unstable();
    PartitionKey::named(&format!("embedding:{}", sorted.join(",")))
}

/// Joins `left` and `right` on the columns bound to `join_variables`.
///
/// A join variable that is unbound on either side makes the plan malformed
/// — the planner never produces such plans. Rather than panicking, the
/// operator records a classified execution failure on the environment and
/// returns an empty embedding set; the engine surfaces the failure as
/// `CypherError::Execution` after the run.
pub fn join_embeddings(
    left: &EmbeddingSet,
    right: &EmbeddingSet,
    join_variables: &[String],
    config: &MatchingConfig,
    strategy: JoinStrategy,
) -> EmbeddingSet {
    join_embeddings_filtered(left, right, join_variables, config, strategy, &[])
}

/// [`join_embeddings`] with `residual_clauses` fused into the join kernel:
/// each clause is evaluated on the merged embedding *while it still lives
/// in the per-worker scratch buffer*, so embeddings a post-join filter
/// would drop are never allocated, materialized or shuffled. The executor
/// uses this to collapse Filter-over-Join plan steps.
pub fn join_embeddings_filtered(
    left: &EmbeddingSet,
    right: &EmbeddingSet,
    join_variables: &[String],
    config: &MatchingConfig,
    strategy: JoinStrategy,
    residual_clauses: &[CnfClause],
) -> EmbeddingSet {
    if join_variables.is_empty() {
        return malformed_plan(
            left,
            "join_embeddings",
            "join requires at least one shared variable".to_string(),
        );
    }
    let mut right_columns: Vec<usize> = Vec::with_capacity(join_variables.len());
    for v in join_variables {
        match right.meta.column(v) {
            Some(column) => right_columns.push(column),
            None => {
                return malformed_plan(
                    right,
                    "join_embeddings",
                    format!("join variable `{v}` unbound on right side"),
                )
            }
        }
    }

    // Key extraction follows the *sorted* variable order on both sides, so
    // the same variable set always hashes identically — the precondition
    // for the named [`PartitionKey`] below to elide repeated shuffles.
    let mut canonical: Vec<String> = join_variables.to_vec();
    canonical.sort_unstable();
    let mut left_key_columns: Vec<usize> = Vec::with_capacity(canonical.len());
    for v in &canonical {
        match left.meta.column(v) {
            Some(column) => left_key_columns.push(column),
            None => {
                return malformed_plan(
                    left,
                    "join_embeddings",
                    format!("join variable `{v}` unbound on left side"),
                )
            }
        }
    }
    let right_key_columns: Vec<usize> = canonical
        .iter()
        .map(|v| right.meta.column(v).expect("checked above"))
        .collect();
    let key_id = embedding_join_key(join_variables);

    let meta = left.meta.merge(&right.meta, &right_columns);
    let check = MorphismCheck::new(&meta, config);
    let merged_meta = meta.clone();
    let skip = right_columns.clone();
    let clauses = residual_clauses.to_vec();

    let data = left.data.join_partitioned(
        &right.data,
        key_id,
        {
            let columns = left_key_columns;
            move |embedding| extract_key(embedding, &columns)
        },
        {
            let columns = right_key_columns;
            move |embedding| extract_key(embedding, &columns)
        },
        strategy,
        move |l, r| {
            JOIN_SCRATCH.with(|cell| {
                let (scratch, ids) = &mut *cell.borrow_mut();
                l.merge_into(r, &skip, scratch);
                if !check.check(scratch, ids) {
                    return None;
                }
                if !clauses.is_empty() {
                    let bindings = EmbeddingBindings {
                        embedding: scratch,
                        meta: &merged_meta,
                    };
                    if !clauses.iter().all(|clause| eval_clause(clause, &bindings)) {
                        return None;
                    }
                }
                Some(scratch.clone())
            })
        },
    );

    let rows_in = (left.data.len_untracked() + right.data.len_untracked()) as u64;
    let result = EmbeddingSet { data, meta };
    observe_operator("join_embeddings", rows_in, &result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::{Embedding, EmbeddingMetaData, EntryType};
    use gradoop_dataflow::{CostModel, Dataset, ExecutionConfig, ExecutionEnvironment};

    fn env() -> ExecutionEnvironment {
        ExecutionEnvironment::new(ExecutionConfig::with_workers(2).cost_model(CostModel::free()))
    }

    /// Embeddings for (a)-[e]->(b): rows of (a, e, b) ids.
    fn edge_set(
        env: &ExecutionEnvironment,
        rows: &[(u64, u64, u64)],
        vars: [&str; 3],
    ) -> EmbeddingSet {
        let mut meta = EmbeddingMetaData::new();
        meta.add_entry(vars[0], EntryType::Vertex);
        meta.add_entry(vars[1], EntryType::Edge);
        meta.add_entry(vars[2], EntryType::Vertex);
        let data: Dataset<Embedding> = env.from_collection(
            rows.iter()
                .map(|(a, e, b)| {
                    let mut emb = Embedding::new();
                    emb.push_id(*a);
                    emb.push_id(*e);
                    emb.push_id(*b);
                    emb
                })
                .collect::<Vec<_>>(),
        );
        EmbeddingSet { data, meta }
    }

    #[test]
    fn joins_on_shared_vertex() {
        let env = env();
        // (a)-[e1]->(b) joined with (b)-[e2]->(c) on b.
        let left = edge_set(&env, &[(1, 10, 2), (3, 11, 4)], ["a", "e1", "b"]);
        let right = edge_set(&env, &[(2, 20, 5), (4, 21, 6)], ["b", "e2", "c"]);
        let joined = join_embeddings(
            &left,
            &right,
            &["b".to_string()],
            &MatchingConfig::homomorphism(),
            JoinStrategy::RepartitionHash,
        );
        assert_eq!(joined.meta.columns(), 5);
        let rows = joined.data.collect();
        assert_eq!(rows.len(), 2);
        for row in rows {
            let b = row.id(joined.meta.column("b").unwrap());
            let c = row.id(joined.meta.column("c").unwrap());
            assert!((b == 2 && c == 5) || (b == 4 && c == 6));
        }
    }

    #[test]
    fn vertex_isomorphism_prunes_repeats() {
        let env = env();
        // Path of length 2 where data vertex 1 would repeat: 1->2->1.
        let left = edge_set(&env, &[(1, 10, 2)], ["a", "e1", "b"]);
        let right = edge_set(&env, &[(2, 20, 1), (2, 21, 3)], ["b", "e2", "c"]);
        let homo = join_embeddings(
            &left,
            &right,
            &["b".to_string()],
            &MatchingConfig::homomorphism(),
            JoinStrategy::RepartitionHash,
        );
        assert_eq!(homo.data.count(), 2);
        let iso = join_embeddings(
            &left,
            &right,
            &["b".to_string()],
            &MatchingConfig::isomorphism(),
            JoinStrategy::RepartitionHash,
        );
        assert_eq!(iso.data.count(), 1);
    }

    #[test]
    fn edge_isomorphism_prunes_repeated_edges() {
        let env = env();
        // Undirected-style data: the same data edge 10 in both directions.
        let left = edge_set(&env, &[(1, 10, 2)], ["a", "e1", "b"]);
        let right = edge_set(&env, &[(2, 10, 1)], ["b", "e2", "c"]);
        let cypher = join_embeddings(
            &left,
            &right,
            &["b".to_string()],
            &MatchingConfig::cypher_default(),
            JoinStrategy::RepartitionHash,
        );
        assert_eq!(cypher.data.count(), 0); // edge 10 bound twice
        let homo = join_embeddings(
            &left,
            &right,
            &["b".to_string()],
            &MatchingConfig::homomorphism(),
            JoinStrategy::RepartitionHash,
        );
        assert_eq!(homo.data.count(), 1);
    }

    #[test]
    fn multi_column_join_closes_triangles() {
        let env = env();
        // (a)-[e1]->(b)-[e2]->(c) as left; (a)-[e3]->(c) as right:
        // join on both a and c.
        let mut left_meta = EmbeddingMetaData::new();
        left_meta.add_entry("a", EntryType::Vertex);
        left_meta.add_entry("b", EntryType::Vertex);
        left_meta.add_entry("c", EntryType::Vertex);
        let mut emb = Embedding::new();
        emb.push_id(1);
        emb.push_id(2);
        emb.push_id(3);
        let left = EmbeddingSet {
            data: env.from_collection(vec![emb]),
            meta: left_meta,
        };
        let right = edge_set(&env, &[(1, 30, 3), (1, 31, 4)], ["a", "e3", "c"]);
        let joined = join_embeddings(
            &left,
            &right,
            &["a".to_string(), "c".to_string()],
            &MatchingConfig::homomorphism(),
            JoinStrategy::RepartitionHash,
        );
        let rows = joined.data.collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].id(joined.meta.column("e3").unwrap()), 30);
    }

    #[test]
    fn join_key_is_order_insensitive() {
        let ac = embedding_join_key(&["a".to_string(), "c".to_string()]);
        let ca = embedding_join_key(&["c".to_string(), "a".to_string()]);
        assert_eq!(ac, ca);
        assert_ne!(ac, embedding_join_key(&["a".to_string()]));
    }

    #[test]
    fn chained_joins_on_same_variable_elide_the_shuffle() {
        let env = ExecutionEnvironment::new(
            ExecutionConfig::with_workers(4).cost_model(CostModel::free()),
        );
        let rows: Vec<(u64, u64, u64)> = (0..200).map(|i| (i, 1000 + i, i % 20)).collect();
        let left = edge_set(&env, &rows, ["a", "e1", "b"]);
        let mid_rows: Vec<(u64, u64, u64)> = (0..20).map(|i| (i, 2000 + i, i + 500)).collect();
        let mid = edge_set(&env, &mid_rows, ["b", "e2", "c"]);
        let last_rows: Vec<(u64, u64, u64)> = (0..20).map(|i| (i, 3000 + i, i + 900)).collect();
        let last = edge_set(&env, &last_rows, ["b", "e3", "d"]);

        let first = join_embeddings(
            &left,
            &mid,
            &["b".to_string()],
            &MatchingConfig::homomorphism(),
            JoinStrategy::RepartitionHash,
        );
        // The join output is stamped as partitioned on its join variables.
        assert!(first.data.partitioning().is_some());

        // Second join on the same variable: the (large) first result is
        // forwarded; only `last` is pushed through the shuffle. (The first
        // result already sits hash-placed by `b`, so the re-shuffle it
        // avoids would move zero bytes — the saving shows up as records not
        // re-hashed and re-routed.) Compare against the same join with the
        // placement fact erased.
        let before = env.metrics();
        let _ = join_embeddings(
            &first,
            &last,
            &["b".to_string()],
            &MatchingConfig::homomorphism(),
            JoinStrategy::RepartitionHash,
        );
        let mid_metrics = env.metrics();
        let with_stamp = mid_metrics.records_in - before.records_in;

        let unstamped = EmbeddingSet {
            data: first.data.clone().assume_partitioning(None),
            meta: first.meta.clone(),
        };
        let _ = join_embeddings(
            &unstamped,
            &last,
            &["b".to_string()],
            &MatchingConfig::homomorphism(),
            JoinStrategy::RepartitionHash,
        );
        let after = env.metrics();
        let without_stamp = after.records_in - mid_metrics.records_in;
        assert!(
            with_stamp < without_stamp,
            "forwarding must process fewer records: {with_stamp} vs {without_stamp}"
        );
        // Byte-wise the forwarded plan can only be at least as cheap.
        let stamped_bytes = mid_metrics.bytes_shuffled - before.bytes_shuffled;
        let unstamped_bytes = after.bytes_shuffled - mid_metrics.bytes_shuffled;
        assert!(stamped_bytes <= unstamped_bytes);
    }

    #[test]
    fn unknown_join_variable_poisons_environment() {
        let env = env();
        let left = edge_set(&env, &[(1, 10, 2)], ["a", "e1", "b"]);
        let right = edge_set(&env, &[(2, 20, 3)], ["b", "e2", "c"]);
        let joined = join_embeddings(
            &left,
            &right,
            &["nope".to_string()],
            &MatchingConfig::homomorphism(),
            JoinStrategy::RepartitionHash,
        );
        // No panic: an empty result plus a recorded execution failure.
        assert_eq!(joined.data.count(), 0);
        let failure = env.take_execution_failure().expect("poisoned");
        assert!(failure.message.contains("`nope` unbound"));
        assert!(failure.site.contains("join_embeddings"));
        // The failure is drained exactly once.
        assert!(env.take_execution_failure().is_none());
    }
}
