//! Query operators (paper Section 3.1).
//!
//! Each operator translates a relational operation into dataflow
//! transformations over embedding datasets:
//!
//! * [`filter_and_project_vertices`] / [`filter_and_project_edges`] — the
//!   leaf operators, fusing Select → Project → Transform into a single
//!   `flat_map`;
//! * [`join_embeddings`] — connects two subqueries with a FlatJoin that
//!   enforces the chosen morphism semantics;
//! * [`expand_embeddings`] — variable-length path expressions via bulk
//!   iteration;
//! * [`filter_embeddings`] — predicates spanning multiple query elements;
//! * [`project_embeddings`] — drops property slots that are no longer
//!   needed;
//! * [`value_join_embeddings`] — joins subqueries on property values (the
//!   extension operator the paper names in Section 3.1);
//! * [`cartesian_embeddings`] — combines disconnected query components.

mod cartesian;
mod expand_embeddings;
mod expand_intersect;
mod filter_embeddings;
mod filter_project_edges;
mod filter_project_vertices;
mod join_embeddings;
mod project_embeddings;
mod value_join;
pub mod vectorized;

pub use cartesian::cartesian_embeddings;
pub use expand_embeddings::{expand_embeddings, EdgeTriple, ExpandConfig};
pub use expand_intersect::expand_intersect;
pub use filter_embeddings::filter_embeddings;
pub use filter_project_edges::{edge_triples, filter_and_project_edges};
pub use filter_project_vertices::filter_and_project_vertices;
pub use join_embeddings::{embedding_join_key, join_embeddings, join_embeddings_filtered};
pub use project_embeddings::project_embeddings;
pub use value_join::value_join_embeddings;
pub use vectorized::{
    compare_refs, expand_batched, hash_probe_batched, CompiledFilter, IdHashTable, NeighborIndex,
};

use crate::embedding::{Embedding, EmbeddingMetaData};
use gradoop_dataflow::{Data, Dataset, ExecutionFailure, SpanRecord};

/// An embedding dataset together with its (plan-time) layout.
#[derive(Clone, Debug)]
pub struct EmbeddingSet {
    /// The embeddings.
    pub data: Dataset<Embedding>,
    /// Their shared layout.
    pub meta: EmbeddingMetaData,
}

/// Records a malformed-plan failure on `set`'s environment and returns a
/// degenerate empty embedding set so downstream operators keep flowing
/// instead of panicking. The engine drains the recorded failure after the
/// run and surfaces it as a classified `CypherError::Execution` (the same
/// never-panic contract the fault paths follow).
pub(crate) fn malformed_plan(set: &EmbeddingSet, site: &str, message: String) -> EmbeddingSet {
    let env = set.data.env();
    env.record_execution_failure(ExecutionFailure {
        site: format!("operator `{site}`"),
        attempts: 0,
        message,
    });
    EmbeddingSet {
        data: env.from_collection(Vec::<Embedding>::new()),
        meta: EmbeddingMetaData::new(),
    }
}

/// Total serialized bytes of a result's embeddings.
pub fn embedding_bytes(set: &EmbeddingSet) -> u64 {
    set.data
        .partitions()
        .iter()
        .flatten()
        .map(|embedding| embedding.byte_size() as u64)
        .sum()
}

/// Reports an `operator/<name>` span with rows-in/out, selectivity and
/// result-byte counters to the environment's trace sink. Called by every
/// operator just before returning; a cheap no-op when no sink is installed,
/// so untraced executions do not pay for the byte-size scan.
pub(crate) fn observe_operator(name: &str, rows_in: u64, result: &EmbeddingSet) {
    let env = result.data.env();
    if env.trace_sink().is_none() {
        return;
    }
    let rows_out = result.data.len_untracked() as u64;
    let selectivity = if rows_in > 0 {
        rows_out as f64 / rows_in as f64
    } else {
        1.0
    };
    env.emit_span(SpanRecord {
        name: format!("operator/{name}"),
        wall_seconds: 0.0,
        simulated_seconds: 0.0,
        counters: vec![
            ("rows_in".to_string(), rows_in as f64),
            ("rows_out".to_string(), rows_out as f64),
            ("selectivity".to_string(), selectivity),
            (
                "embedding_bytes".to_string(),
                embedding_bytes(result) as f64,
            ),
        ],
    });
}
