//! `ProjectEmbeddings`: removes property slots that later operators no
//! longer need, shrinking the rows that flow through the network.

use crate::operators::{observe_operator, EmbeddingSet};

/// Keeps only the property slots for the given `(variable, key)` pairs.
/// Identifier and path columns are never dropped — they define the match.
pub fn project_embeddings(input: &EmbeddingSet, keep: &[(String, String)]) -> EmbeddingSet {
    let kept_indices: Vec<usize> = input
        .meta
        .properties()
        .enumerate()
        .filter(|(_, (variable, key))| keep.iter().any(|(v, k)| v == variable && k == key))
        .map(|(index, _)| index)
        .collect();

    if kept_indices.len() == input.meta.property_count() {
        return input.clone();
    }

    let mut meta = crate::embedding::EmbeddingMetaData::new();
    for (variable, entry_type) in input.meta.entries() {
        meta.add_entry(variable, entry_type);
    }
    let pairs: Vec<(String, String)> = input
        .meta
        .properties()
        .enumerate()
        .filter(|(index, _)| kept_indices.contains(index))
        .map(|(_, (variable, key))| (variable.to_string(), key.to_string()))
        .collect();
    for (variable, key) in &pairs {
        meta.add_property(variable, key);
    }

    // Zero-decode projection: the id and path sections move as one raw
    // copy, and kept properties are re-appended as their encoded bytes —
    // nothing is deserialized, and each output row is a single allocation.
    // Both paths do identical byte work; the batched one processes a whole
    // morsel per call and reports batch fill statistics.
    let indices = kept_indices.clone();
    let project_one = move |embedding: &crate::embedding::Embedding| {
        let extra: usize = indices
            .iter()
            .map(|&index| embedding.raw_property(index).len())
            .sum();
        let mut projected = embedding.clone_structure(extra);
        for &index in &indices {
            projected.push_raw_property(embedding.raw_property(index));
        }
        projected
    };
    let data = if input.data.env().vectorized() {
        input
            .data
            .transform_batched("project_embeddings", false, move |rows, out| {
                out.reserve(rows.len());
                out.extend(rows.iter().map(&project_one));
                gradoop_dataflow::BatchStats::one(rows.len() as u64, rows.len() as u64)
            })
    } else {
        input.data.map(project_one)
    };

    let result = EmbeddingSet { data, meta };
    observe_operator(
        "project_embeddings",
        input.data.len_untracked() as u64,
        &result,
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::{Embedding, EmbeddingMetaData, EntryType};
    use gradoop_dataflow::{CostModel, Data, ExecutionConfig, ExecutionEnvironment};
    use gradoop_epgm::PropertyValue;

    fn input(env: &ExecutionEnvironment) -> EmbeddingSet {
        let mut meta = EmbeddingMetaData::new();
        meta.add_entry("a", EntryType::Vertex);
        meta.add_entry("p", EntryType::Path);
        meta.add_property("a", "name");
        meta.add_property("a", "yob");
        meta.add_property("a", "gender");
        let mut emb = Embedding::new();
        emb.push_id(1);
        emb.push_path(&[7, 8, 9]);
        emb.push_property(&PropertyValue::String("Alice".into()));
        emb.push_property(&PropertyValue::Long(1984));
        emb.push_property(&PropertyValue::String("female".into()));
        EmbeddingSet {
            data: env.from_collection(vec![emb]),
            meta,
        }
    }

    #[test]
    fn drops_unwanted_properties() {
        let env = ExecutionEnvironment::new(
            ExecutionConfig::with_workers(1).cost_model(CostModel::free()),
        );
        let set = input(&env);
        let projected = project_embeddings(&set, &[("a".to_string(), "name".to_string())]);
        assert_eq!(projected.meta.property_count(), 1);
        let rows = projected.data.collect();
        assert_eq!(rows[0].property_count(), 1);
        assert_eq!(rows[0].property(0), PropertyValue::String("Alice".into()));
        // Columns (including paths) survive.
        assert_eq!(rows[0].path(1), vec![7, 8, 9]);
        // The projected row is smaller.
        assert!(rows[0].byte_size() < set.data.collect()[0].byte_size());
    }

    #[test]
    fn keeping_everything_is_identity() {
        let env = ExecutionEnvironment::new(
            ExecutionConfig::with_workers(1).cost_model(CostModel::free()),
        );
        let set = input(&env);
        let keep: Vec<(String, String)> = set
            .meta
            .properties()
            .map(|(v, k)| (v.to_string(), k.to_string()))
            .collect();
        let projected = project_embeddings(&set, &keep);
        assert_eq!(projected.meta, set.meta);
    }

    #[test]
    fn vectorized_projection_is_byte_identical_to_row_path() {
        let row_env = ExecutionEnvironment::new(
            ExecutionConfig::with_workers(2).cost_model(CostModel::free()),
        );
        let vec_env = ExecutionEnvironment::new(
            ExecutionConfig::with_workers(2)
                .vectorized(true)
                .cost_model(CostModel::free()),
        );
        let keep = vec![("a".to_string(), "yob".to_string())];
        let row_out = project_embeddings(&input(&row_env), &keep);
        let vec_out = project_embeddings(&input(&vec_env), &keep);
        assert_eq!(row_out.data.collect(), vec_out.data.collect());
        assert_eq!(row_out.meta, vec_out.meta);
        assert!(vec_env.metrics().batches > 0);
    }

    #[test]
    fn projecting_to_nothing_keeps_structure() {
        let env = ExecutionEnvironment::new(
            ExecutionConfig::with_workers(1).cost_model(CostModel::free()),
        );
        let set = input(&env);
        let projected = project_embeddings(&set, &[]);
        assert_eq!(projected.meta.property_count(), 0);
        assert_eq!(projected.meta.columns(), 2);
        assert_eq!(projected.data.collect()[0].property_count(), 0);
    }
}
