//! `ValueJoinEmbeddings`: joins two embedding sets on *property values*
//! instead of element identity.
//!
//! The paper names this as the canonical example of the query engine's
//! extensibility ("it is easy to integrate new query operators, for
//! example, to join subqueries on property values", Section 3.1). The
//! planner uses it to evaluate equality predicates between properties of
//! otherwise disconnected query components, replacing a cartesian product
//! followed by a filter.

use crate::matching::{satisfies_morphism, MatchingConfig};
use crate::operators::{malformed_plan, observe_operator, EmbeddingSet};
use gradoop_dataflow::JoinStrategy;

/// Joins `left` and `right` where the given property slots are equal.
///
/// Rows whose join property is `NULL` (or missing) never match — Cypher
/// equality semantics. The output binds the union of both sides' columns
/// and property slots (nothing is skipped: the sides share no variables).
/// An unbound join property means a malformed plan: the operator records a
/// classified execution failure instead of panicking and returns an empty
/// set.
pub fn value_join_embeddings(
    left: &EmbeddingSet,
    right: &EmbeddingSet,
    left_property: &(String, String),
    right_property: &(String, String),
    config: &MatchingConfig,
    strategy: JoinStrategy,
) -> EmbeddingSet {
    let Some(left_index) = left.meta.property_index(&left_property.0, &left_property.1) else {
        return malformed_plan(
            left,
            "value_join_embeddings",
            format!(
                "value-join property `{}.{}` unbound on left side",
                left_property.0, left_property.1
            ),
        );
    };
    let Some(right_index) = right
        .meta
        .property_index(&right_property.0, &right_property.1)
    else {
        return malformed_plan(
            right,
            "value_join_embeddings",
            format!(
                "value-join property `{}.{}` unbound on right side",
                right_property.0, right_property.1
            ),
        );
    };

    let meta = left.meta.merge(&right.meta, &[]);
    let merged_meta = meta.clone();
    let config = *config;

    let data = left.data.join(
        &right.data,
        move |embedding| embedding.property(left_index),
        move |embedding| embedding.property(right_index),
        strategy,
        move |l, r| {
            // NULL never equals NULL under Cypher semantics; the hash join
            // groups them together, so reject here.
            if l.property(left_index).is_null() {
                return None;
            }
            let merged = l.merge(r, &[]);
            satisfies_morphism(&merged, &merged_meta, &config).then_some(merged)
        },
    );
    let rows_in = (left.data.len_untracked() + right.data.len_untracked()) as u64;
    let result = EmbeddingSet { data, meta };
    observe_operator("value_join_embeddings", rows_in, &result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::{Embedding, EmbeddingMetaData, EntryType};
    use gradoop_dataflow::{CostModel, ExecutionConfig, ExecutionEnvironment};
    use gradoop_epgm::PropertyValue;

    fn env() -> ExecutionEnvironment {
        ExecutionEnvironment::new(ExecutionConfig::with_workers(2).cost_model(CostModel::free()))
    }

    /// One-column embeddings for `variable` with property `key` bound to
    /// the given values (None = NULL).
    fn side(
        env: &ExecutionEnvironment,
        variable: &str,
        key: &str,
        rows: &[(u64, Option<&str>)],
    ) -> EmbeddingSet {
        let mut meta = EmbeddingMetaData::new();
        meta.add_entry(variable, EntryType::Vertex);
        meta.add_property(variable, key);
        let data = env.from_collection(
            rows.iter()
                .map(|(id, value)| {
                    let mut e = Embedding::new();
                    e.push_id(*id);
                    e.push_property(&match value {
                        Some(s) => PropertyValue::String((*s).into()),
                        None => PropertyValue::Null,
                    });
                    e
                })
                .collect::<Vec<_>>(),
        );
        EmbeddingSet { data, meta }
    }

    #[test]
    fn joins_on_equal_property_values() {
        let env = env();
        let people = side(
            &env,
            "p",
            "city",
            &[
                (1, Some("Leipzig")),
                (2, Some("Dresden")),
                (3, Some("Leipzig")),
            ],
        );
        let unis = side(
            &env,
            "u",
            "city",
            &[(10, Some("Leipzig")), (11, Some("Berlin"))],
        );
        let joined = value_join_embeddings(
            &people,
            &unis,
            &("p".to_string(), "city".to_string()),
            &("u".to_string(), "city".to_string()),
            &MatchingConfig::cypher_default(),
            JoinStrategy::RepartitionHash,
        );
        let rows = joined.data.collect();
        assert_eq!(rows.len(), 2); // persons 1 and 3 with university 10
        let p = joined.meta.column("p").unwrap();
        let u = joined.meta.column("u").unwrap();
        for row in rows {
            assert_eq!(row.id(u), 10);
            assert!(row.id(p) == 1 || row.id(p) == 3);
        }
        // Both property slots survive in the merged layout.
        assert!(joined.meta.property_index("p", "city").is_some());
        assert!(joined.meta.property_index("u", "city").is_some());
    }

    #[test]
    fn null_values_never_match() {
        let env = env();
        let left = side(&env, "a", "k", &[(1, None), (2, Some("x"))]);
        let right = side(&env, "b", "k", &[(10, None), (11, Some("x"))]);
        let joined = value_join_embeddings(
            &left,
            &right,
            &("a".to_string(), "k".to_string()),
            &("b".to_string(), "k".to_string()),
            &MatchingConfig::cypher_default(),
            JoinStrategy::RepartitionHash,
        );
        // Only the ("x", "x") pair joins; NULL = NULL is false.
        assert_eq!(joined.data.count(), 1);
    }

    #[test]
    fn morphism_checks_apply_to_value_joins() {
        let env = env();
        // Both sides bind the same data vertex 1.
        let left = side(&env, "a", "k", &[(1, Some("x"))]);
        let right = side(&env, "b", "k", &[(1, Some("x"))]);
        let homo = value_join_embeddings(
            &left,
            &right,
            &("a".to_string(), "k".to_string()),
            &("b".to_string(), "k".to_string()),
            &MatchingConfig::homomorphism(),
            JoinStrategy::RepartitionHash,
        );
        assert_eq!(homo.data.count(), 1);
        let iso = value_join_embeddings(
            &left,
            &right,
            &("a".to_string(), "k".to_string()),
            &("b".to_string(), "k".to_string()),
            &MatchingConfig::isomorphism(),
            JoinStrategy::RepartitionHash,
        );
        assert_eq!(iso.data.count(), 0);
    }

    #[test]
    fn unknown_property_poisons_environment() {
        let env = env();
        let left = side(&env, "a", "k", &[(1, Some("x"))]);
        let right = side(&env, "b", "k", &[(2, Some("x"))]);
        let joined = value_join_embeddings(
            &left,
            &right,
            &("a".to_string(), "nope".to_string()),
            &("b".to_string(), "k".to_string()),
            &MatchingConfig::cypher_default(),
            JoinStrategy::RepartitionHash,
        );
        assert_eq!(joined.data.count(), 0);
        let failure = env.take_execution_failure().expect("poisoned");
        assert!(failure.message.contains("`a.nope` unbound"));
        assert!(failure.site.contains("value_join_embeddings"));
    }
}
