//! Batched (vectorized) operator kernels over [`EmbeddingBatch`]es.
//!
//! The row-at-a-time operators interpret predicates per embedding: every
//! atom re-resolves its operands, decodes property bytes into owned
//! [`PropertyValue`]s, and walks the three-byte-array layout per row. The
//! kernels here hoist all of that out of the row loop:
//!
//! * [`CompiledFilter`] resolves each CNF atom **once per operator** against
//!   the embedding layout. Because operand resolution depends only on
//!   metadata — whether a property slot exists, whether a variable is bound
//!   to an id or a path column — every atom compiles to a static plan with
//!   *no* per-row fallback. At batch time, literal comparisons against a
//!   dictionary-encoded slot become a truth table indexed by dictionary
//!   code, so the inner loop is `table[codes[row]]` — a tight pass over
//!   primitive slices the compiler can auto-vectorize.
//! * [`IdHashTable`] is the batched hash-join probe: an open-addressing
//!   table over raw `u64` join keys (multiply-shift hashing, linear
//!   probing) probed with a gathered key column, instead of per-row key
//!   extraction plus a SipHash `HashMap` lookup.
//! * [`NeighborIndex`] is the batched expand kernel's adjacency: source
//!   vertex ids map to `(edge, target)` ranges, probed with a gathered
//!   source column.
//!
//! All kernels are unsafe-free; selections stay in ascending row order, so
//! batched output is byte-identical to the row path by construction.

use std::cmp::Ordering;

use gradoop_cypher::{Atom, CmpOp, CnfClause, Operand};
use gradoop_epgm::PropertyValue;

use crate::embedding::{EmbeddingBatch, EmbeddingMetaData, EntryType};

/// Three-valued comparison over borrowed values — the reference-based twin
/// of `gradoop_cypher::predicates::eval::compare_values`, avoiding the
/// operand clones the row path pays per evaluation. Semantics are pinned to
/// the row path (see the parity test below): any `NULL` operand makes the
/// result unknown, and incomparable types are unknown for orderings.
pub fn compare_refs(left: &PropertyValue, op: CmpOp, right: &PropertyValue) -> Option<bool> {
    if left.is_null() || right.is_null() {
        return None;
    }
    match op {
        CmpOp::Eq => Some(left == right),
        CmpOp::Neq => Some(left != right),
        CmpOp::Lt => Some(left.compare(right)? == Ordering::Less),
        CmpOp::Gt => Some(left.compare(right)? == Ordering::Greater),
        CmpOp::Lte => Some(left.compare(right)? != Ordering::Greater),
        CmpOp::Gte => Some(left.compare(right)? != Ordering::Less),
    }
}

/// Identifier comparison with `Long` semantics (ids are compared as the
/// row path compares them: cast to `i64`, never null, totally ordered).
fn compare_ids(left: i64, op: CmpOp, right: i64) -> bool {
    match op {
        CmpOp::Eq => left == right,
        CmpOp::Neq => left != right,
        CmpOp::Lt => left < right,
        CmpOp::Gt => left > right,
        CmpOp::Lte => left <= right,
        CmpOp::Gte => left >= right,
    }
}

/// A statically resolved operand: what a CNF operand means against one
/// embedding layout, decided once per operator.
enum OperandPlan {
    /// A literal, decoded once.
    Lit(PropertyValue),
    /// A property slot index into the embedding's property section.
    Slot(usize),
    /// An id column (never a path column — those resolve to [`Missing`]).
    IdColumn(usize),
    /// Resolves to *unknown* for every row: an unbound variable, a property
    /// slot the layout does not carry, or a variable bound to a path column
    /// (paths have no element identity).
    Missing,
}

fn plan_operand(operand: &Operand, meta: &EmbeddingMetaData) -> OperandPlan {
    match operand {
        Operand::Literal(literal) => OperandPlan::Lit(literal.to_property_value()),
        Operand::Property { variable, key } => match meta.property_index(variable, key) {
            Some(slot) => OperandPlan::Slot(slot),
            None => OperandPlan::Missing,
        },
        Operand::Variable(variable) => match meta.column(variable) {
            Some(column) if meta.entry_type(variable) != Some(EntryType::Path) => {
                OperandPlan::IdColumn(column)
            }
            _ => OperandPlan::Missing,
        },
    }
}

/// A statically compiled atom. `Const` carries the three-valued verdict for
/// atoms that evaluate identically on every row — in particular `HasLabel`,
/// which is always unknown on embeddings (labels are projected away), and
/// any comparison touching a [`OperandPlan::Missing`] operand.
enum AtomPlan {
    Const(Option<bool>),
    /// `slot op literal` (or swapped): becomes a per-batch truth table
    /// indexed by dictionary code.
    CodeLit {
        slot: usize,
        op: CmpOp,
        lit: PropertyValue,
        lit_left: bool,
    },
    /// `slot IS [NOT] NULL`: also a per-batch truth table.
    CodeIsNull {
        slot: usize,
        negated: bool,
    },
    /// `slot op slot`: compared through the shared dictionary.
    CodeCode {
        left: usize,
        right: usize,
        op: CmpOp,
    },
    /// `id-column op literal` (or swapped).
    IdLit {
        column: usize,
        op: CmpOp,
        lit: PropertyValue,
        lit_left: bool,
    },
    /// `id-column op id-column`: a pure primitive-slice comparison.
    IdId {
        left: usize,
        right: usize,
        op: CmpOp,
    },
    /// `id-column op slot` (or swapped when `id_left` is false).
    IdCode {
        column: usize,
        slot: usize,
        op: CmpOp,
        id_left: bool,
    },
}

fn plan_atom(atom: &Atom, meta: &EmbeddingMetaData) -> AtomPlan {
    match atom {
        Atom::Constant(value) => AtomPlan::Const(Some(*value)),
        // Embeddings never carry labels (`EmbeddingBindings::label` is
        // `None` for every variable), so a label test is always unknown.
        Atom::HasLabel { .. } => AtomPlan::Const(None),
        Atom::IsNull { operand, negated } => match plan_operand(operand, meta) {
            OperandPlan::Missing => AtomPlan::Const(Some(!*negated)),
            OperandPlan::Lit(value) => AtomPlan::Const(Some(value.is_null() != *negated)),
            // Ids resolve to a non-null Long for every row.
            OperandPlan::IdColumn(_) => AtomPlan::Const(Some(*negated)),
            OperandPlan::Slot(slot) => AtomPlan::CodeIsNull {
                slot,
                negated: *negated,
            },
        },
        Atom::Comparison { left, op, right } => {
            match (plan_operand(left, meta), plan_operand(right, meta)) {
                (OperandPlan::Missing, _) | (_, OperandPlan::Missing) => AtomPlan::Const(None),
                (OperandPlan::Lit(l), OperandPlan::Lit(r)) => {
                    AtomPlan::Const(compare_refs(&l, *op, &r))
                }
                (OperandPlan::Slot(slot), OperandPlan::Lit(lit)) => AtomPlan::CodeLit {
                    slot,
                    op: *op,
                    lit,
                    lit_left: false,
                },
                (OperandPlan::Lit(lit), OperandPlan::Slot(slot)) => AtomPlan::CodeLit {
                    slot,
                    op: *op,
                    lit,
                    lit_left: true,
                },
                (OperandPlan::Slot(left), OperandPlan::Slot(right)) => AtomPlan::CodeCode {
                    left,
                    right,
                    op: *op,
                },
                (OperandPlan::IdColumn(column), OperandPlan::Lit(lit)) => AtomPlan::IdLit {
                    column,
                    op: *op,
                    lit,
                    lit_left: false,
                },
                (OperandPlan::Lit(lit), OperandPlan::IdColumn(column)) => AtomPlan::IdLit {
                    column,
                    op: *op,
                    lit,
                    lit_left: true,
                },
                (OperandPlan::IdColumn(left), OperandPlan::IdColumn(right)) => AtomPlan::IdId {
                    left,
                    right,
                    op: *op,
                },
                (OperandPlan::IdColumn(column), OperandPlan::Slot(slot)) => AtomPlan::IdCode {
                    column,
                    slot,
                    op: *op,
                    id_left: true,
                },
                (OperandPlan::Slot(slot), OperandPlan::IdColumn(column)) => AtomPlan::IdCode {
                    column,
                    slot,
                    op: *op,
                    id_left: false,
                },
            }
        }
    }
}

/// One compiled disjunction. Constant atoms are folded at compile time: a
/// clause containing a true constant always passes (and is skipped), atoms
/// that can never be true (false or unknown constants) are dropped, and a
/// clause left with no atoms can never pass.
enum ClausePlan {
    AlwaysTrue,
    AlwaysFalse,
    Atoms(Vec<AtomPlan>),
}

fn plan_clause(clause: &CnfClause, meta: &EmbeddingMetaData) -> ClausePlan {
    let mut atoms = Vec::with_capacity(clause.atoms.len());
    for atom in &clause.atoms {
        match plan_atom(atom, meta) {
            AtomPlan::Const(Some(true)) => return ClausePlan::AlwaysTrue,
            AtomPlan::Const(_) => {} // false or unknown: never satisfies the OR
            plan => atoms.push(plan),
        }
    }
    if atoms.is_empty() {
        ClausePlan::AlwaysFalse
    } else {
        ClausePlan::Atoms(atoms)
    }
}

/// A CNF predicate compiled against one embedding layout, applied to whole
/// batches by narrowing their selection vectors.
pub struct CompiledFilter {
    clauses: Vec<ClausePlan>,
}

/// An atom bound to one batch's materialized columns. Truth tables are
/// indexed by dictionary code (`table[codes[row]]`), so string and other
/// heavyweight comparisons run once per *distinct value*, not once per row.
enum AtomEval<'f, 'b> {
    Table {
        codes: &'b [u32],
        table: Vec<bool>,
    },
    CodeCode {
        left: &'b [u32],
        right: &'b [u32],
        values: &'b [PropertyValue],
        op: CmpOp,
    },
    IdLit {
        ids: &'b [u64],
        op: CmpOp,
        lit: &'f PropertyValue,
        lit_left: bool,
    },
    IdId {
        left: &'b [u64],
        right: &'b [u64],
        op: CmpOp,
    },
    IdCode {
        ids: &'b [u64],
        codes: &'b [u32],
        values: &'b [PropertyValue],
        op: CmpOp,
        id_left: bool,
    },
}

impl<'f, 'b> AtomEval<'f, 'b> {
    fn bind(plan: &'f AtomPlan, batch: &'b EmbeddingBatch<'_>) -> Self {
        match plan {
            AtomPlan::Const(_) => unreachable!("constant atoms are folded at compile time"),
            AtomPlan::CodeLit {
                slot,
                op,
                lit,
                lit_left,
            } => {
                let table = batch
                    .dict_values()
                    .iter()
                    .map(|value| {
                        let verdict = if *lit_left {
                            compare_refs(lit, *op, value)
                        } else {
                            compare_refs(value, *op, lit)
                        };
                        verdict == Some(true)
                    })
                    .collect();
                AtomEval::Table {
                    codes: batch.codes(*slot),
                    table,
                }
            }
            AtomPlan::CodeIsNull { slot, negated } => {
                let table = batch
                    .dict_values()
                    .iter()
                    .map(|value| value.is_null() != *negated)
                    .collect();
                AtomEval::Table {
                    codes: batch.codes(*slot),
                    table,
                }
            }
            AtomPlan::CodeCode { left, right, op } => AtomEval::CodeCode {
                left: batch.codes(*left),
                right: batch.codes(*right),
                values: batch.dict_values(),
                op: *op,
            },
            AtomPlan::IdLit {
                column,
                op,
                lit,
                lit_left,
            } => AtomEval::IdLit {
                ids: batch.ids(*column).expect("id column materialized"),
                op: *op,
                lit,
                lit_left: *lit_left,
            },
            AtomPlan::IdId { left, right, op } => AtomEval::IdId {
                left: batch.ids(*left).expect("id column materialized"),
                right: batch.ids(*right).expect("id column materialized"),
                op: *op,
            },
            AtomPlan::IdCode {
                column,
                slot,
                op,
                id_left,
            } => AtomEval::IdCode {
                ids: batch.ids(*column).expect("id column materialized"),
                codes: batch.codes(*slot),
                values: batch.dict_values(),
                op: *op,
                id_left: *id_left,
            },
        }
    }

    #[inline]
    fn eval(&self, row: usize) -> bool {
        match self {
            AtomEval::Table { codes, table } => table[codes[row] as usize],
            AtomEval::CodeCode {
                left,
                right,
                values,
                op,
            } => {
                compare_refs(
                    &values[left[row] as usize],
                    *op,
                    &values[right[row] as usize],
                ) == Some(true)
            }
            AtomEval::IdLit {
                ids,
                op,
                lit,
                lit_left,
            } => {
                let id = PropertyValue::Long(ids[row] as i64);
                let verdict = if *lit_left {
                    compare_refs(lit, *op, &id)
                } else {
                    compare_refs(&id, *op, lit)
                };
                verdict == Some(true)
            }
            AtomEval::IdId { left, right, op } => {
                compare_ids(left[row] as i64, *op, right[row] as i64)
            }
            AtomEval::IdCode {
                ids,
                codes,
                values,
                op,
                id_left,
            } => {
                let id = PropertyValue::Long(ids[row] as i64);
                let value = &values[codes[row] as usize];
                let verdict = if *id_left {
                    compare_refs(&id, *op, value)
                } else {
                    compare_refs(value, *op, &id)
                };
                verdict == Some(true)
            }
        }
    }
}

impl CompiledFilter {
    /// Compiles `clauses` against the layout `meta`. Resolution happens
    /// exactly once; applying the filter touches no metadata.
    pub fn compile(clauses: &[CnfClause], meta: &EmbeddingMetaData) -> Self {
        CompiledFilter {
            clauses: clauses
                .iter()
                .map(|clause| plan_clause(clause, meta))
                .collect(),
        }
    }

    /// `true` when no row can ever pass (e.g. a clause that folded to a
    /// false constant) — callers may skip scanning entirely.
    pub fn rejects_everything(&self) -> bool {
        self.clauses
            .iter()
            .any(|clause| matches!(clause, ClausePlan::AlwaysFalse))
    }

    /// Narrows `batch`'s selection to the rows satisfying every clause.
    /// Materializes exactly the columns the plan touches, then runs each
    /// clause as one pass over the current selection.
    pub fn apply(&self, batch: &mut EmbeddingBatch<'_>) {
        if batch.is_empty() {
            return;
        }
        for clause in &self.clauses {
            let ClausePlan::Atoms(atoms) = clause else {
                continue;
            };
            for atom in atoms {
                match atom {
                    AtomPlan::Const(_) => {}
                    AtomPlan::CodeLit { slot, .. } | AtomPlan::CodeIsNull { slot, .. } => {
                        batch.ensure_codes(*slot);
                    }
                    AtomPlan::CodeCode { left, right, .. } => {
                        batch.ensure_codes(*left);
                        batch.ensure_codes(*right);
                    }
                    AtomPlan::IdLit { column, .. } => {
                        batch.ensure_ids(*column);
                    }
                    AtomPlan::IdId { left, right, .. } => {
                        batch.ensure_ids(*left);
                        batch.ensure_ids(*right);
                    }
                    AtomPlan::IdCode { column, slot, .. } => {
                        batch.ensure_ids(*column);
                        batch.ensure_codes(*slot);
                    }
                }
            }
        }
        for clause in &self.clauses {
            if batch.is_empty() {
                return;
            }
            let atoms = match clause {
                ClausePlan::AlwaysTrue => continue,
                ClausePlan::AlwaysFalse => {
                    batch.set_selection(Vec::new());
                    return;
                }
                ClausePlan::Atoms(atoms) => atoms,
            };
            let keep: Vec<u32> = {
                let evals: Vec<AtomEval> = atoms
                    .iter()
                    .map(|atom| AtomEval::bind(atom, batch))
                    .collect();
                match evals.as_slice() {
                    // The dominant shape — one atom per clause — gets the
                    // tight single-evaluator loop.
                    [single] => batch
                        .selection()
                        .iter()
                        .copied()
                        .filter(|&row| single.eval(row as usize))
                        .collect(),
                    many => batch
                        .selection()
                        .iter()
                        .copied()
                        .filter(|&row| many.iter().any(|eval| eval.eval(row as usize)))
                        .collect(),
                }
            };
            batch.set_selection(keep);
        }
    }
}

/// An open-addressing hash table over raw `u64` join keys — the build side
/// of the batched hash-join probe. Multiply-shift hashing plus linear
/// probing keeps the probe loop branch-light; duplicate keys chain through
/// `next`, so every matching build row is visited.
pub struct IdHashTable {
    mask: u64,
    shift: u32,
    /// Per hash slot: `1 + index` of the first entry, 0 when empty.
    heads: Vec<u32>,
    /// Per entry: `1 + index` of the next entry with the same key.
    next: Vec<u32>,
    keys: Vec<u64>,
}

impl IdHashTable {
    /// Builds the table over `keys`; entry `i` carries payload `i` (the
    /// build-side row index).
    pub fn build(keys: &[u64]) -> Self {
        let capacity = (keys.len() * 2).next_power_of_two().max(16);
        let mut table = IdHashTable {
            mask: capacity as u64 - 1,
            shift: 64 - capacity.trailing_zeros(),
            heads: vec![0; capacity],
            next: vec![0; keys.len()],
            keys: keys.to_vec(),
        };
        for (index, &key) in keys.iter().enumerate() {
            let mut slot = table.slot(key);
            // Linear-probe to a slot whose chain holds this key, or to an
            // empty slot.
            loop {
                let head = table.heads[slot as usize];
                if head == 0 {
                    table.heads[slot as usize] = index as u32 + 1;
                    break;
                }
                if table.keys[head as usize - 1] == key {
                    table.next[index] = head;
                    table.heads[slot as usize] = index as u32 + 1;
                    break;
                }
                slot = (slot + 1) & table.mask;
            }
        }
        table
    }

    /// Number of build-side entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when the build side is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    #[inline]
    fn slot(&self, key: u64) -> u64 {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) & self.mask
    }

    /// Calls `emit` with the build row index of every entry whose key
    /// equals `key`.
    #[inline]
    pub fn probe(&self, key: u64, mut emit: impl FnMut(u32)) {
        let mut slot = self.slot(key);
        loop {
            let head = self.heads[slot as usize];
            if head == 0 {
                return;
            }
            if self.keys[head as usize - 1] == key {
                let mut entry = head;
                while entry != 0 {
                    emit(entry - 1);
                    entry = self.next[entry as usize - 1];
                }
                return;
            }
            slot = (slot + 1) & self.mask;
        }
    }
}

/// Probes `table` with the selected rows of a gathered key column,
/// appending `(probe_row, build_row)` index pairs. The batched counterpart
/// of per-row key extraction + `HashMap` lookup in the join kernel.
pub fn hash_probe_batched(
    table: &IdHashTable,
    keys: &[u64],
    selection: &[u32],
    out: &mut Vec<(u32, u32)>,
) {
    for &row in selection {
        table.probe(keys[row as usize], |build_row| out.push((row, build_row)));
    }
}

/// Adjacency for the batched expand kernel: maps a source vertex id to its
/// outgoing `(edge, target)` pairs through an [`IdHashTable`].
pub struct NeighborIndex {
    table: IdHashTable,
    edges_targets: Vec<(u64, u64)>,
}

impl NeighborIndex {
    /// Builds the index from `(source, edge, target)` triples.
    pub fn build(triples: &[(u64, u64, u64)]) -> Self {
        let keys: Vec<u64> = triples.iter().map(|&(source, _, _)| source).collect();
        NeighborIndex {
            table: IdHashTable::build(&keys),
            edges_targets: triples
                .iter()
                .map(|&(_, edge, target)| (edge, target))
                .collect(),
        }
    }

    /// Calls `emit` with every `(edge, target)` pair leaving `source`.
    #[inline]
    pub fn neighbors(&self, source: u64, mut emit: impl FnMut(u64, u64)) {
        self.table.probe(source, |index| {
            let (edge, target) = self.edges_targets[index as usize];
            emit(edge, target);
        });
    }
}

/// Expands the selected rows of a gathered source-vertex column, appending
/// `(probe_row, edge, target)` candidates. Morphism and predicate checks
/// run on the candidates afterwards — this kernel only enumerates.
pub fn expand_batched(
    index: &NeighborIndex,
    sources: &[u64],
    selection: &[u32],
    out: &mut Vec<(u32, u64, u64)>,
) {
    for &row in selection {
        index.neighbors(sources[row as usize], |edge, target| {
            out.push((row, edge, target));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::{Embedding, EmbeddingBindings};
    use gradoop_cypher::predicates::cnf::to_cnf;
    use gradoop_cypher::predicates::eval::{compare_values, eval_clause};
    use gradoop_cypher::{parse, Expression};

    fn where_clauses(text: &str) -> Vec<CnfClause> {
        let query = parse(text).unwrap();
        let expr: Expression = query.where_clause.unwrap();
        to_cnf(&expr).clauses
    }

    fn meta() -> EmbeddingMetaData {
        let mut meta = EmbeddingMetaData::new();
        meta.add_entry("a", EntryType::Vertex);
        meta.add_entry("e", EntryType::Edge);
        meta.add_entry("b", EntryType::Vertex);
        meta.add_property("a", "name");
        meta.add_property("a", "age");
        meta.add_property("b", "age");
        meta
    }

    fn rows() -> Vec<Embedding> {
        let names = ["alice", "bob", "carol", "alice", "dave"];
        let a_ages = [Some(30i64), Some(17), None, Some(65), Some(17)];
        let b_ages = [Some(30i64), None, Some(40), Some(12), Some(17)];
        (0..5)
            .map(|i| {
                let mut emb = Embedding::new();
                emb.push_id(i as u64);
                emb.push_id(100 + i as u64);
                emb.push_id((i as u64) % 3);
                emb.push_property(&PropertyValue::String(names[i].into()));
                emb.push_property(
                    &a_ages[i]
                        .map(PropertyValue::Long)
                        .unwrap_or(PropertyValue::Null),
                );
                emb.push_property(
                    &b_ages[i]
                        .map(PropertyValue::Long)
                        .unwrap_or(PropertyValue::Null),
                );
                emb
            })
            .collect()
    }

    /// The batched filter must select exactly the rows the row-at-a-time
    /// evaluator keeps, for every predicate shape the compiler handles.
    #[test]
    fn compiled_filter_matches_row_evaluation() {
        let meta = meta();
        let rows = rows();
        let queries = [
            "MATCH (a)-[e]->(b) WHERE a.name = 'alice' RETURN *",
            "MATCH (a)-[e]->(b) WHERE a.age > 18 RETURN *",
            "MATCH (a)-[e]->(b) WHERE 18 <= a.age RETURN *",
            "MATCH (a)-[e]->(b) WHERE a.age = b.age RETURN *",
            "MATCH (a)-[e]->(b) WHERE a.age IS NULL RETURN *",
            "MATCH (a)-[e]->(b) WHERE b.age IS NOT NULL RETURN *",
            "MATCH (a)-[e]->(b) WHERE a.name = 'alice' OR a.age < 18 RETURN *",
            "MATCH (a)-[e]->(b) WHERE a.age > 10 AND b.age > 10 RETURN *",
            "MATCH (a)-[e]->(b) WHERE a = b RETURN *",
            "MATCH (a)-[e]->(b) WHERE a <> b RETURN *",
            "MATCH (a)-[e]->(b) WHERE a.missing = 1 RETURN *",
            "MATCH (a)-[e]->(b) WHERE a.missing IS NULL RETURN *",
            "MATCH (a)-[e]->(b) WHERE NOT a.name = 'bob' RETURN *",
            "MATCH (a)-[e]->(b) WHERE a.age <> b.age OR a.name = 'dave' RETURN *",
        ];
        for query in queries {
            let clauses = where_clauses(query);
            let expected: Vec<u32> = rows
                .iter()
                .enumerate()
                .filter(|(_, embedding)| {
                    let bindings = EmbeddingBindings {
                        embedding,
                        meta: &meta,
                    };
                    clauses.iter().all(|clause| eval_clause(clause, &bindings))
                })
                .map(|(index, _)| index as u32)
                .collect();
            let compiled = CompiledFilter::compile(&clauses, &meta);
            let mut batch = EmbeddingBatch::new(&rows, &meta);
            compiled.apply(&mut batch);
            assert_eq!(batch.selection(), &expected[..], "query: {query}");
        }
    }

    /// `compare_refs` is the reference-based twin of `compare_values` —
    /// verify them against each other across a value/operator matrix.
    #[test]
    fn compare_refs_agrees_with_compare_values() {
        let values = [
            PropertyValue::Null,
            PropertyValue::Long(1),
            PropertyValue::Long(2),
            PropertyValue::Double(1.5),
            PropertyValue::String("a".into()),
            PropertyValue::String("b".into()),
            PropertyValue::Boolean(true),
        ];
        let ops = [
            CmpOp::Eq,
            CmpOp::Neq,
            CmpOp::Lt,
            CmpOp::Lte,
            CmpOp::Gt,
            CmpOp::Gte,
        ];
        for left in &values {
            for right in &values {
                for op in ops {
                    assert_eq!(
                        compare_refs(left, op, right),
                        compare_values(Some(left.clone()), op, Some(right.clone())),
                        "{left:?} {op:?} {right:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn label_tests_and_contradictions_fold_to_empty() {
        let meta = meta();
        let rows = rows();
        // A label test is unknown on embeddings: the clause can never pass.
        let clauses = vec![CnfClause {
            atoms: vec![Atom::HasLabel {
                variable: "a".to_string(),
                labels: vec!["Person".to_string()],
                negated: false,
            }],
        }];
        let compiled = CompiledFilter::compile(&clauses, &meta);
        assert!(compiled.rejects_everything());
        let mut batch = EmbeddingBatch::new(&rows, &meta);
        compiled.apply(&mut batch);
        assert!(batch.is_empty());
    }

    #[test]
    fn filter_on_empty_and_fully_filtered_batches() {
        let meta = meta();
        let clauses = where_clauses("MATCH (a)-[e]->(b) WHERE a.age > 18 RETURN *");
        let compiled = CompiledFilter::compile(&clauses, &meta);

        let empty: Vec<Embedding> = Vec::new();
        let mut batch = EmbeddingBatch::new(&empty, &meta);
        compiled.apply(&mut batch);
        assert!(batch.is_empty());

        let rows = rows();
        let mut batch = EmbeddingBatch::new(&rows, &meta);
        batch.retain(|_| false); // a prior operator dropped everything
        compiled.apply(&mut batch);
        assert!(batch.is_empty());
    }

    #[test]
    fn id_hash_table_probes_duplicates_and_misses() {
        let keys = [7u64, 3, 7, 9, 3, 7];
        let table = IdHashTable::build(&keys);
        assert_eq!(table.len(), 6);
        let mut hits = Vec::new();
        table.probe(7, |row| hits.push(row));
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 2, 5]);
        hits.clear();
        table.probe(3, |row| hits.push(row));
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 4]);
        hits.clear();
        table.probe(1234, |row| hits.push(row));
        assert!(hits.is_empty());

        let empty = IdHashTable::build(&[]);
        assert!(empty.is_empty());
        empty.probe(0, |_| panic!("no entries"));
    }

    #[test]
    fn batched_probe_matches_reference_join() {
        use std::collections::HashMap;
        let build: Vec<u64> = (0..100).map(|i| i % 17).collect();
        let probe: Vec<u64> = (0..64).map(|i| i % 23).collect();
        let table = IdHashTable::build(&build);
        let selection: Vec<u32> = (0..probe.len() as u32).collect();
        let mut batched = Vec::new();
        hash_probe_batched(&table, &probe, &selection, &mut batched);

        let mut reference: HashMap<u64, Vec<u32>> = HashMap::new();
        for (index, &key) in build.iter().enumerate() {
            reference.entry(key).or_default().push(index as u32);
        }
        let mut expected = Vec::new();
        for (row, &key) in probe.iter().enumerate() {
            if let Some(matches) = reference.get(&key) {
                for &build_row in matches {
                    expected.push((row as u32, build_row));
                }
            }
        }
        batched.sort_unstable();
        expected.sort_unstable();
        assert_eq!(batched, expected);
    }

    #[test]
    fn neighbor_index_expands_selected_rows() {
        let triples = [(1u64, 10, 2), (1, 11, 3), (2, 12, 1), (4, 13, 5)];
        let index = NeighborIndex::build(&triples);
        let sources = [1u64, 2, 3, 4];
        let mut out = Vec::new();
        // Row 1 is deselected: its expansion must not appear.
        expand_batched(&index, &sources, &[0, 2, 3], &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![(0, 10, 2), (0, 11, 3), (3, 13, 5)]);
    }
}
