//! Dataflow lowering of multi-clause Cypher pipelines.
//!
//! [`execute_pipeline`] runs the full read-only clause surface — `MATCH`,
//! `OPTIONAL MATCH`, `WITH`, `UNWIND`, aggregation, `DISTINCT`,
//! `ORDER BY`/`SKIP`/`LIMIT` — clause by clause over a working table of
//! [`Row`]s, mirroring [`reference_pipeline`](crate::reference_pipeline)
//! operator for operator:
//!
//! * each `MATCH` stage is planned and executed by the classic embedding
//!   engine under its **own** morphism-uniqueness scope (openCypher's
//!   per-`MATCH` uniqueness), then hash-joined onto the working table on
//!   the canonical string key of the shared variables;
//! * `OPTIONAL MATCH` lowers onto
//!   [`join_left_outer_filtered`](gradoop_dataflow::Dataset::join_left_outer_filtered):
//!   the stage `WHERE` participates in the match decision, and a left row
//!   whose candidates all fail is NULL-padded. Pad counts surface as a
//!   synthetic `optional_match(pad)` stage report so PROFILE and the query
//!   log can show them;
//! * `WITH`/`RETURN` apply projection → aggregation
//!   ([`group_reduce`](gradoop_dataflow::Dataset::group_reduce) keyed on
//!   the canonical grouping row) → `DISTINCT` → `ORDER BY` →
//!   `SKIP`/`LIMIT` → trailing `WHERE`. A `LIMIT`-bearing sort runs as
//!   per-partition top-k ([`ordered_top_k`](gradoop_dataflow::Dataset::ordered_top_k));
//!   without a limit the full sort is used, and `SKIP`/`LIMIT` without
//!   `ORDER BY` first sorts by the canonical full-row order so the cut is
//!   deterministic;
//! * `UNWIND` is a flat-map: `NULL` produces no rows, a list one row per
//!   element, a scalar a single row.
//!
//! The module also hosts the open-range probe ([`probe_open_ranges`] /
//! [`check_open_range_caps`]): unbounded variable-length patterns (`*`,
//! `*2..`) carry a parser-substituted hop cap, and instead of silently
//! truncating results at the cap the executor expands one hop further and
//! raises a classified [`CypherError::Execution`] when anything is found
//! beyond it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use gradoop_cypher::ast::{
    MatchStage, Pipeline, Projection, ProjectionExpr, ProjectionItem, Query, ReturnClause,
    ReturnItem, Stage, UnwindSource, UnwindStage,
};
use gradoop_cypher::predicates::eval::eval_expression;
use gradoop_cypher::{Expression, Literal, QueryGraph};
use gradoop_dataflow::{Dataset, ExecutionFailure, JoinStrategy, StageReport};
use gradoop_epgm::GraphStatistics;

use crate::embedding::{Entry, EntryType};
use crate::engine::CypherError;
use crate::executor::execute_plan;
use crate::matching::MatchingConfig;
use crate::operators::EmbeddingSet;
use crate::planner::{plan_query, Estimator, PlanError, QueryPlan};
use crate::result::QueryResult;
use crate::source::GraphSource;
use crate::values::{
    agg_arg_value, canonical_row, canonical_string, cmp_rows, compare_rows_by_keys, fold_aggregate,
    property_to_value, Row, RowScope, Snapshot, Value,
};

/// The tabular result of a pipeline execution: named columns over value
/// rows. `ordered` is set when the final `RETURN` carried an `ORDER BY`,
/// in which case row order is part of the result.
#[derive(Debug, Clone, PartialEq)]
pub struct TableResult {
    /// Output column names, in projection order.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
    /// Whether row order is significant.
    pub ordered: bool,
}

// --- open-range probe --------------------------------------------------------

/// Returns a probe copy of `query` whose open-ended variable-length ranges
/// (`*`, `*2..`) expand one hop beyond their substituted cap, plus the
/// `(edge variable, user-visible cap)` pairs [`check_open_range_caps`]
/// inspects after execution. Plans stay unchanged — `EXPLAIN` shows the
/// cap the user would hit, and the executor reads ranges from the query
/// graph it is handed at runtime.
pub fn probe_open_ranges(query: &QueryGraph) -> (QueryGraph, Vec<(String, usize)>) {
    let mut probe = query.clone();
    let mut caps = Vec::new();
    for edge in &mut probe.edges {
        if edge.open_range {
            if let Some((lower, upper)) = edge.range {
                edge.range = Some((lower, upper.saturating_add(1)));
                caps.push((edge.variable.clone(), upper));
            }
        }
    }
    (probe, caps)
}

/// Scans an executed embedding set for paths that crossed an open range's
/// substituted hop cap. Finding one means the cap would have silently
/// truncated the result set, so a classified execution error is returned
/// instead of a partial answer.
pub fn check_open_range_caps(
    set: &EmbeddingSet,
    caps: &[(String, usize)],
) -> Result<(), CypherError> {
    for (variable, cap) in caps {
        let Some(column) = set.meta.column(variable) else {
            continue;
        };
        for embedding in set.data.partitions().iter().flatten() {
            let hops = match embedding.entry(column) {
                Entry::Path(via) => via.len().div_ceil(2),
                Entry::Id(_) => 1,
            };
            if hops > *cap {
                return Err(CypherError::Execution(ExecutionFailure {
                    site: format!("open-range path expansion `{variable}`"),
                    attempts: 0,
                    message: format!(
                        "unbounded variable-length path reaches beyond the default cap of \
                         {cap} hops; the result would be silently truncated — give the \
                         pattern an explicit upper bound (e.g. `*1..{wider}`)",
                        wider = cap.saturating_add(1),
                    ),
                }));
            }
        }
    }
    Ok(())
}

// --- pipeline execution ------------------------------------------------------

/// Executes a multi-clause pipeline against `source`, returning the final
/// tabular result. Semantics match
/// [`reference_pipeline`](crate::reference_pipeline) exactly — the
/// conformance fuzzer holds the two against each other.
pub fn execute_pipeline<S: GraphSource + ?Sized>(
    pipeline: &Pipeline,
    params: &HashMap<String, Literal>,
    statistics: &GraphStatistics,
    source: &S,
    matching: &MatchingConfig,
) -> Result<TableResult, CypherError> {
    let snapshot = Snapshot::of(source);
    let mut columns: Vec<String> = Vec::new();
    // One empty seed row: the first MATCH cross-joins against it on the
    // empty shared-variable key, so no clause needs a special first case.
    let mut data: Dataset<Row> = source.env().from_collection(vec![Row::new()]);
    for stage in &pipeline.stages {
        match stage {
            Stage::Match(stage) => apply_match(
                &snapshot,
                &mut columns,
                &mut data,
                stage,
                params,
                statistics,
                source,
                matching,
                false,
            )?,
            Stage::OptionalMatch(stage) => apply_match(
                &snapshot,
                &mut columns,
                &mut data,
                stage,
                params,
                statistics,
                source,
                matching,
                true,
            )?,
            Stage::With(projection) => {
                apply_projection(&snapshot, &mut columns, &mut data, projection, params)?;
            }
            Stage::Unwind(unwind) => apply_unwind(&snapshot, &mut columns, &mut data, unwind)?,
        }
    }
    apply_projection(&snapshot, &mut columns, &mut data, &pipeline.ret, params)?;
    Ok(TableResult {
        columns,
        // `collect` concatenates partitions in order; ordered datasets hold
        // their merged run in partition 0, so sorted order survives.
        rows: data.collect(),
        ordered: !pipeline.ret.order_by.is_empty(),
    })
}

/// Plans one `MATCH` stage in isolation (patterns only — the stage `WHERE`
/// is evaluated row-wise over the combined table so it can see earlier
/// columns).
pub(crate) fn plan_match_stage(
    stage: &MatchStage,
    params: &HashMap<String, Literal>,
    statistics: &GraphStatistics,
) -> Result<(QueryGraph, QueryPlan), CypherError> {
    let query = Query {
        patterns: stage.patterns.clone(),
        where_clause: None,
        return_clause: ReturnClause {
            items: vec![ReturnItem::All],
            distinct: false,
        },
    };
    let query_graph = QueryGraph::from_query_with_params(&query, params)?;
    let plan = plan_query(&query_graph, &Estimator::new(statistics))?;
    Ok((query_graph, plan))
}

/// Executes one `MATCH` stage and converts its embeddings to rows. Columns
/// are the named variables, vertices first then edges, in query-graph
/// order — the same layout as the reference interpreter's stage table.
fn stage_rows<S: GraphSource + ?Sized>(
    stage: &MatchStage,
    params: &HashMap<String, Literal>,
    statistics: &GraphStatistics,
    source: &S,
    matching: &MatchingConfig,
) -> Result<(Vec<String>, Dataset<Row>), CypherError> {
    let (query_graph, plan) = plan_match_stage(stage, params, statistics)?;
    let (probe, caps) = probe_open_ranges(&query_graph);
    let set = execute_plan(&plan.root, &probe, source, matching);
    if let Some(failure) = source.env().take_execution_failure() {
        return Err(CypherError::Execution(failure));
    }
    check_open_range_caps(&set, &caps)?;
    let mut names: Vec<String> = Vec::new();
    let mut vertex_count = 0usize;
    for vertex in &query_graph.vertices {
        if vertex.named {
            names.push(vertex.variable.clone());
            vertex_count += 1;
        }
    }
    for edge in &query_graph.edges {
        if edge.named {
            names.push(edge.variable.clone());
        }
    }
    let mut sources: Vec<usize> = Vec::with_capacity(names.len());
    for name in &names {
        let Some(column) = set.meta.column(name) else {
            return Err(CypherError::Plan(PlanError(format!(
                "pattern variable `{name}` was not materialized by the stage plan"
            ))));
        };
        sources.push(column);
    }
    let rows = set.data.map(move |embedding| {
        sources
            .iter()
            .enumerate()
            .map(|(i, &column)| match embedding.entry(column) {
                Entry::Id(id) if i < vertex_count => Value::Vertex(id),
                Entry::Id(id) => Value::Edge(id),
                Entry::Path(via) => Value::Path(via),
            })
            .collect::<Row>()
    });
    Ok((names, rows))
}

/// Substitutes `$parameters`, classifying an unbound name as a plan error.
fn bind_params(
    expr: &Expression,
    params: &HashMap<String, Literal>,
) -> Result<Expression, CypherError> {
    let mut bound = expr.clone();
    bound
        .substitute_parameters(params)
        .map_err(|name| CypherError::Plan(PlanError(format!("parameter ${name} is not bound"))))?;
    Ok(bound)
}

#[allow(clippy::too_many_arguments)]
fn apply_match<S: GraphSource + ?Sized>(
    snapshot: &Snapshot,
    columns: &mut Vec<String>,
    data: &mut Dataset<Row>,
    stage: &MatchStage,
    params: &HashMap<String, Literal>,
    statistics: &GraphStatistics,
    source: &S,
    matching: &MatchingConfig,
    optional: bool,
) -> Result<(), CypherError> {
    let (match_columns, match_rows) = stage_rows(stage, params, statistics, source, matching)?;
    let shared: Vec<(usize, usize)> = match_columns
        .iter()
        .enumerate()
        .filter_map(|(mi, name)| columns.iter().position(|c| c == name).map(|li| (li, mi)))
        .collect();
    let new_columns: Vec<usize> = (0..match_columns.len())
        .filter(|mi| !shared.iter().any(|&(_, smi)| smi == *mi))
        .collect();
    let mut out_columns = columns.clone();
    out_columns.extend(new_columns.iter().map(|&mi| match_columns[mi].clone()));
    let predicate = match &stage.where_clause {
        Some(expr) => Some(bind_params(expr, params)?),
        None => None,
    };

    // NULL never joins: `canonical_string(Null)` can only meet an
    // element-valued right side, so a NULL-bound shared variable finds no
    // partner — the row drops (inner) or re-pads (optional).
    let left_shared = shared.clone();
    let left_key = move |row: &Row| -> String {
        left_shared
            .iter()
            .map(|&(li, _)| canonical_string(&row[li]))
            .collect::<Vec<_>>()
            .join("|")
    };
    let right_shared = shared.clone();
    let right_key = move |row: &Row| -> String {
        right_shared
            .iter()
            .map(|&(_, mi)| canonical_string(&row[mi]))
            .collect::<Vec<_>>()
            .join("|")
    };
    let combine = |left: &Row, right: &Row| -> Row {
        let mut combined = left.clone();
        combined.extend(new_columns.iter().map(|&mi| right[mi].clone()));
        combined
    };
    let accepts = |combined: &Row| -> bool {
        match &predicate {
            Some(expr) => {
                let scope = RowScope {
                    columns: &out_columns,
                    row: combined,
                    snapshot,
                };
                eval_expression(expr, &scope) == Some(true)
            }
            None => true,
        }
    };

    let joined = if optional {
        let padded = AtomicU64::new(0);
        let result = data.join_left_outer_filtered(
            &match_rows,
            left_key,
            right_key,
            |left, right| accepts(&combine(left, right)),
            |left, right| match right {
                Some(right) => Some(combine(left, right)),
                None => {
                    padded.fetch_add(1, AtomicOrdering::Relaxed);
                    let mut row = left.clone();
                    row.extend(new_columns.iter().map(|_| Value::Null));
                    Some(row)
                }
            },
        );
        // Surface the padding count as a stage report so PROFILE and the
        // query log show how many rows the outer join NULL-padded.
        if let Some(sink) = source.env().trace_sink() {
            sink.on_stage(&StageReport {
                name: "optional_match(pad)".to_string(),
                records_out: padded.load(AtomicOrdering::Relaxed),
                ..StageReport::default()
            });
        }
        result
    } else {
        data.join(
            &match_rows,
            left_key,
            right_key,
            JoinStrategy::RepartitionHash,
            |left, right| {
                let combined = combine(left, right);
                accepts(&combined).then_some(combined)
            },
        )
    };
    *columns = out_columns;
    *data = joined;
    Ok(())
}

fn apply_unwind(
    snapshot: &Snapshot,
    columns: &mut Vec<String>,
    data: &mut Dataset<Row>,
    unwind: &UnwindStage,
) -> Result<(), CypherError> {
    if columns.contains(&unwind.alias) {
        return Err(CypherError::Plan(PlanError(format!(
            "UNWIND alias `{}` is already bound",
            unwind.alias
        ))));
    }
    let in_columns = &*columns;
    let unwound = data.flat_map(|row: &Row, out: &mut Vec<Row>| {
        let scope = RowScope {
            columns: in_columns,
            row,
            snapshot,
        };
        let source = match &unwind.source {
            UnwindSource::List(items) => Value::List(
                items
                    .iter()
                    .map(|l| property_to_value(&l.to_property_value()))
                    .collect(),
            ),
            UnwindSource::Variable(variable) => scope.get(variable).cloned().unwrap_or(Value::Null),
            UnwindSource::Property { variable, key } => scope.property_value(variable, key),
        };
        match source {
            // UNWIND NULL produces no rows; a non-list scalar one row.
            Value::Null => {}
            Value::List(items) => {
                for item in items {
                    let mut extended = row.clone();
                    extended.push(item);
                    out.push(extended);
                }
            }
            scalar => {
                let mut extended = row.clone();
                extended.push(scalar);
                out.push(extended);
            }
        }
    });
    columns.push(unwind.alias.clone());
    *data = unwound;
    Ok(())
}

fn eval_projection_item(item: &ProjectionExpr, scope: &RowScope<'_>) -> Value {
    match item {
        ProjectionExpr::Variable(variable) => scope.get(variable).cloned().unwrap_or(Value::Null),
        ProjectionExpr::Property { variable, key } => scope.property_value(variable, key),
        ProjectionExpr::Aggregate(_) => unreachable!("aggregates are folded per group"),
    }
}

fn apply_projection(
    snapshot: &Snapshot,
    columns: &mut Vec<String>,
    data: &mut Dataset<Row>,
    projection: &Projection,
    params: &HashMap<String, Literal>,
) -> Result<(), CypherError> {
    let items: Vec<ProjectionItem> = if projection.star {
        columns
            .iter()
            .map(|c| ProjectionItem {
                expr: ProjectionExpr::Variable(c.clone()),
                alias: None,
            })
            .collect()
    } else {
        projection.items.clone()
    };
    let out_columns: Vec<String> = items.iter().map(|i| i.name()).collect();
    let has_aggregate = items
        .iter()
        .any(|i| matches!(i.expr, ProjectionExpr::Aggregate(_)));
    let trailing_where = match &projection.where_clause {
        Some(expr) => Some(bind_params(expr, params)?),
        None => None,
    };
    let in_columns = columns.clone();

    let mut result: Dataset<Row> = if has_aggregate {
        // Group by the non-aggregate items on the canonical key row; each
        // group folds its members in canonical row order (so `collect`
        // agrees with the reference interpreter).
        let key_values = |row: &Row| -> Vec<Value> {
            let scope = RowScope {
                columns: &in_columns,
                row,
                snapshot,
            };
            items
                .iter()
                .filter(|i| !matches!(i.expr, ProjectionExpr::Aggregate(_)))
                .map(|i| eval_projection_item(&i.expr, &scope))
                .collect()
        };
        let grouped = data.group_reduce(
            |row| canonical_row(&key_values(row)),
            |_key, members| {
                let mut members: Vec<Row> = members.to_vec();
                members.sort_by(|a, b| cmp_rows(a, b));
                let mut key_iter = key_values(&members[0]).into_iter();
                items
                    .iter()
                    .map(|item| match &item.expr {
                        ProjectionExpr::Aggregate(call) => {
                            let args: Vec<Value> = members
                                .iter()
                                .map(|member| {
                                    let scope = RowScope {
                                        columns: &in_columns,
                                        row: member,
                                        snapshot,
                                    };
                                    agg_arg_value(&call.arg, &scope)
                                })
                                .collect();
                            fold_aggregate(call.func, call.distinct, &args)
                        }
                        _ => key_iter.next().expect("grouping key"),
                    })
                    .collect::<Row>()
            },
        );
        let all_aggregates = items
            .iter()
            .all(|i| matches!(i.expr, ProjectionExpr::Aggregate(_)));
        if all_aggregates && grouped.len_untracked() == 0 {
            // A global aggregate over no rows still emits one row.
            let empty_folds: Row = items
                .iter()
                .map(|item| match &item.expr {
                    ProjectionExpr::Aggregate(call) => {
                        fold_aggregate(call.func, call.distinct, &[])
                    }
                    _ => unreachable!("all items are aggregates"),
                })
                .collect();
            data.env().from_collection(vec![empty_folds])
        } else {
            grouped
        }
    } else {
        data.map(|row| {
            let scope = RowScope {
                columns: &in_columns,
                row,
                snapshot,
            };
            items
                .iter()
                .map(|item| eval_projection_item(&item.expr, &scope))
                .collect::<Row>()
        })
    };

    if projection.distinct {
        result = result.group_reduce(
            |row| canonical_row(row),
            |_key, members| {
                members
                    .iter()
                    .min_by(|a, b| cmp_rows(a, b))
                    .expect("group is non-empty")
                    .clone()
            },
        );
    }
    if !projection.order_by.is_empty() || projection.skip.is_some() || projection.limit.is_some() {
        // With no explicit sort keys `compare_rows_by_keys` falls through
        // to the canonical full-row order, making a bare SKIP/LIMIT cut
        // deterministic. A LIMIT runs as per-partition top-k + merge; only
        // an unbounded sort pays for the full order.
        let cmp = |a: &Row, b: &Row| {
            compare_rows_by_keys(&projection.order_by, &out_columns, snapshot, a, b)
        };
        let skip = projection.skip.unwrap_or(0);
        result = match projection.limit {
            Some(limit) => result.ordered_top_k(cmp, skip, limit),
            None => result.ordered_full(cmp, skip),
        };
    }
    if let Some(expr) = &trailing_where {
        result = result.filter(|row| {
            let scope = RowScope {
                columns: &out_columns,
                row,
                snapshot,
            };
            eval_expression(expr, &scope) == Some(true)
        });
    }
    *columns = out_columns;
    *data = result;
    Ok(())
}

// --- classic-result conversion -----------------------------------------------

/// Converts a classic [`QueryResult`] (single merged `MATCH` + `RETURN`)
/// into the tabular pipeline shape, so
/// [`CypherEngine::run`](crate::CypherEngine::run) returns one result type
/// for both paths. Column naming matches the reference interpreter:
/// variables keep their name, properties use the alias or `var.key`, and a
/// bare `count(*)` yields the single-row count table.
pub(crate) fn table_from_query_result(result: &QueryResult) -> Result<TableResult, CypherError> {
    if result
        .query
        .return_items
        .iter()
        .any(|item| matches!(item, ReturnItem::CountStar))
    {
        return Ok(TableResult {
            columns: vec!["count(*)".to_string()],
            rows: vec![vec![Value::Int(result.embeddings.len_untracked() as i64)]],
            ordered: false,
        });
    }
    let mut items: Vec<ReturnItem> = Vec::new();
    for item in &result.query.return_items {
        match item {
            ReturnItem::All => {
                for vertex in &result.query.vertices {
                    if vertex.named {
                        items.push(ReturnItem::Variable(vertex.variable.clone()));
                    }
                }
                for edge in &result.query.edges {
                    if edge.named {
                        items.push(ReturnItem::Variable(edge.variable.clone()));
                    }
                }
            }
            other => items.push(other.clone()),
        }
    }
    enum Source {
        Entry(usize, EntryType),
        Property(usize),
    }
    let unbound = |what: String| {
        CypherError::Execution(ExecutionFailure {
            site: "result projection".to_string(),
            attempts: 0,
            message: what,
        })
    };
    let mut columns: Vec<String> = Vec::new();
    let mut sources: Vec<Source> = Vec::new();
    for item in &items {
        match item {
            ReturnItem::Variable(variable) => {
                let column = result
                    .meta
                    .column(variable)
                    .ok_or_else(|| unbound(format!("returned variable `{variable}` unbound")))?;
                let entry_type = result.meta.entry_type(variable).ok_or_else(|| {
                    unbound(format!("returned variable `{variable}` has no entry type"))
                })?;
                columns.push(variable.clone());
                sources.push(Source::Entry(column, entry_type));
            }
            ReturnItem::Property {
                variable,
                key,
                alias,
            } => {
                let index = result.meta.property_index(variable, key).ok_or_else(|| {
                    unbound(format!("returned property `{variable}.{key}` unbound"))
                })?;
                columns.push(alias.clone().unwrap_or_else(|| format!("{variable}.{key}")));
                sources.push(Source::Property(index));
            }
            ReturnItem::All | ReturnItem::CountStar => unreachable!("expanded above"),
        }
    }
    let rows = result
        .embeddings
        .partitions()
        .iter()
        .flatten()
        .map(|embedding| {
            sources
                .iter()
                .map(|source| match source {
                    Source::Entry(column, entry_type) => match embedding.entry(*column) {
                        Entry::Path(via) => Value::Path(via),
                        Entry::Id(id) => match entry_type {
                            EntryType::Vertex => Value::Vertex(id),
                            EntryType::Edge => Value::Edge(id),
                            EntryType::Path => Value::Path(vec![id]),
                        },
                    },
                    Source::Property(index) => property_to_value(&embedding.property(*index)),
                })
                .collect::<Row>()
        })
        .collect();
    Ok(TableResult {
        columns,
        rows,
        ordered: false,
    })
}
