//! The parse/plan cache: memoizes parsed ASTs by exact query text and
//! query plans by *normalized query shape* (see
//! [`normalize_query_shape`](crate::querylog::normalize_query_shape)), so a
//! server running the same parameterized query for many users plans it
//! once and re-binds `$param` values per execution.
//!
//! ## Why keying on the shape is sound
//!
//! A cached [`QueryPlan`] only stores query-graph *indices* (which query
//! vertex to scan, which edges to join) — literal values live in the
//! [`QueryGraph`] that every execution rebuilds from its own AST and its
//! own parameter bindings. The greedy planner's estimator is
//! value-independent (selectivities derive from property keys, comparison
//! operators and labels, never from literal values), so two queries with
//! the same shape produce plans with the same structure. The cache map is
//! keyed on the **full shape string** (plus [`PlanMode`]), not its 64-bit
//! fingerprint, so a fingerprint hash collision can never cross-wire two
//! different shapes. As a belt-and-braces check, each entry also records a
//! structural signature of the query graph it was planned for and a
//! lookup whose graph disagrees is treated as a miss.
//!
//! A cache is only valid for one set of graph statistics: plans are
//! cost-based, so engines over different data graphs must not share one
//! (the server owns one cache per snapshot).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gradoop_cypher::ast::Query;
use gradoop_cypher::{parse, ParseError, QueryGraph};
use gradoop_dataflow::MetricsRegistry;

use crate::planner::{PlanMode, QueryPlan};

/// Default number of plans retained before least-recently-used eviction.
pub const DEFAULT_PLAN_CAPACITY: usize = 256;

/// Counters of one cache's lifetime activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to plan from scratch.
    pub misses: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
    /// Plans currently retained.
    pub entries: u64,
}

impl PlanCacheStats {
    /// Hits as a fraction of all lookups (0.0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// Structural signature of a [`QueryGraph`]: everything a cached plan's
/// indices refer to. Two graphs with equal signatures can execute the same
/// plan tree (their predicates may differ — those are looked up by index
/// from the fresh graph at execution time).
#[derive(Debug, Clone, PartialEq, Eq)]
struct GraphSignature {
    vertices: usize,
    edges: Vec<EdgeSignature>,
    cross_clauses: usize,
    return_items: usize,
    distinct: bool,
}

/// The structural facts of one query edge a cached plan depends on.
/// Variable-length range bounds are literal positions in the query text, so
/// they never affect the *shape* — they must be validated here instead:
/// `*1..3` and `*1..10` share a fingerprint but cannot share a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
struct EdgeSignature {
    source: usize,
    target: usize,
    undirected: bool,
    range: Option<(usize, usize)>,
    open_range: bool,
}

impl GraphSignature {
    fn of(query: &QueryGraph) -> GraphSignature {
        GraphSignature {
            vertices: query.vertices.len(),
            edges: query
                .edges
                .iter()
                .map(|e| EdgeSignature {
                    source: e.source,
                    target: e.target,
                    undirected: e.undirected,
                    range: e.range,
                    open_range: e.open_range,
                })
                .collect(),
            cross_clauses: query.cross_clauses.len(),
            return_items: query.return_items.len(),
            distinct: query.distinct,
        }
    }
}

struct PlanEntry {
    plan: Arc<QueryPlan>,
    signature: GraphSignature,
    last_used: u64,
}

struct AstEntry {
    ast: Arc<Query>,
    last_used: u64,
}

#[derive(Default)]
struct CacheInner {
    /// Plans keyed on `(normalized shape, plan mode)`.
    plans: HashMap<(String, PlanModeKey), PlanEntry>,
    /// Parsed ASTs keyed on exact query text (classic single-`MATCH` path).
    asts: HashMap<String, AstEntry>,
    tick: u64,
}

/// `PlanMode` is not `Hash`; its discriminant is.
type PlanModeKey = u8;

fn mode_key(mode: PlanMode) -> PlanModeKey {
    match mode {
        PlanMode::CostBased => 0,
        PlanMode::ForceBinary => 1,
        PlanMode::ForceWco => 2,
    }
}

/// A bounded, thread-safe parse/plan cache. Cheap to share: clone the
/// `Arc` into every engine that serves the same graph snapshot.
pub struct PlanCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(DEFAULT_PLAN_CAPACITY)
    }
}

impl PlanCache {
    /// Creates a cache retaining at most `capacity` plans (and as many
    /// parsed ASTs), evicting least-recently-used entries beyond that.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(CacheInner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Parses `query_text`, answering repeated texts from the AST cache.
    pub fn parse(&self, query_text: &str) -> Result<Arc<Query>, ParseError> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.asts.get_mut(query_text) {
            entry.last_used = tick;
            return Ok(entry.ast.clone());
        }
        drop(inner);
        // Parse outside the lock: parse errors are per-text and cheap to
        // recompute, so failed texts are deliberately not cached.
        let ast = Arc::new(parse(query_text)?);
        let mut inner = self.inner.lock().unwrap();
        let tick = inner.tick;
        if inner.asts.len() >= self.capacity {
            evict_lru(&mut inner.asts, |e| e.last_used);
        }
        inner.asts.insert(
            query_text.to_string(),
            AstEntry {
                ast: ast.clone(),
                last_used: tick,
            },
        );
        Ok(ast)
    }

    /// Looks up the plan cached for `(shape, mode)`, validating it against
    /// the structure of the freshly built `query` graph. Counts a hit or a
    /// miss; on a miss the caller plans and [`insert`](PlanCache::insert)s.
    pub fn lookup(
        &self,
        shape: &str,
        mode: PlanMode,
        query: &QueryGraph,
    ) -> Option<Arc<QueryPlan>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        let found = inner
            .plans
            .get_mut(&(shape.to_string(), mode_key(mode)))
            .and_then(|entry| {
                if entry.signature == GraphSignature::of(query) {
                    entry.last_used = tick;
                    Some(entry.plan.clone())
                } else {
                    None
                }
            });
        drop(inner);
        match &found {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                MetricsRegistry::global().counter("plan_cache.hits").add(1);
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                MetricsRegistry::global()
                    .counter("plan_cache.misses")
                    .add(1);
            }
        }
        found
    }

    /// Stores `plan` for `(shape, mode)`, remembering the structure of the
    /// `query` graph it was planned for.
    pub fn insert(&self, shape: String, mode: PlanMode, query: &QueryGraph, plan: Arc<QueryPlan>) {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.plans.len() >= self.capacity
            && !inner.plans.contains_key(&(shape.clone(), mode_key(mode)))
        {
            evict_lru(&mut inner.plans, |e| e.last_used);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            MetricsRegistry::global()
                .counter("plan_cache.evictions")
                .add(1);
        }
        inner.plans.insert(
            (shape, mode_key(mode)),
            PlanEntry {
                plan,
                signature: GraphSignature::of(query),
                last_used: tick,
            },
        );
    }

    /// Lifetime activity counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.inner.lock().unwrap().plans.len() as u64,
        }
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Removes the least-recently-used entry of `map` (no-op when empty).
fn evict_lru<K: Clone + std::hash::Hash + Eq, V>(
    map: &mut HashMap<K, V>,
    used: impl Fn(&V) -> u64,
) {
    if let Some(key) = map
        .iter()
        .min_by_key(|(_, v)| used(v))
        .map(|(k, _)| k.clone())
    {
        map.remove(&key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{plan_query_with_mode, Estimator};
    use gradoop_epgm::GraphStatistics;

    fn plan_for(text: &str) -> (QueryGraph, Arc<QueryPlan>) {
        let ast = parse(text).expect("parse");
        let query = QueryGraph::from_query(&ast).expect("query graph");
        let statistics = GraphStatistics::default();
        let plan = plan_query_with_mode(&query, &Estimator::new(&statistics), PlanMode::CostBased)
            .expect("plan");
        (query, Arc::new(plan))
    }

    #[test]
    fn caches_by_shape_and_counts_hits() {
        let cache = PlanCache::new(8);
        let (query, plan) = plan_for("MATCH (a {x: 1}) RETURN a");
        assert!(cache
            .lookup("MATCH (a {x: ?}) RETURN a", PlanMode::CostBased, &query)
            .is_none());
        cache.insert(
            "MATCH (a {x: ?}) RETURN a".into(),
            PlanMode::CostBased,
            &query,
            plan.clone(),
        );
        // A different parameterization of the same shape hits.
        let (query2, _) = plan_for("MATCH (a {x: 99}) RETURN a");
        let cached = cache
            .lookup("MATCH (a {x: ?}) RETURN a", PlanMode::CostBased, &query2)
            .expect("hit");
        assert_eq!(cached.root, plan.root);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn plan_modes_do_not_share_entries() {
        let cache = PlanCache::new(8);
        let (query, plan) = plan_for("MATCH (a) RETURN a");
        cache.insert(
            "MATCH (a) RETURN a".into(),
            PlanMode::ForceWco,
            &query,
            plan,
        );
        assert!(cache
            .lookup("MATCH (a) RETURN a", PlanMode::CostBased, &query)
            .is_none());
        assert!(cache
            .lookup("MATCH (a) RETURN a", PlanMode::ForceWco, &query)
            .is_some());
    }

    #[test]
    fn signature_mismatch_is_a_miss() {
        let cache = PlanCache::new(8);
        let (query, plan) = plan_for("MATCH (a)-->(b) RETURN a");
        cache.insert("shape".into(), PlanMode::CostBased, &query, plan);
        // Same key but a structurally different graph: the guard refuses.
        let (other, _) = plan_for("MATCH (a)-->(b)-->(c) RETURN a");
        assert!(cache.lookup("shape", PlanMode::CostBased, &other).is_none());
    }

    #[test]
    fn evicts_least_recently_used_plan() {
        let cache = PlanCache::new(2);
        let (query, plan) = plan_for("MATCH (a) RETURN a");
        cache.insert("s1".into(), PlanMode::CostBased, &query, plan.clone());
        cache.insert("s2".into(), PlanMode::CostBased, &query, plan.clone());
        // Touch s1 so s2 becomes the LRU victim.
        assert!(cache.lookup("s1", PlanMode::CostBased, &query).is_some());
        cache.insert("s3".into(), PlanMode::CostBased, &query, plan);
        assert!(cache.lookup("s1", PlanMode::CostBased, &query).is_some());
        assert!(cache.lookup("s2", PlanMode::CostBased, &query).is_none());
        assert!(cache.lookup("s3", PlanMode::CostBased, &query).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn ast_cache_returns_shared_parses() {
        let cache = PlanCache::new(4);
        let first = cache.parse("MATCH (a) RETURN a").expect("parse");
        let second = cache.parse("MATCH (a) RETURN a").expect("parse");
        assert!(Arc::ptr_eq(&first, &second));
        assert!(cache.parse("MATCH (a) RETURN").is_err());
    }
}
