//! Cardinality and selectivity estimation.
//!
//! Uses the statistics enumerated in the paper — vertex/edge counts, label
//! distributions, distinct source/target counts per edge label — plus
//! distinct property-value counts, with the basic estimation formulas of
//! relational query planning (Garcia-Molina/Ullman/Widom): equality on a
//! key with `d` distinct values selects `1/d`, range predicates select 1/3,
//! and a join on a variable with `d_l`/`d_r` distinct values on either side
//! produces `|L|·|R| / max(d_l, d_r)` rows.

use gradoop_cypher::{Atom, CmpOp, CnfClause, CnfPredicate, Operand, QueryGraph};
use gradoop_epgm::{GraphStatistics, Label};

/// Fallback selectivity of an equality when no distinct count is known.
const DEFAULT_EQ_SELECTIVITY: f64 = 0.1;
/// Selectivity of range comparisons (`<`, `<=`, `>`, `>=`).
const RANGE_SELECTIVITY: f64 = 1.0 / 3.0;
/// Selectivity of `IS NULL` (properties are usually set).
const IS_NULL_SELECTIVITY: f64 = 0.1;

/// Caps a per-label sum at a known total. Statistics from synthetic or
/// partial sources may leave the total at zero; in that case the sum is the
/// best available estimate and no clamp applies.
fn clamp_to(sum: f64, total: f64) -> f64 {
    if total > 0.0 {
        sum.min(total)
    } else {
        sum
    }
}

/// Cardinality estimator bound to a data graph's statistics.
#[derive(Debug, Clone, Copy)]
pub struct Estimator<'a> {
    stats: &'a GraphStatistics,
}

impl<'a> Estimator<'a> {
    /// Creates an estimator over pre-computed statistics.
    pub fn new(stats: &'a GraphStatistics) -> Self {
        Estimator { stats }
    }

    /// The underlying statistics.
    pub fn stats(&self) -> &GraphStatistics {
        self.stats
    }

    /// Estimated rows produced by scanning query vertex `index`.
    pub fn vertex_cardinality(&self, query: &QueryGraph, index: usize) -> f64 {
        let vertex = &query.vertices[index];
        let base = self.vertices_with_labels(&vertex.labels);
        base * self.predicate_selectivity(&vertex.predicates, &vertex.labels, true)
    }

    /// Estimated rows produced by scanning query edge `index` (both
    /// orientations for undirected edges).
    pub fn edge_cardinality(&self, query: &QueryGraph, index: usize) -> f64 {
        let edge = &query.edges[index];
        let base = self.edges_with_labels(&edge.labels);
        let directions = if edge.undirected { 2.0 } else { 1.0 };
        directions * base * self.predicate_selectivity(&edge.predicates, &edge.labels, false)
    }

    /// Estimated distinct source vertices of query edge `index`. For an
    /// undirected edge both orientations match, so a vertex acts as a
    /// "source" when it is either endpoint of an underlying edge; the
    /// estimate combines both orientations' distinct counts, bounded by the
    /// total vertex count.
    pub fn edge_distinct_sources(&self, query: &QueryGraph, index: usize) -> f64 {
        let edge = &query.edges[index];
        let forward = self.distinct_sources_for(&edge.labels);
        if edge.undirected {
            let backward = self.distinct_targets_for(&edge.labels);
            clamp_to(forward + backward, self.stats.vertex_count as f64).max(1.0)
        } else {
            forward.max(1.0)
        }
    }

    /// Estimated distinct target vertices of query edge `index` (mirror of
    /// [`Self::edge_distinct_sources`] for undirected edges).
    pub fn edge_distinct_targets(&self, query: &QueryGraph, index: usize) -> f64 {
        let edge = &query.edges[index];
        let forward = self.distinct_targets_for(&edge.labels);
        if edge.undirected {
            let backward = self.distinct_sources_for(&edge.labels);
            clamp_to(forward + backward, self.stats.vertex_count as f64).max(1.0)
        } else {
            forward.max(1.0)
        }
    }

    /// Distinct sources over a label alternation, clamped to the global
    /// distinct-source count (labels can share source vertices, so the
    /// per-label sum over-counts).
    fn distinct_sources_for(&self, labels: &[Label]) -> f64 {
        if labels.is_empty() {
            self.stats.distinct_sources(None) as f64
        } else {
            let sum: f64 = labels
                .iter()
                .map(|l| self.stats.distinct_sources(Some(l)) as f64)
                .sum();
            clamp_to(sum, self.stats.distinct_sources(None) as f64)
        }
    }

    /// Distinct targets over a label alternation, clamped to the global
    /// distinct-target count.
    fn distinct_targets_for(&self, labels: &[Label]) -> f64 {
        if labels.is_empty() {
            self.stats.distinct_targets(None) as f64
        } else {
            let sum: f64 = labels
                .iter()
                .map(|l| self.stats.distinct_targets(Some(l)) as f64)
                .sum();
            clamp_to(sum, self.stats.distinct_targets(None) as f64)
        }
    }

    /// Total vertices matching a label alternation (all vertices if empty).
    /// The per-label sum is clamped to the graph's vertex count: a multi-
    /// labelled vertex is counted once per matching label by the sum but can
    /// only match the alternation once.
    pub fn vertices_with_labels(&self, labels: &[Label]) -> f64 {
        if labels.is_empty() {
            self.stats.vertex_count as f64
        } else {
            let sum: f64 = labels
                .iter()
                .map(|l| self.stats.vertices_with_label(l) as f64)
                .sum();
            clamp_to(sum, self.stats.vertex_count as f64)
        }
    }

    /// Total edges matching a label alternation (all edges if empty),
    /// clamped to the graph's edge count like
    /// [`Self::vertices_with_labels`].
    pub fn edges_with_labels(&self, labels: &[Label]) -> f64 {
        if labels.is_empty() {
            self.stats.edge_count as f64
        } else {
            let sum: f64 = labels
                .iter()
                .map(|l| self.stats.edges_with_label(l) as f64)
                .sum();
            clamp_to(sum, self.stats.edge_count as f64)
        }
    }

    /// Estimated per-source fan-out of query edge `index` — the expected
    /// number of outgoing candidate edges per distinct source vertex. Used
    /// to estimate variable-length expansions.
    pub fn edge_fanout(&self, query: &QueryGraph, index: usize) -> f64 {
        self.edge_cardinality(query, index) / self.edge_distinct_sources(query, index)
    }

    /// Join cardinality: `|L|·|R| / max(d_l, d_r)` per join variable.
    pub fn join_cardinality(
        &self,
        left_cardinality: f64,
        right_cardinality: f64,
        distinct_pairs: &[(f64, f64)],
    ) -> f64 {
        let mut result = left_cardinality * right_cardinality;
        for (dl, dr) in distinct_pairs {
            result /= dl.max(*dr).max(1.0);
        }
        result
    }

    /// Selectivity of a full (element-centric) predicate: clauses multiply.
    pub fn predicate_selectivity(
        &self,
        predicate: &CnfPredicate,
        labels: &[Label],
        is_vertex: bool,
    ) -> f64 {
        predicate
            .clauses
            .iter()
            .map(|clause| self.clause_selectivity(clause, labels, is_vertex))
            .product()
    }

    /// Selectivity of one clause: disjuncts combine as
    /// `1 - Π (1 - s_i)`, capped to [0, 1].
    pub fn clause_selectivity(&self, clause: &CnfClause, labels: &[Label], is_vertex: bool) -> f64 {
        let mut miss = 1.0;
        for atom in &clause.atoms {
            miss *= 1.0 - self.atom_selectivity(atom, labels, is_vertex);
        }
        (1.0 - miss).clamp(0.0, 1.0)
    }

    fn atom_selectivity(&self, atom: &Atom, labels: &[Label], is_vertex: bool) -> f64 {
        match atom {
            Atom::Constant(true) => 1.0,
            Atom::Constant(false) => 0.0,
            Atom::IsNull { negated, .. } => {
                if *negated {
                    1.0 - IS_NULL_SELECTIVITY
                } else {
                    IS_NULL_SELECTIVITY
                }
            }
            Atom::HasLabel {
                labels: wanted,
                negated,
                ..
            } => {
                let total = if is_vertex {
                    self.stats.vertex_count as f64
                } else {
                    self.stats.edge_count as f64
                };
                let matching: f64 = wanted
                    .iter()
                    .map(|l| {
                        let label = Label::new(l);
                        if is_vertex {
                            self.stats.vertices_with_label(&label) as f64
                        } else {
                            self.stats.edges_with_label(&label) as f64
                        }
                    })
                    .sum();
                let selectivity = if total > 0.0 { matching / total } else { 0.0 };
                if *negated {
                    1.0 - selectivity
                } else {
                    selectivity
                }
            }
            Atom::Comparison { left, op, right } => {
                // Distinct-value buckets come from `GraphStatistics`, whose
                // dedup uses `PropertyValue` equality — which coerces across
                // numeric types exactly like runtime filtering does, so an
                // `Int`-typed literal probing a `Double`-typed property hits
                // the same bucket the filter matches.
                let key = match (left, right) {
                    (Operand::Property { key, .. }, Operand::Literal(_))
                    | (Operand::Literal(_), Operand::Property { key, .. }) => Some(key),
                    _ => None,
                };
                let eq = key
                    .and_then(|key| self.distinct_values(labels, key, is_vertex))
                    .map(|d| 1.0 / d.max(1.0))
                    .unwrap_or(DEFAULT_EQ_SELECTIVITY);
                match op {
                    CmpOp::Eq => eq,
                    CmpOp::Neq => 1.0 - eq,
                    _ => RANGE_SELECTIVITY,
                }
            }
        }
    }

    fn distinct_values(&self, labels: &[Label], key: &str, is_vertex: bool) -> Option<f64> {
        if labels.is_empty() {
            return None;
        }
        let mut total = 0.0;
        for label in labels {
            let count = if is_vertex {
                self.stats.distinct_vertex_values(label, key)?
            } else {
                self.stats.distinct_edge_values(label, key)?
            };
            total += count as f64;
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradoop_cypher::{parse, QueryGraph};

    fn stats() -> GraphStatistics {
        let mut stats = GraphStatistics {
            vertex_count: 1000,
            edge_count: 5000,
            distinct_source_count: 800,
            distinct_target_count: 900,
            ..GraphStatistics::default()
        };
        stats
            .vertex_count_by_label
            .insert(Label::new("Person"), 600);
        stats.vertex_count_by_label.insert(Label::new("City"), 400);
        stats.edge_count_by_label.insert(Label::new("knows"), 3000);
        stats
            .distinct_source_by_label
            .insert(Label::new("knows"), 500);
        stats
            .distinct_target_by_label
            .insert(Label::new("knows"), 550);
        stats
            .distinct_vertex_property_values
            .insert((Label::new("Person"), "name".to_string()), 200);
        stats
    }

    fn query(text: &str) -> QueryGraph {
        QueryGraph::from_query(&parse(text).unwrap()).unwrap()
    }

    #[test]
    fn label_counts_drive_scan_estimates() {
        let stats = stats();
        let est = Estimator::new(&stats);
        let q = query("MATCH (p:Person) RETURN *");
        assert_eq!(est.vertex_cardinality(&q, 0), 600.0);
        let q = query("MATCH (x) RETURN *");
        assert_eq!(est.vertex_cardinality(&q, 0), 1000.0);
        let q = query("MATCH (x:Person|City) RETURN *");
        assert_eq!(est.vertex_cardinality(&q, 0), 1000.0);
    }

    #[test]
    fn equality_uses_distinct_value_counts() {
        let stats = stats();
        let est = Estimator::new(&stats);
        let q = query("MATCH (p:Person) WHERE p.name = 'Alice' RETURN *");
        // 600 Persons / 200 distinct names = 3.
        assert!((est.vertex_cardinality(&q, 0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn range_and_negation_selectivities() {
        let stats = stats();
        let est = Estimator::new(&stats);
        let q = query("MATCH (p:Person) WHERE p.name <> 'Alice' RETURN *");
        assert!((est.vertex_cardinality(&q, 0) - 600.0 * (1.0 - 1.0 / 200.0)).abs() < 1e-6);
        let q = query("MATCH (p:Person) WHERE p.age > 30 RETURN *");
        assert!((est.vertex_cardinality(&q, 0) - 200.0).abs() < 1e-6);
    }

    #[test]
    fn undirected_edges_double() {
        let stats = stats();
        let est = Estimator::new(&stats);
        let directed = query("MATCH (a)-[e:knows]->(b) RETURN *");
        let undirected = query("MATCH (a)-[e:knows]-(b) RETURN *");
        assert_eq!(est.edge_cardinality(&directed, 0), 3000.0);
        assert_eq!(est.edge_cardinality(&undirected, 0), 6000.0);
    }

    #[test]
    fn label_alternation_clamps_to_totals() {
        let mut stats = stats();
        // Overlapping labels: most Persons are also Employees, so the
        // per-label sum (600 + 700) exceeds the 1000 vertices that exist.
        stats
            .vertex_count_by_label
            .insert(Label::new("Employee"), 700);
        stats.edge_count_by_label.insert(Label::new("likes"), 4000);
        let est = Estimator::new(&stats);
        let q = query("MATCH (x:Person|Employee) RETURN *");
        assert_eq!(est.vertex_cardinality(&q, 0), 1000.0);
        let q = query("MATCH (a)-[e:knows|likes]->(b) RETURN *");
        assert_eq!(est.edge_cardinality(&q, 0), 5000.0);
    }

    #[test]
    fn undirected_edges_count_both_endpoint_orientations() {
        let stats = stats();
        let est = Estimator::new(&stats);
        let directed = query("MATCH (a)-[e:knows]->(b) RETURN *");
        assert_eq!(est.edge_distinct_sources(&directed, 0), 500.0);
        assert_eq!(est.edge_distinct_targets(&directed, 0), 550.0);
        // Undirected: either endpoint can act as the source, so both
        // orientations' distinct counts combine (500 + 550), capped by the
        // 1000 vertices in the graph.
        let undirected = query("MATCH (a)-[e:knows]-(b) RETURN *");
        assert_eq!(est.edge_distinct_sources(&undirected, 0), 1000.0);
        assert_eq!(est.edge_distinct_targets(&undirected, 0), 1000.0);
        // Fan-out stays consistent: doubled cardinality over combined
        // endpoints, not doubled cardinality over one orientation's sources.
        assert!((est.edge_fanout(&undirected, 0) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn join_formula() {
        let stats = stats();
        let est = Estimator::new(&stats);
        // 600 vertices joined with 3000 edges on source (500 distinct).
        let card = est.join_cardinality(600.0, 3000.0, &[(600.0, 500.0)]);
        assert!((card - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn fanout_is_cardinality_over_sources() {
        let stats = stats();
        let est = Estimator::new(&stats);
        let q = query("MATCH (a)-[e:knows]->(b) RETURN *");
        assert!((est.edge_fanout(&q, 0) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn clause_disjunction_combines() {
        let stats = stats();
        let est = Estimator::new(&stats);
        let q = query("MATCH (p:Person) WHERE p.name = 'A' OR p.name = 'B' RETURN *");
        let expected = 600.0 * (1.0 - (1.0 - 1.0 / 200.0) * (1.0 - 1.0 / 200.0));
        assert!((est.vertex_cardinality(&q, 0) - expected).abs() < 1e-6);
    }
}
