//! The greedy query planner (paper Section 3.2).
//!
//! Decomposes the query into its vertex and edge sets and constructs a
//! bushy plan: starting from one partial plan per query vertex, it
//! repeatedly evaluates — for every uncovered query edge — the cost of
//! joining that edge into the existing partial plans, commits the
//! alternative with the smallest estimated intermediate result, and repeats
//! until one plan covers the query graph. Cross-variable filters are placed
//! as soon as all their variables are bound; disconnected components are
//! combined by cartesian products at the end.

use std::collections::{BTreeSet, HashMap};

use gradoop_cypher::QueryGraph;

use crate::executor::{choose_join_strategy, choose_join_strategy_with_partitioning};
use crate::observe::{ship_strategies, ExplainNode, PlannerCandidate, PlannerRound, PlannerTrace};
use crate::planner::estimation::Estimator;
use crate::planner::plan::{node_label, PlanNode, QueryPlan};

/// Which physical alternatives the planner may choose from. Forced modes
/// exist for the conformance harness (and ablation benchmarks): the same
/// query planned under [`PlanMode::ForceWco`] and [`PlanMode::ForceBinary`]
/// must produce byte-identical results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanMode {
    /// Cost-based: binary joins and WCO intersections compete on estimated
    /// cardinality (the default).
    #[default]
    CostBased,
    /// Never emit [`PlanNode::ExpandIntersect`] — the pre-WCO planner.
    ForceBinary,
    /// Prefer WCO: whenever a round offers any intersection candidate, the
    /// choice is restricted to intersections. Acyclic (sub)queries still
    /// plan with binary joins — there is nothing to intersect.
    ForceWco,
}

/// Planning failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError(pub String);

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "planning failed: {}", self.0)
    }
}

impl std::error::Error for PlanError {}

/// A partial plan covering a subset of the query graph.
#[derive(Debug, Clone)]
struct Partial {
    node: PlanNode,
    vertices: BTreeSet<usize>,
    edges: BTreeSet<usize>,
    /// Variables bound to columns of the partial's embeddings.
    variables: BTreeSet<String>,
    cardinality: f64,
    /// Estimated distinct values per bound variable.
    distinct: HashMap<String, f64>,
    /// The variable set the partial's output is expected to be
    /// hash-partitioned on at runtime — the plan-time mirror of the
    /// dataset's [`Partitioning`](gradoop_dataflow::Partitioning)
    /// fingerprint. `Some` after repartitioning joins (whose outputs are
    /// stamped), preserved by filters, dropped by everything that rewrites
    /// placement. Used to predict which join shuffles will be elided.
    partitioned_by: Option<BTreeSet<String>>,
    /// Annotated mirror of `node` (same shape), carrying per-operator
    /// estimates for EXPLAIN output.
    explain: ExplainNode,
}

/// Explain mirror for a freshly constructed plan node: same label as
/// `describe()`, the partial's estimated cardinality, given children.
fn explain_for(
    query: &QueryGraph,
    node: &PlanNode,
    cardinality: f64,
    children: Vec<ExplainNode>,
) -> ExplainNode {
    ExplainNode::inner(node_label(node, query), cardinality, children)
}

/// One alternative evaluated in a greedy round: the partials it would
/// consume, the merged partial it would produce, and the query edges it
/// covers (one for binary joins/expansions, ≥ 2 for WCO intersections).
struct Candidate {
    consumed: Vec<usize>,
    partial: Partial,
    covered_edges: Vec<usize>,
    label: String,
    wco: bool,
}

/// Plans `query` over a graph described by `estimator`'s statistics, with
/// binary joins and WCO intersections competing cost-based.
pub fn plan_query(query: &QueryGraph, estimator: &Estimator) -> Result<QueryPlan, PlanError> {
    plan_query_with_mode(query, estimator, PlanMode::CostBased)
}

/// Plans `query` under an explicit [`PlanMode`].
pub fn plan_query_with_mode(
    query: &QueryGraph,
    estimator: &Estimator,
    mode: PlanMode,
) -> Result<QueryPlan, PlanError> {
    if query.vertices.is_empty() {
        return Err(PlanError("query graph has no vertices".into()));
    }

    let mut partials: Vec<Partial> = Vec::new();
    let mut deferred_vertices: BTreeSet<usize> = BTreeSet::new();

    // Leaf partial per query vertex. Trivial vertices (no labels, no
    // predicates, no required properties) touched by at least one edge are
    // deferred: the edge scan itself binds them, so no join is needed.
    for (index, vertex) in query.vertices.iter().enumerate() {
        let touched = query
            .edges
            .iter()
            .any(|e| e.source == index || e.target == index);
        let trivial = vertex.labels.is_empty()
            && vertex.predicates.is_trivial()
            && vertex.required_keys.is_empty();
        if trivial && touched {
            deferred_vertices.insert(index);
            continue;
        }
        let cardinality = estimator.vertex_cardinality(query, index);
        let mut distinct = HashMap::new();
        distinct.insert(vertex.variable.clone(), cardinality);
        let node = PlanNode::ScanVertices { vertex: index };
        let explain = explain_for(query, &node, cardinality, Vec::new());
        partials.push(Partial {
            node,
            vertices: BTreeSet::from([index]),
            edges: BTreeSet::new(),
            variables: BTreeSet::from([vertex.variable.clone()]),
            cardinality,
            distinct,
            partitioned_by: None,
            explain,
        });
    }

    let mut remaining_edges: BTreeSet<usize> = (0..query.edges.len()).collect();
    let mut pending_clauses: BTreeSet<usize> = (0..query.cross_clauses.len()).collect();
    let mut planner = PlannerTrace::default();

    while !remaining_edges.is_empty() {
        // Evaluate every uncovered edge — plus every WCO intersection that
        // could bind a new vertex through ≥ 2 uncovered edges — and keep
        // the cheapest alternative.
        let mut alternatives: Vec<Candidate> = Vec::new();
        for &edge_index in &remaining_edges {
            let (consumed, partial) = build_candidate(query, estimator, &partials, edge_index)?;
            alternatives.push(Candidate {
                consumed,
                label: query.edges[edge_index].variable.clone(),
                covered_edges: vec![edge_index],
                wco: false,
                partial,
            });
        }
        if mode != PlanMode::ForceBinary {
            build_wco_candidates(
                query,
                estimator,
                &partials,
                &remaining_edges,
                &mut alternatives,
            );
        }
        let candidates: Vec<PlannerCandidate> = alternatives
            .iter()
            .map(|c| PlannerCandidate {
                edge_variable: c.label.clone(),
                estimated_cardinality: c.partial.cardinality,
            })
            .collect();
        let restrict_to_wco = mode == PlanMode::ForceWco && alternatives.iter().any(|c| c.wco);
        let best = alternatives
            .into_iter()
            .filter(|c| !restrict_to_wco || c.wco)
            .min_by(|a, b| a.partial.cardinality.total_cmp(&b.partial.cardinality))
            .ok_or_else(|| PlanError("no joinable edge found".into()))?;
        let mut merged = best.partial;
        planner.rounds.push(PlannerRound {
            candidates,
            chosen_edge: best.label,
            chosen_cardinality: merged.cardinality,
        });
        for edge_index in &best.covered_edges {
            remaining_edges.remove(edge_index);
        }

        // Replace the consumed partials (descending index order).
        let mut consumed = best.consumed;
        consumed.sort_unstable_by(|a, b| b.cmp(a));
        for index in consumed {
            partials.remove(index);
        }
        apply_ready_filters(query, estimator, &mut merged, &mut pending_clauses);
        partials.push(merged);
    }

    // Isolated non-trivial vertices are still their own partials; combine
    // everything left with cartesian products, cheapest side first.
    partials.sort_by(|a, b| a.cardinality.total_cmp(&b.cardinality));
    let mut iter = partials.into_iter();
    let mut combined = iter
        .next()
        .ok_or_else(|| PlanError("query produced no partial plans".into()))?;
    for next in iter {
        let distinct = merge_distinct(&combined, &next);
        // A pending equality predicate between properties of the two sides
        // turns the cartesian product into a value join (the extension
        // operator of paper Section 3.1) — same result, far smaller output.
        let value_join = find_value_join_clause(
            query,
            &pending_clauses,
            &combined.variables,
            &next.variables,
        );
        let (node, cardinality, strategy) = match value_join {
            Some((clause_index, left_property, right_property)) => {
                pending_clauses.remove(&clause_index);
                (
                    PlanNode::ValueJoin {
                        left: Box::new(combined.node),
                        right: Box::new(next.node),
                        left_property,
                        right_property,
                    },
                    // Equality-join estimate: the product scaled by the
                    // default equality selectivity.
                    combined.cardinality * next.cardinality * 0.1,
                    Some(choose_join_strategy(
                        combined.cardinality.max(0.0) as usize,
                        next.cardinality.max(0.0) as usize,
                    )),
                )
            }
            None => (
                PlanNode::Cartesian {
                    left: Box::new(combined.node),
                    right: Box::new(next.node),
                },
                combined.cardinality * next.cardinality,
                None,
            ),
        };
        let mut explain = explain_for(
            query,
            &node,
            cardinality,
            vec![combined.explain, next.explain],
        );
        explain.estimated_strategy = strategy;
        if let Some(strategy) = strategy {
            // Value joins key on property values, which no named
            // partitioning fact describes: neither side forwards.
            explain.estimated_ship = Some(ship_strategies(strategy, false, false));
        }
        combined = Partial {
            vertices: combined.vertices.union(&next.vertices).copied().collect(),
            edges: combined.edges.union(&next.edges).copied().collect(),
            variables: combined.variables.union(&next.variables).cloned().collect(),
            cardinality,
            node,
            distinct,
            partitioned_by: None,
            explain,
        };
        apply_ready_filters(query, estimator, &mut combined, &mut pending_clauses);
    }

    // Any still-pending clause means a variable never got bound — that can
    // only be a clause without variables (constant), which we apply last.
    if !pending_clauses.is_empty() {
        let clauses: Vec<usize> = pending_clauses.iter().copied().collect();
        for &index in &clauses {
            let (_, variables) = &query.cross_clauses[index];
            for variable in variables {
                if !combined.variables.contains(variable) {
                    return Err(PlanError(format!(
                        "predicate references variable `{variable}` that is never bound"
                    )));
                }
            }
        }
        combined.node = PlanNode::Filter {
            input: Box::new(combined.node),
            clauses,
        };
        let input_explain = std::mem::replace(&mut combined.explain, ExplainNode::leaf("", 0.0));
        combined.explain = explain_for(
            query,
            &combined.node,
            combined.cardinality,
            vec![input_explain],
        );
    }

    Ok(QueryPlan {
        estimated_cardinality: combined.cardinality,
        root: combined.node,
        explain: combined.explain,
        planner,
    })
}

/// Builds the candidate partial that covers `edge_index`, returning the
/// indices of the partials it consumes.
fn build_candidate(
    query: &QueryGraph,
    estimator: &Estimator,
    partials: &[Partial],
    edge_index: usize,
) -> Result<(Vec<usize>, Partial), PlanError> {
    let edge = &query.edges[edge_index];
    let source_var = query.vertices[edge.source].variable.clone();
    let target_var = query.vertices[edge.target].variable.clone();

    let source_partial = partials
        .iter()
        .position(|p| p.variables.contains(&source_var));
    let target_partial = partials
        .iter()
        .position(|p| p.variables.contains(&target_var));

    if edge.is_variable_length() {
        build_expand_candidate(
            query,
            estimator,
            partials,
            edge_index,
            source_partial,
            target_partial,
        )
    } else {
        build_join_candidate(
            query,
            estimator,
            partials,
            edge_index,
            source_partial,
            target_partial,
        )
    }
}

/// Expected candidate neighbors per bound endpoint of a closing edge,
/// oriented by which endpoint the intersection probes from. Undirected
/// edges combine both orientations (their cardinality and distinct-source
/// estimates already count both).
fn oriented_fanout(query: &QueryGraph, estimator: &Estimator, edge_index: usize, w: usize) -> f64 {
    let edge = &query.edges[edge_index];
    let cardinality = estimator.edge_cardinality(query, edge_index);
    let bound_sources = edge.undirected || edge.target == w;
    let denominator = if bound_sources {
        estimator.edge_distinct_sources(query, edge_index)
    } else {
        estimator.edge_distinct_targets(query, edge_index)
    };
    cardinality / denominator.max(1.0)
}

/// Enumerates worst-case-optimal intersection candidates: for each partial
/// `p` and each vertex `w` not bound by `p` that is reachable through ≥ 2
/// uncovered plain edges whose other endpoints `p` binds, an
/// [`PlanNode::ExpandIntersect`] closing all those edges at once.
///
/// Eligibility mirrors what the operator can execute: plain edges only (no
/// variable length), no self-loops on `w`, and neither `w` nor the closing
/// edges may require projected properties — the intersection emits bare
/// ids. `w`'s own labels and predicates are enforced by the operator, so a
/// leaf scan partial for `w` is consumed without embedding its node.
fn build_wco_candidates(
    query: &QueryGraph,
    estimator: &Estimator,
    partials: &[Partial],
    remaining_edges: &BTreeSet<usize>,
    out: &mut Vec<Candidate>,
) {
    let vertex_count = (estimator.stats().vertex_count as f64).max(1.0);
    for (p_index, partial) in partials.iter().enumerate() {
        // Group eligible closing edges by the new vertex they would bind.
        let mut by_vertex: HashMap<usize, Vec<usize>> = HashMap::new();
        for &edge_index in remaining_edges {
            let edge = &query.edges[edge_index];
            if edge.range.is_some() || !edge.required_keys.is_empty() || edge.source == edge.target
            {
                continue;
            }
            let source_bound = partial
                .variables
                .contains(&query.vertices[edge.source].variable);
            let target_bound = partial
                .variables
                .contains(&query.vertices[edge.target].variable);
            let w = match (source_bound, target_bound) {
                (true, false) => edge.target,
                (false, true) => edge.source,
                _ => continue,
            };
            if !query.vertices[w].required_keys.is_empty() {
                continue;
            }
            by_vertex.entry(w).or_default().push(edge_index);
        }
        let mut closures: Vec<(usize, Vec<usize>)> = by_vertex.into_iter().collect();
        closures.sort_unstable();
        for (w, edges) in closures {
            if edges.len() < 2 {
                continue;
            }
            let w_variable = &query.vertices[w].variable;
            // `w` may exist as its own leaf scan partial (labels/predicates
            // but no covered edges): consume it, the operator re-applies
            // its constraints. Any other partial binding `w` blocks WCO.
            let mut consumed = vec![p_index];
            let mut blocked = false;
            for (i, other) in partials.iter().enumerate() {
                if i == p_index || !other.variables.contains(w_variable) {
                    continue;
                }
                if other.edges.is_empty() && other.variables.len() == 1 {
                    consumed.push(i);
                } else {
                    blocked = true;
                }
            }
            if blocked {
                continue;
            }

            // Each closing edge offers `fanout` candidates per probe row;
            // a neighbor survives every further intersection with
            // probability `fanout_i / |V|`, and must satisfy `w`'s own
            // labels/predicates on top.
            let w_cardinality = estimator.vertex_cardinality(query, w);
            let mut per_row = w_cardinality / vertex_count;
            for &edge_index in &edges {
                per_row *= oriented_fanout(query, estimator, edge_index, w);
            }
            per_row /= vertex_count.powi(edges.len() as i32 - 1);
            let cardinality = partial.cardinality * per_row;

            let mut variables = partial.variables.clone();
            variables.insert(w_variable.clone());
            let mut distinct = partial.distinct.clone();
            distinct.insert(w_variable.clone(), vertex_count.min(cardinality.max(1.0)));
            for &edge_index in &edges {
                variables.insert(query.edges[edge_index].variable.clone());
                distinct.insert(
                    query.edges[edge_index].variable.clone(),
                    cardinality.max(1.0),
                );
            }
            let node = PlanNode::ExpandIntersect {
                input: Box::new(partial.node.clone()),
                vertex: w,
                edges: edges.clone(),
            };
            let explain = explain_for(query, &node, cardinality, vec![partial.explain.clone()]);
            let label = edges
                .iter()
                .map(|&e| query.edges[e].variable.as_str())
                .collect::<Vec<_>>()
                .join("∩");
            out.push(Candidate {
                consumed,
                partial: Partial {
                    node,
                    vertices: {
                        let mut v = partial.vertices.clone();
                        v.insert(w);
                        v
                    },
                    edges: {
                        let mut e = partial.edges.clone();
                        e.extend(edges.iter().copied());
                        e
                    },
                    variables,
                    cardinality,
                    distinct,
                    // The probe extends rows in place; the input's placement
                    // survives but no named partitioning fact describes it.
                    partitioned_by: None,
                    explain,
                },
                covered_edges: edges,
                label,
                wco: true,
            });
        }
    }
}

/// Leaf partial for one plain edge scan.
fn edge_scan_partial(query: &QueryGraph, estimator: &Estimator, edge_index: usize) -> Partial {
    let edge = &query.edges[edge_index];
    let source_var = query.vertices[edge.source].variable.clone();
    let target_var = query.vertices[edge.target].variable.clone();
    let cardinality = estimator.edge_cardinality(query, edge_index);
    let mut distinct = HashMap::new();
    distinct.insert(
        source_var.clone(),
        estimator
            .edge_distinct_sources(query, edge_index)
            .min(cardinality),
    );
    distinct.insert(
        target_var.clone(),
        estimator
            .edge_distinct_targets(query, edge_index)
            .min(cardinality),
    );
    distinct.insert(edge.variable.clone(), cardinality);
    let mut variables = BTreeSet::from([source_var, edge.variable.clone()]);
    variables.insert(target_var);
    let node = PlanNode::ScanEdges { edge: edge_index };
    let explain = explain_for(query, &node, cardinality, Vec::new());
    Partial {
        node,
        vertices: BTreeSet::from([edge.source, edge.target]),
        edges: BTreeSet::from([edge_index]),
        variables,
        cardinality,
        distinct,
        partitioned_by: None,
        explain,
    }
}

fn join_partials(
    query: &QueryGraph,
    estimator: &Estimator,
    left: Partial,
    right: Partial,
    variables: Vec<String>,
) -> Partial {
    let pairs: Vec<(f64, f64)> = variables
        .iter()
        .map(|v| {
            (
                left.distinct.get(v).copied().unwrap_or(left.cardinality),
                right.distinct.get(v).copied().unwrap_or(right.cardinality),
            )
        })
        .collect();
    let cardinality = estimator.join_cardinality(left.cardinality, right.cardinality, &pairs);
    let mut distinct = HashMap::new();
    for (variable, value) in left.distinct.iter().chain(right.distinct.iter()) {
        let entry = distinct.entry(variable.clone()).or_insert(*value);
        *entry = entry.min(*value).min(cardinality.max(1.0));
    }
    // Predict the join strategy the executor will pick if the estimated
    // input cardinalities come true, including which inputs it will find
    // already partitioned on the join key and therefore forward.
    let key_set: BTreeSet<String> = variables.iter().cloned().collect();
    let left_partitioned = left.partitioned_by.as_ref() == Some(&key_set);
    let right_partitioned = right.partitioned_by.as_ref() == Some(&key_set);
    let strategy = choose_join_strategy_with_partitioning(
        left.cardinality.max(0.0) as usize,
        right.cardinality.max(0.0) as usize,
        left_partitioned,
        right_partitioned,
    );
    // Mirror the runtime stamping rules: repartitioning joins place their
    // output by the join key; a broadcast join leaves the stationary side's
    // placement as is (meaningful here only when it already matches).
    use gradoop_dataflow::JoinStrategy;
    let partitioned_by = match strategy {
        JoinStrategy::RepartitionHash | JoinStrategy::RepartitionSortMerge => Some(key_set.clone()),
        JoinStrategy::BroadcastHashFirst => right_partitioned.then(|| key_set.clone()),
        JoinStrategy::BroadcastHashSecond => left_partitioned.then(|| key_set.clone()),
    };
    let node = PlanNode::Join {
        left: Box::new(left.node),
        right: Box::new(right.node),
        variables,
    };
    let mut explain = explain_for(query, &node, cardinality, vec![left.explain, right.explain]);
    explain.estimated_strategy = Some(strategy);
    explain.estimated_ship = Some(ship_strategies(
        strategy,
        left_partitioned,
        right_partitioned,
    ));
    Partial {
        node,
        vertices: left.vertices.union(&right.vertices).copied().collect(),
        edges: left.edges.union(&right.edges).copied().collect(),
        variables: left.variables.union(&right.variables).cloned().collect(),
        cardinality,
        distinct,
        partitioned_by,
        explain,
    }
}

fn build_join_candidate(
    query: &QueryGraph,
    estimator: &Estimator,
    partials: &[Partial],
    edge_index: usize,
    source_partial: Option<usize>,
    target_partial: Option<usize>,
) -> Result<(Vec<usize>, Partial), PlanError> {
    let edge = &query.edges[edge_index];
    let source_var = query.vertices[edge.source].variable.clone();
    let target_var = query.vertices[edge.target].variable.clone();
    let scan = edge_scan_partial(query, estimator, edge_index);

    let mut consumed = Vec::new();
    let mut current = scan;

    match (source_partial, target_partial) {
        (Some(s), Some(t)) if s == t => {
            // Both endpoints live in the same partial: one join on both
            // endpoint variables (or just one for loops).
            let mut join_vars = vec![source_var.clone()];
            if source_var != target_var {
                join_vars.push(target_var);
            }
            current = join_partials(query, estimator, partials[s].clone(), current, join_vars);
            consumed.push(s);
        }
        (source, target) => {
            if let Some(s) = source {
                current = join_partials(
                    query,
                    estimator,
                    partials[s].clone(),
                    current,
                    vec![source_var.clone()],
                );
                consumed.push(s);
            }
            if let Some(t) = target {
                if source_var != target_var {
                    current = join_partials(
                        query,
                        estimator,
                        partials[t].clone(),
                        current,
                        vec![target_var],
                    );
                    consumed.push(t);
                }
            }
        }
    }
    Ok((consumed, current))
}

fn build_expand_candidate(
    query: &QueryGraph,
    estimator: &Estimator,
    partials: &[Partial],
    edge_index: usize,
    source_partial: Option<usize>,
    target_partial: Option<usize>,
) -> Result<(Vec<usize>, Partial), PlanError> {
    let edge = &query.edges[edge_index];
    let source_var = query.vertices[edge.source].variable.clone();
    let target_var = query.vertices[edge.target].variable.clone();
    let (lower, upper) = edge.range.expect("variable-length edge");

    // The expansion needs an input binding its source column. Deferred
    // (trivial) source vertices still get a scan here.
    let (input, mut consumed) = match source_partial {
        Some(index) => (partials[index].clone(), vec![index]),
        None => {
            let cardinality = estimator.vertex_cardinality(query, edge.source);
            let mut distinct = HashMap::new();
            distinct.insert(source_var.clone(), cardinality);
            let node = PlanNode::ScanVertices {
                vertex: edge.source,
            };
            let explain = explain_for(query, &node, cardinality, Vec::new());
            (
                Partial {
                    node,
                    vertices: BTreeSet::from([edge.source]),
                    edges: BTreeSet::new(),
                    variables: BTreeSet::from([source_var.clone()]),
                    cardinality,
                    distinct,
                    partitioned_by: None,
                    explain,
                },
                Vec::new(),
            )
        }
    };

    // Σ fanout^k over the path lengths, with the zero-length path
    // contributing its single embedding.
    let fanout = estimator.edge_fanout(query, edge_index).max(0.001);
    let mut growth = 0.0;
    for k in lower..=upper {
        growth += fanout.powi(k as i32);
    }
    let closes_cycle = input.variables.contains(&target_var);
    let mut cardinality = input.cardinality * growth;
    if closes_cycle {
        let vertex_count = (estimator.stats().vertex_count as f64).max(1.0);
        cardinality /= vertex_count;
    }

    let mut variables = input.variables.clone();
    variables.insert(edge.variable.clone());
    variables.insert(target_var.clone());
    let mut distinct = input.distinct.clone();
    distinct.insert(
        target_var.clone(),
        (estimator.stats().vertex_count as f64).min(cardinality.max(1.0)),
    );
    let node = PlanNode::Expand {
        input: Box::new(input.node),
        edge: edge_index,
    };
    let explain = explain_for(query, &node, cardinality, vec![input.explain]);
    let mut expanded = Partial {
        node,
        vertices: {
            let mut v = input.vertices.clone();
            v.insert(edge.source);
            v.insert(edge.target);
            v
        },
        edges: {
            let mut e = input.edges.clone();
            e.insert(edge_index);
            e
        },
        variables,
        cardinality,
        distinct,
        // The expansion's probe outputs land wherever their last hop's
        // source was placed — no named partitioning describes that.
        partitioned_by: None,
        explain,
    };

    // If the target lives in a different partial, join the expansion result
    // with it on the target variable.
    if let Some(t) = target_partial {
        if !consumed.contains(&t) && !closes_cycle {
            expanded = join_partials(
                query,
                estimator,
                expanded,
                partials[t].clone(),
                vec![target_var],
            );
            consumed.push(t);
        }
    }
    Ok((consumed, expanded))
}

/// Attaches pending cross-variable filters whose variables are all bound.
fn apply_ready_filters(
    query: &QueryGraph,
    estimator: &Estimator,
    partial: &mut Partial,
    pending: &mut BTreeSet<usize>,
) {
    let ready: Vec<usize> = pending
        .iter()
        .copied()
        .filter(|&index| {
            query.cross_clauses[index]
                .1
                .iter()
                .all(|v| partial.variables.contains(v))
        })
        .collect();
    if ready.is_empty() {
        return;
    }
    for &index in &ready {
        pending.remove(&index);
        let clause = &query.cross_clauses[index].0;
        partial.cardinality *= estimator.clause_selectivity(clause, &[], true);
    }
    partial.node = PlanNode::Filter {
        input: Box::new(partial.node.clone()),
        clauses: ready,
    };
    let input_explain = std::mem::replace(&mut partial.explain, ExplainNode::leaf("", 0.0));
    partial.explain = explain_for(
        query,
        &partial.node,
        partial.cardinality,
        vec![input_explain],
    );
}

/// Finds a pending single-atom equality clause `a.k1 = b.k2` whose sides
/// live in the two given variable sets, returning the clause index and the
/// property pair oriented as (left, right).
/// A value-join opportunity: the clause index plus the (variable, property)
/// pair of each side, oriented as (left, right).
type ValueJoinClause = (usize, (String, String), (String, String));

fn find_value_join_clause(
    query: &QueryGraph,
    pending: &BTreeSet<usize>,
    left_variables: &BTreeSet<String>,
    right_variables: &BTreeSet<String>,
) -> Option<ValueJoinClause> {
    use gradoop_cypher::{Atom, CmpOp, Operand};
    for &index in pending {
        let (clause, _) = &query.cross_clauses[index];
        let [atom] = clause.atoms.as_slice() else {
            continue;
        };
        let Atom::Comparison {
            left:
                Operand::Property {
                    variable: v1,
                    key: k1,
                },
            op: CmpOp::Eq,
            right:
                Operand::Property {
                    variable: v2,
                    key: k2,
                },
        } = atom
        else {
            continue;
        };
        let p1 = (v1.clone(), k1.clone());
        let p2 = (v2.clone(), k2.clone());
        if left_variables.contains(v1) && right_variables.contains(v2) {
            return Some((index, p1, p2));
        }
        if left_variables.contains(v2) && right_variables.contains(v1) {
            return Some((index, p2, p1));
        }
    }
    None
}

fn merge_distinct(left: &Partial, right: &Partial) -> HashMap<String, f64> {
    let mut distinct = left.distinct.clone();
    for (variable, value) in &right.distinct {
        distinct.insert(variable.clone(), *value);
    }
    distinct
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradoop_cypher::parse;
    use gradoop_epgm::{GraphStatistics, Label};

    fn stats() -> GraphStatistics {
        let mut stats = GraphStatistics {
            vertex_count: 1000,
            edge_count: 5000,
            distinct_source_count: 800,
            distinct_target_count: 900,
            ..GraphStatistics::default()
        };
        stats
            .vertex_count_by_label
            .insert(Label::new("Person"), 600);
        stats
            .vertex_count_by_label
            .insert(Label::new("University"), 10);
        stats.edge_count_by_label.insert(Label::new("knows"), 3000);
        stats.edge_count_by_label.insert(Label::new("studyAt"), 600);
        stats
            .distinct_source_by_label
            .insert(Label::new("knows"), 500);
        stats
            .distinct_target_by_label
            .insert(Label::new("knows"), 550);
        stats
            .distinct_source_by_label
            .insert(Label::new("studyAt"), 600);
        stats
            .distinct_target_by_label
            .insert(Label::new("studyAt"), 10);
        stats
            .distinct_vertex_property_values
            .insert((Label::new("University"), "name".to_string()), 10);
        stats
    }

    fn plan(text: &str) -> (QueryGraph, QueryPlan) {
        plan_with_mode(text, PlanMode::CostBased)
    }

    fn plan_with_mode(text: &str, mode: PlanMode) -> (QueryGraph, QueryPlan) {
        let query = QueryGraph::from_query(&parse(text).unwrap()).unwrap();
        let stats = stats();
        let estimator = Estimator::new(&stats);
        let plan = plan_query_with_mode(&query, &estimator, mode).expect("plan");
        (query, plan)
    }

    fn collect_edges(node: &PlanNode, out: &mut Vec<usize>) {
        match node {
            PlanNode::ScanEdges { edge } | PlanNode::Expand { edge, .. } => out.push(*edge),
            PlanNode::ExpandIntersect { edges, .. } => out.extend(edges.iter().copied()),
            PlanNode::Join { left, right, .. }
            | PlanNode::Cartesian { left, right }
            | PlanNode::ValueJoin { left, right, .. } => {
                collect_edges(left, out);
                collect_edges(right, out);
            }
            PlanNode::Filter { input, .. } => collect_edges(input, out),
            PlanNode::ScanVertices { .. } => {}
        }
        if let PlanNode::Expand { input, .. } | PlanNode::ExpandIntersect { input, .. } = node {
            collect_edges(input, out);
        }
    }

    #[test]
    fn plan_covers_every_edge_exactly_once() {
        let (query, plan) = plan(
            "MATCH (p1:Person)-[s:studyAt]->(u:University), \
                   (p2:Person)-[:studyAt]->(u), \
                   (p1)-[e:knows*1..3]->(p2) \
             WHERE u.name = 'Uni Leipzig' RETURN *",
        );
        let mut edges = Vec::new();
        collect_edges(&plan.root, &mut edges);
        edges.sort_unstable();
        assert_eq!(edges, (0..query.edges.len()).collect::<Vec<_>>());
    }

    #[test]
    fn selective_predicate_is_joined_early() {
        // The university scan (10 labeled, equality selecting 1/10) is by
        // far the cheapest side; the greedy planner must start from it.
        let (query, plan) = plan(
            "MATCH (p:Person)-[s:studyAt]->(u:University) \
             WHERE u.name = 'Uni Leipzig' RETURN p.name",
        );
        // The first committed join involves the studyAt edge; its estimated
        // result must be far below the unfiltered edge count.
        assert!(plan.estimated_cardinality < 100.0);
        let text = plan.describe(&query);
        assert!(text.contains("ScanVertices(u:University)"));
    }

    const TRIANGLE: &str = "MATCH (p1:Person)-[:knows]->(p2:Person), \
                                  (p2)-[:knows]->(p3:Person), \
                                  (p1)-[:knows]->(p3) RETURN *";

    #[test]
    fn triangle_query_plans_all_three_edges() {
        let (query, plan) = plan(TRIANGLE);
        let mut edges = Vec::new();
        collect_edges(&plan.root, &mut edges);
        edges.sort_unstable();
        assert_eq!(edges, vec![0, 1, 2]);
        // Cost-based planning closes the triangle with a WCO intersection:
        // per open (p1, p2) pair the estimate is knows-fanout² / |V| · the
        // Person selectivity of p3 (≈ 0.02 rows) versus the thousands of
        // open 2-paths the binary closing join would materialize.
        let text = plan.describe(&query);
        assert!(text.contains("wco intersect p3"), "{text}");
        assert!(!text.contains("JoinEmbeddings(on p1, p3)"), "{text}");
    }

    #[test]
    fn forced_binary_triangle_closes_with_a_two_variable_join() {
        let (query, plan) = plan_with_mode(TRIANGLE, PlanMode::ForceBinary);
        let mut edges = Vec::new();
        collect_edges(&plan.root, &mut edges);
        edges.sort_unstable();
        assert_eq!(edges, vec![0, 1, 2]);
        let text = plan.describe(&query);
        assert!(!text.contains("wco intersect"), "{text}");
        assert!(
            text.contains("JoinEmbeddings(on p1, p3)")
                || text.contains("JoinEmbeddings(on p3, p1)"),
            "{text}"
        );
    }

    #[test]
    fn wco_estimate_beats_binary_on_the_triangle() {
        let (_, wco) = plan_with_mode(TRIANGLE, PlanMode::ForceWco);
        let (_, binary) = plan_with_mode(TRIANGLE, PlanMode::ForceBinary);
        assert!(
            wco.estimated_cardinality < binary.estimated_cardinality,
            "wco {} vs binary {}",
            wco.estimated_cardinality,
            binary.estimated_cardinality
        );
    }

    #[test]
    fn four_clique_intersects_three_edges_at_once() {
        let (query, plan) = plan_with_mode(
            "MATCH (a:Person)-[:knows]->(b:Person), (a)-[:knows]->(c:Person), \
                   (a)-[:knows]->(d:Person), (b)-[:knows]->(c), \
                   (b)-[:knows]->(d), (c)-[:knows]->(d) RETURN *",
            PlanMode::ForceWco,
        );
        let mut edges = Vec::new();
        collect_edges(&plan.root, &mut edges);
        edges.sort_unstable();
        assert_eq!(edges, (0..6).collect::<Vec<_>>());
        let text = plan.describe(&query);
        // The last vertex is bound by intersecting all three of its edges.
        assert!(
            text.lines()
                .any(|l| l.contains("wco intersect") && l.matches('∩').count() == 2),
            "{text}"
        );
    }

    #[test]
    fn forced_wco_falls_back_to_binary_on_acyclic_queries() {
        let (query, plan) = plan_with_mode(
            "MATCH (p:Person)-[s:studyAt]->(u:University) RETURN *",
            PlanMode::ForceWco,
        );
        let text = plan.describe(&query);
        assert!(!text.contains("wco intersect"), "{text}");
        let mut edges = Vec::new();
        collect_edges(&plan.root, &mut edges);
        assert_eq!(edges, vec![0]);
    }

    #[test]
    fn undirected_cycle_is_wco_eligible() {
        let (query, plan) = plan_with_mode(
            "MATCH (a:Person)-[:knows]-(b:Person), (b)-[:knows]-(c:Person), \
                   (a)-[:knows]-(c) RETURN *",
            PlanMode::ForceWco,
        );
        let text = plan.describe(&query);
        assert!(text.contains("wco intersect"), "{text}");
        let mut edges = Vec::new();
        collect_edges(&plan.root, &mut edges);
        edges.sort_unstable();
        assert_eq!(edges, vec![0, 1, 2]);
    }

    #[test]
    fn cross_filter_is_placed_once_variables_bound() {
        let (query, plan) = plan(
            "MATCH (p1:Person)-[:knows]->(p2:Person) \
             WHERE p1.gender <> p2.gender RETURN *",
        );
        let text = plan.describe(&query);
        assert!(text.contains("FilterEmbeddings"), "{text}");
    }

    #[test]
    fn disconnected_query_uses_cartesian() {
        let (query, plan) = plan("MATCH (a:Person), (b:University) RETURN *");
        let text = plan.describe(&query);
        assert!(text.contains("CartesianProduct"), "{text}");
    }

    #[test]
    fn variable_length_edge_becomes_expand() {
        let (query, plan) = plan("MATCH (a:Person)-[e:knows*1..3]->(b:Person) RETURN *");
        let text = plan.describe(&query);
        assert!(text.contains("ExpandEmbeddings(e *1..3)"), "{text}");
        // The target side is joined afterwards.
        assert!(text.contains("JoinEmbeddings(on b)"), "{text}");
        let _ = query;
    }

    #[test]
    fn cross_component_equality_becomes_value_join() {
        let (query, plan) = plan("MATCH (a:Person), (b:University) WHERE a.name = b.name RETURN *");
        let text = plan.describe(&query);
        assert!(
            text.contains("ValueJoinEmbeddings(a.name = b.name)")
                || text.contains("ValueJoinEmbeddings(b.name = a.name)"),
            "{text}"
        );
        assert!(!text.contains("CartesianProduct"), "{text}");
        // The clause is consumed by the join — no residual filter.
        assert!(!text.contains("FilterEmbeddings"), "{text}");
    }

    #[test]
    fn non_equality_cross_clause_keeps_cartesian() {
        let (query, plan) = plan("MATCH (a:Person), (b:University) WHERE a.name < b.name RETURN *");
        let text = plan.describe(&query);
        assert!(text.contains("CartesianProduct"), "{text}");
        assert!(text.contains("FilterEmbeddings"), "{text}");
    }

    #[test]
    fn trivial_vertices_are_not_scanned() {
        let (query, plan) = plan("MATCH (a)-[e:knows]->(b) RETURN count(*)");
        let text = plan.describe(&query);
        assert!(!text.contains("ScanVertices"), "{text}");
        assert!(text.contains("ScanEdges(e:knows)"), "{text}");
    }
}
