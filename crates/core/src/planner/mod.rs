//! Cost-based query planning (paper Section 3.2).
//!
//! Apache Flink's dataflow optimizer chooses join strategies but does not
//! reorder operators using statistics; the engine therefore plans the
//! operator order itself. The reference implementation is a greedy planner:
//! it decomposes the query into vertex and edge sets and constructs a bushy
//! plan by iteratively joining partial plans, always committing the step
//! with the smallest estimated intermediate result.

mod estimation;
mod greedy;
mod plan;

pub use estimation::Estimator;
pub use greedy::{plan_query, plan_query_with_mode, PlanError, PlanMode};
pub use plan::{PlanNode, QueryPlan};
