//! Query plan representation.

use gradoop_cypher::QueryGraph;

/// A node of the (bushy) query plan tree. Leaf nodes reference query
/// vertices/edges by index into the [`QueryGraph`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// `SelectAndProjectVertices` for one query vertex.
    ScanVertices {
        /// Query vertex index.
        vertex: usize,
    },
    /// `SelectAndProjectEdges` for one plain query edge.
    ScanEdges {
        /// Query edge index.
        edge: usize,
    },
    /// `JoinEmbeddings` on the given shared variables.
    Join {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
        /// Shared variables joined on.
        variables: Vec<String>,
    },
    /// `ExpandEmbeddings` for one variable-length query edge.
    Expand {
        /// Input providing the expansion's source column.
        input: Box<PlanNode>,
        /// Query edge index (must be variable-length).
        edge: usize,
    },
    /// `FilterEmbeddings` applying cross-variable clauses.
    Filter {
        /// Input.
        input: Box<PlanNode>,
        /// Indices into `QueryGraph::cross_clauses`.
        clauses: Vec<usize>,
    },
    /// Cartesian product of disconnected components.
    Cartesian {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
    },
    /// `ValueJoinEmbeddings`: joins disconnected components on equal
    /// property values (replaces Cartesian + Filter for one equality
    /// clause).
    ValueJoin {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
        /// `(variable, key)` on the left side.
        left_property: (String, String),
        /// `(variable, key)` on the right side.
        right_property: (String, String),
    },
}

/// A complete plan with its cost estimate.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Root of the plan tree.
    pub root: PlanNode,
    /// Estimated number of result embeddings.
    pub estimated_cardinality: f64,
}

impl QueryPlan {
    /// Human-readable plan tree (one node per line, children indented),
    /// resolving leaf indices to query variables.
    pub fn describe(&self, query: &QueryGraph) -> String {
        let mut out = String::new();
        describe_node(&self.root, query, 0, &mut out);
        out.push_str(&format!(
            "estimated cardinality: {:.0}\n",
            self.estimated_cardinality
        ));
        out
    }
}

fn describe_node(node: &PlanNode, query: &QueryGraph, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    match node {
        PlanNode::ScanVertices { vertex } => {
            let v = &query.vertices[*vertex];
            let labels: Vec<&str> = v.labels.iter().map(|l| l.as_str()).collect();
            out.push_str(&format!(
                "{indent}ScanVertices({}{}{})\n",
                v.variable,
                if labels.is_empty() { "" } else { ":" },
                labels.join("|")
            ));
        }
        PlanNode::ScanEdges { edge } => {
            let e = &query.edges[*edge];
            let labels: Vec<&str> = e.labels.iter().map(|l| l.as_str()).collect();
            out.push_str(&format!(
                "{indent}ScanEdges({}{}{})\n",
                e.variable,
                if labels.is_empty() { "" } else { ":" },
                labels.join("|")
            ));
        }
        PlanNode::Join {
            left,
            right,
            variables,
        } => {
            out.push_str(&format!("{indent}JoinEmbeddings(on {})\n", variables.join(", ")));
            describe_node(left, query, depth + 1, out);
            describe_node(right, query, depth + 1, out);
        }
        PlanNode::Expand { input, edge } => {
            let e = &query.edges[*edge];
            let (lower, upper) = e.range.unwrap_or((1, 1));
            out.push_str(&format!(
                "{indent}ExpandEmbeddings({} *{}..{})\n",
                e.variable, lower, upper
            ));
            describe_node(input, query, depth + 1, out);
        }
        PlanNode::Filter { input, clauses } => {
            let texts: Vec<String> = clauses
                .iter()
                .map(|&i| query.cross_clauses[i].0.to_string())
                .collect();
            out.push_str(&format!("{indent}FilterEmbeddings({})\n", texts.join(" AND ")));
            describe_node(input, query, depth + 1, out);
        }
        PlanNode::Cartesian { left, right } => {
            out.push_str(&format!("{indent}CartesianProduct\n"));
            describe_node(left, query, depth + 1, out);
            describe_node(right, query, depth + 1, out);
        }
        PlanNode::ValueJoin {
            left,
            right,
            left_property,
            right_property,
        } => {
            out.push_str(&format!(
                "{indent}ValueJoinEmbeddings({}.{} = {}.{})\n",
                left_property.0, left_property.1, right_property.0, right_property.1
            ));
            describe_node(left, query, depth + 1, out);
            describe_node(right, query, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradoop_cypher::parse;

    #[test]
    fn describe_renders_tree() {
        let query = QueryGraph::from_query(
            &parse("MATCH (p:Person)-[e:knows]->(q:Person) WHERE p.a <> q.a RETURN *").unwrap(),
        )
        .unwrap();
        let plan = QueryPlan {
            root: PlanNode::Filter {
                input: Box::new(PlanNode::Join {
                    left: Box::new(PlanNode::ScanVertices { vertex: 0 }),
                    right: Box::new(PlanNode::ScanEdges { edge: 0 }),
                    variables: vec!["p".to_string()],
                }),
                clauses: vec![0],
            },
            estimated_cardinality: 42.0,
        };
        let text = plan.describe(&query);
        assert!(text.contains("ScanVertices(p:Person)"));
        assert!(text.contains("ScanEdges(e:knows)"));
        assert!(text.contains("JoinEmbeddings(on p)"));
        assert!(text.contains("FilterEmbeddings"));
        assert!(text.contains("estimated cardinality: 42"));
    }
}
