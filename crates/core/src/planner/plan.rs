//! Query plan representation.

use gradoop_cypher::QueryGraph;

use crate::observe::{ExplainNode, PlannerTrace};

/// A node of the (bushy) query plan tree. Leaf nodes reference query
/// vertices/edges by index into the [`QueryGraph`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// `SelectAndProjectVertices` for one query vertex.
    ScanVertices {
        /// Query vertex index.
        vertex: usize,
    },
    /// `SelectAndProjectEdges` for one plain query edge.
    ScanEdges {
        /// Query edge index.
        edge: usize,
    },
    /// `JoinEmbeddings` on the given shared variables.
    Join {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
        /// Shared variables joined on.
        variables: Vec<String>,
    },
    /// `ExpandEmbeddings` for one variable-length query edge.
    Expand {
        /// Input providing the expansion's source column.
        input: Box<PlanNode>,
        /// Query edge index (must be variable-length).
        edge: usize,
    },
    /// `ExpandIntersect`: worst-case-optimal closure of a cycle. Binds one
    /// new vertex by intersecting the sorted adjacency lists of every
    /// already-bound endpoint of the closing edges — the intermediate a
    /// binary join would materialize for the open path never exists.
    ExpandIntersect {
        /// Input providing the bound endpoints.
        input: Box<PlanNode>,
        /// Query vertex index bound by the intersection.
        vertex: usize,
        /// Closing query edge indices (≥ 2), all incident to `vertex` with
        /// their other endpoint bound by `input`.
        edges: Vec<usize>,
    },
    /// `FilterEmbeddings` applying cross-variable clauses.
    Filter {
        /// Input.
        input: Box<PlanNode>,
        /// Indices into `QueryGraph::cross_clauses`.
        clauses: Vec<usize>,
    },
    /// Cartesian product of disconnected components.
    Cartesian {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
    },
    /// `ValueJoinEmbeddings`: joins disconnected components on equal
    /// property values (replaces Cartesian + Filter for one equality
    /// clause).
    ValueJoin {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
        /// `(variable, key)` on the left side.
        left_property: (String, String),
        /// `(variable, key)` on the right side.
        right_property: (String, String),
    },
}

/// A complete plan with its cost estimate and planner annotations.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Root of the plan tree.
    pub root: PlanNode,
    /// Estimated number of result embeddings.
    pub estimated_cardinality: f64,
    /// Annotated plan tree mirroring `root`: per-operator estimated
    /// cardinalities and predicted join strategies.
    pub explain: ExplainNode,
    /// The greedy planner's decision log.
    pub planner: PlannerTrace,
}

impl QueryPlan {
    /// Human-readable plan tree (one node per line, children indented),
    /// resolving leaf indices to query variables.
    pub fn describe(&self, query: &QueryGraph) -> String {
        let mut out = String::new();
        describe_node(&self.root, query, 0, &mut out);
        out.push_str(&format!(
            "estimated cardinality: {:.0}\n",
            self.estimated_cardinality
        ));
        out
    }
}

/// One-line label of a plan node (no children), resolving leaf indices to
/// query variables. Shared by [`QueryPlan::describe`] and the
/// [`ExplainNode`]s the planner builds alongside the plan.
pub(crate) fn node_label(node: &PlanNode, query: &QueryGraph) -> String {
    match node {
        PlanNode::ScanVertices { vertex } => {
            let v = &query.vertices[*vertex];
            let labels: Vec<&str> = v.labels.iter().map(|l| l.as_str()).collect();
            format!(
                "ScanVertices({}{}{})",
                v.variable,
                if labels.is_empty() { "" } else { ":" },
                labels.join("|")
            )
        }
        PlanNode::ScanEdges { edge } => {
            let e = &query.edges[*edge];
            let labels: Vec<&str> = e.labels.iter().map(|l| l.as_str()).collect();
            format!(
                "ScanEdges({}{}{})",
                e.variable,
                if labels.is_empty() { "" } else { ":" },
                labels.join("|")
            )
        }
        PlanNode::Join { variables, .. } => {
            format!("JoinEmbeddings(on {})", variables.join(", "))
        }
        PlanNode::Expand { edge, .. } => {
            let e = &query.edges[*edge];
            let (lower, upper) = e.range.unwrap_or((1, 1));
            format!("ExpandEmbeddings({} *{}..{})", e.variable, lower, upper)
        }
        PlanNode::ExpandIntersect { vertex, edges, .. } => {
            let v = &query.vertices[*vertex];
            let edge_vars: Vec<&str> = edges
                .iter()
                .map(|&e| query.edges[e].variable.as_str())
                .collect();
            format!(
                "ExpandIntersect(wco intersect {} = {})",
                v.variable,
                edge_vars.join("∩")
            )
        }
        PlanNode::Filter { clauses, .. } => {
            let texts: Vec<String> = clauses
                .iter()
                .map(|&i| query.cross_clauses[i].0.to_string())
                .collect();
            format!("FilterEmbeddings({})", texts.join(" AND "))
        }
        PlanNode::Cartesian { .. } => "CartesianProduct".to_string(),
        PlanNode::ValueJoin {
            left_property,
            right_property,
            ..
        } => format!(
            "ValueJoinEmbeddings({}.{} = {}.{})",
            left_property.0, left_property.1, right_property.0, right_property.1
        ),
    }
}

fn describe_node(node: &PlanNode, query: &QueryGraph, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    out.push_str(&format!("{indent}{}\n", node_label(node, query)));
    match node {
        PlanNode::Join { left, right, .. }
        | PlanNode::Cartesian { left, right }
        | PlanNode::ValueJoin { left, right, .. } => {
            describe_node(left, query, depth + 1, out);
            describe_node(right, query, depth + 1, out);
        }
        PlanNode::Expand { input, .. }
        | PlanNode::Filter { input, .. }
        | PlanNode::ExpandIntersect { input, .. } => {
            describe_node(input, query, depth + 1, out);
        }
        PlanNode::ScanVertices { .. } | PlanNode::ScanEdges { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradoop_cypher::parse;

    #[test]
    fn describe_renders_tree() {
        let query = QueryGraph::from_query(
            &parse("MATCH (p:Person)-[e:knows]->(q:Person) WHERE p.a <> q.a RETURN *").unwrap(),
        )
        .unwrap();
        let plan = QueryPlan {
            root: PlanNode::Filter {
                input: Box::new(PlanNode::Join {
                    left: Box::new(PlanNode::ScanVertices { vertex: 0 }),
                    right: Box::new(PlanNode::ScanEdges { edge: 0 }),
                    variables: vec!["p".to_string()],
                }),
                clauses: vec![0],
            },
            estimated_cardinality: 42.0,
            explain: ExplainNode::leaf("FilterEmbeddings(p.a <> q.a)", 42.0),
            planner: PlannerTrace::default(),
        };
        let text = plan.describe(&query);
        assert!(text.contains("ScanVertices(p:Person)"));
        assert!(text.contains("ScanEdges(e:knows)"));
        assert!(text.contains("JoinEmbeddings(on p)"));
        assert!(text.contains("FilterEmbeddings"));
        assert!(text.contains("estimated cardinality: 42"));
    }
}
