//! The always-on query event log.
//!
//! Every query the [`CypherEngine`](crate::CypherEngine) runs — successful,
//! rejected at parse/plan time, or failed at runtime — produces one
//! structured [`QueryLogRecord`], delivered to a pluggable
//! [`QueryLogSink`]. Records carry everything a fleet-level dashboard
//! needs to aggregate query behaviour without access to the data:
//!
//! * a **query-shape fingerprint**: the query text with literals
//!   normalized away plus a stable 64-bit hash of that shape, so repeated
//!   parameterizations of the same pattern group together;
//! * a **plan digest**: a stable hash of the annotated plan tree, so plan
//!   changes (statistics drift, optimizer changes) are visible as digest
//!   changes for an unchanged fingerprint;
//! * per-operator rows/bytes, the estimate-vs-actual q-error,
//!   recovery/steal counters, and both wall-clock and simulated time;
//! * the [`QueryOutcome`]: `ok`, `error` (parse/plan rejection) or
//!   `faulted` (runtime failure after retry exhaustion).
//!
//! The engine defaults to the process-wide [`global_query_log`] (an
//! in-memory ring of recent records); install a [`JsonlQueryLog`] via
//! [`CypherEngine::with_query_log`](crate::CypherEngine::with_query_log)
//! to stream records to a JSONL file.

use std::io::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

use gradoop_dataflow::{JsonValue, SpanRecord, StageReport, TraceSink};

use crate::observe::{Profile, ProfileNode};

/// How a query run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOutcome {
    /// The query executed and returned a result.
    Ok,
    /// The query was rejected before execution (parse, query-graph or
    /// planning error).
    Error,
    /// Execution started but failed at runtime (fault-tolerance budget
    /// exhausted); no result was returned.
    Faulted,
}

impl QueryOutcome {
    /// Stable lower-case name used in text and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            QueryOutcome::Ok => "ok",
            QueryOutcome::Error => "error",
            QueryOutcome::Faulted => "faulted",
        }
    }
}

/// Rows and bytes produced by one operator (or dataflow stage) of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorLogEntry {
    /// Operator or stage label.
    pub name: String,
    /// Rows produced.
    pub rows_out: u64,
    /// Bytes produced (embedding bytes for profiled operators, shuffled
    /// bytes for raw stages).
    pub bytes: u64,
}

/// One structured record of the query event log.
#[derive(Debug, Clone)]
pub struct QueryLogRecord {
    /// The raw query text.
    pub query: String,
    /// The query text with literals normalized away (see
    /// [`normalize_query_shape`]).
    pub shape: String,
    /// Stable 64-bit FNV-1a hash of [`shape`](QueryLogRecord::shape), hex.
    pub fingerprint: String,
    /// Stable hash of the annotated plan tree, hex. Empty when planning
    /// failed before a plan existed.
    pub plan_digest: String,
    /// `Some("hit")`/`Some("miss")` when the engine consulted a
    /// [`PlanCache`](crate::plancache::PlanCache) for this run; `None`
    /// when no cache was installed (or the run took the pipeline path,
    /// which plans per stage and is not cached).
    pub plan_cache: Option<&'static str>,
    /// How the run ended.
    pub outcome: QueryOutcome,
    /// Human-readable error when `outcome != Ok`.
    pub error: Option<String>,
    /// Final match count (0 unless `outcome == Ok`).
    pub matches: u64,
    /// Wall-clock seconds from plan to result.
    pub wall_seconds: f64,
    /// Simulated seconds charged by the run.
    pub simulated_seconds: f64,
    /// Per-operator rows/bytes (stage-level for plain `execute`,
    /// operator-level for `profile`).
    pub operators: Vec<OperatorLogEntry>,
    /// Worst estimate-vs-actual q-error observed (1.0 when unknown).
    pub max_q_error: f64,
    /// Recovery attempts consumed by the run.
    pub recovery_attempts: u64,
    /// Morsels that ran on a worker other than their partition's owner.
    pub stolen_morsels: u64,
    /// Peak transient bytes on the most loaded worker.
    pub peak_memory_bytes: u64,
}

impl QueryLogRecord {
    /// The record as a JSON document (one JSONL line when compacted).
    pub fn to_json_value(&self) -> JsonValue {
        let mut pairs = vec![
            ("query", JsonValue::string(self.query.clone())),
            ("shape", JsonValue::string(self.shape.clone())),
            ("fingerprint", JsonValue::string(self.fingerprint.clone())),
            ("plan_digest", JsonValue::string(self.plan_digest.clone())),
            ("outcome", JsonValue::string(self.outcome.name())),
        ];
        if let Some(plan_cache) = self.plan_cache {
            pairs.push(("plan_cache", JsonValue::string(plan_cache)));
        }
        if let Some(error) = &self.error {
            pairs.push(("error", JsonValue::string(error.clone())));
        }
        pairs.push(("matches", JsonValue::Number(self.matches as f64)));
        pairs.push(("wall_seconds", JsonValue::Number(self.wall_seconds)));
        pairs.push((
            "simulated_seconds",
            JsonValue::Number(self.simulated_seconds),
        ));
        pairs.push(("max_q_error", JsonValue::Number(self.max_q_error)));
        pairs.push((
            "recovery_attempts",
            JsonValue::Number(self.recovery_attempts as f64),
        ));
        pairs.push((
            "stolen_morsels",
            JsonValue::Number(self.stolen_morsels as f64),
        ));
        pairs.push((
            "peak_memory_bytes",
            JsonValue::Number(self.peak_memory_bytes as f64),
        ));
        pairs.push((
            "operators",
            JsonValue::Array(
                self.operators
                    .iter()
                    .map(|op| {
                        JsonValue::object(vec![
                            ("name", JsonValue::string(op.name.clone())),
                            ("rows_out", JsonValue::Number(op.rows_out as f64)),
                            ("bytes", JsonValue::Number(op.bytes as f64)),
                        ])
                    })
                    .collect(),
            ),
        ));
        JsonValue::object(pairs)
    }

    /// The record as one compact JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        self.to_json_value().to_json()
    }
}

/// Receiver for query log records. Implementations must be thread-safe.
pub trait QueryLogSink: Send + Sync {
    /// Called once per finished (or rejected) query.
    fn log(&self, record: &QueryLogRecord);
}

/// Maximum records the in-memory log retains (oldest evicted first).
pub const MEMORY_LOG_CAPACITY: usize = 1024;

/// A [`QueryLogSink`] that buffers the most recent records in memory —
/// the engine's always-on default.
#[derive(Default)]
pub struct MemoryQueryLog {
    records: Mutex<Vec<QueryLogRecord>>,
}

impl MemoryQueryLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        MemoryQueryLog::default()
    }

    /// Snapshot of the retained records, oldest first.
    pub fn snapshot(&self) -> Vec<QueryLogRecord> {
        self.records.lock().unwrap().clone()
    }

    /// Removes and returns the retained records, oldest first.
    pub fn drain(&self) -> Vec<QueryLogRecord> {
        std::mem::take(&mut *self.records.lock().unwrap())
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap().len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl QueryLogSink for MemoryQueryLog {
    fn log(&self, record: &QueryLogRecord) {
        let mut records = self.records.lock().unwrap();
        if records.len() >= MEMORY_LOG_CAPACITY {
            records.remove(0);
        }
        records.push(record.clone());
    }
}

/// A [`QueryLogSink`] that appends one JSONL line per record to a file.
/// Write errors are swallowed: telemetry must never fail a query.
pub struct JsonlQueryLog {
    file: Mutex<std::fs::File>,
}

impl JsonlQueryLog {
    /// Opens (creating or appending to) the JSONL file at `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(JsonlQueryLog {
            file: Mutex::new(file),
        })
    }
}

impl QueryLogSink for JsonlQueryLog {
    fn log(&self, record: &QueryLogRecord) {
        let mut file = self.file.lock().unwrap();
        let _ = writeln!(file, "{}", record.to_jsonl());
    }
}

/// The process-wide default query log every engine reports into unless
/// [`CypherEngine::with_query_log`](crate::CypherEngine::with_query_log)
/// installs another sink.
pub fn global_query_log() -> Arc<MemoryQueryLog> {
    static GLOBAL: OnceLock<Arc<MemoryQueryLog>> = OnceLock::new();
    GLOBAL
        .get_or_init(|| Arc::new(MemoryQueryLog::new()))
        .clone()
}

/// A [`TraceSink`] that forwards every event to an optional downstream
/// sink *and* a collector — how the engine observes per-stage rows/bytes
/// for the query log without clobbering a user-installed sink.
pub struct TeeSink {
    downstream: Option<Arc<dyn TraceSink>>,
    collector: Arc<dyn TraceSink>,
}

impl TeeSink {
    /// Creates a tee over `downstream` (kept, may be `None`) and
    /// `collector` (always fed).
    pub fn new(downstream: Option<Arc<dyn TraceSink>>, collector: Arc<dyn TraceSink>) -> Self {
        TeeSink {
            downstream,
            collector,
        }
    }
}

impl TraceSink for TeeSink {
    fn on_stage(&self, report: &StageReport) {
        if let Some(downstream) = &self.downstream {
            downstream.on_stage(report);
        }
        self.collector.on_stage(report);
    }

    fn on_span(&self, span: &SpanRecord) {
        if let Some(downstream) = &self.downstream {
            downstream.on_span(span);
        }
        self.collector.on_span(span);
    }
}

/// Replaces string, numeric and `$parameter` literals with `?` and
/// collapses whitespace, so the same query shape fingerprints identically
/// across parameterizations: `MATCH (a {age: 42})`, `MATCH (a {age: 7})`
/// and `MATCH (a {age: $a})` all normalize to the same text — the property
/// a plan cache keyed on the fingerprint needs to hit across users
/// regardless of whether they inline values or bind parameters.
///
/// Numeric literals cover every spelling the lexer accepts: integers,
/// floats, leading-dot floats (`.5`) and scientific notation with an
/// optional exponent sign (`1e9`, `1.5E+10`). Range bounds of
/// variable-length paths normalize one placeholder per bound (`*1..10` →
/// `*?..?`), never swallowing the `..` operator.
pub fn normalize_query_shape(query: &str) -> String {
    let mut out = String::with_capacity(query.len());
    let mut chars = query.chars().peekable();
    let mut pending_space = false;
    while let Some(c) = chars.next() {
        if c.is_whitespace() {
            pending_space = true;
            continue;
        }
        if pending_space {
            if !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
        }
        match c {
            '\'' | '"' => {
                // Quoted string literal: skip to the matching quote,
                // honouring backslash escapes.
                while let Some(&next) = chars.peek() {
                    chars.next();
                    if next == '\\' {
                        chars.next();
                    } else if next == c {
                        break;
                    }
                }
                out.push('?');
            }
            '$' => {
                // `$name` parameter: one placeholder, same as an inline
                // literal in that position, so parameterized and literal
                // spellings of a shape share a fingerprint.
                let mut consumed = false;
                while let Some(&next) = chars.peek() {
                    if next.is_ascii_alphanumeric() || next == '_' {
                        chars.next();
                        consumed = true;
                    } else {
                        break;
                    }
                }
                out.push(if consumed { '?' } else { c });
            }
            '0'..='9' => {
                // Numeric literal (possibly float). Identifier-embedded
                // digits are kept: only a digit starting a token counts.
                let prev = out.chars().last();
                let in_identifier =
                    matches!(prev, Some(p) if p.is_ascii_alphanumeric() || p == '_');
                if in_identifier {
                    out.push(c);
                } else {
                    consume_number_tail(&mut chars);
                    out.push('?');
                }
            }
            '.' => {
                // Leading-dot float (`.5`): a literal only when the dot
                // starts a token — after an identifier it is property
                // access, after another dot it is the `..` range operator.
                let prev = out.chars().last();
                let starts_token = !matches!(
                    prev,
                    Some(p) if p.is_ascii_alphanumeric() || p == '_' || p == '.'
                );
                if starts_token && chars.peek().is_some_and(char::is_ascii_digit) {
                    consume_number_tail(&mut chars);
                    out.push('?');
                } else {
                    out.push(c);
                }
            }
            _ => out.push(c),
        }
    }
    collapse_list_literals(&out)
}

/// Consumes the remainder of a numeric literal whose first character was
/// already taken: digits, a fractional part, and an optional exponent with
/// sign. Stops before a `..` so range bounds stay separate tokens.
fn consume_number_tail(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    let mut seen_dot = false;
    while let Some(&next) = chars.peek() {
        if next.is_ascii_digit() {
            chars.next();
        } else if next == '.' && !seen_dot {
            // Peek past the dot without consuming: `1..5` must leave
            // the range operator intact, so only a `.` followed by a
            // digit extends the literal.
            let mut ahead = chars.clone();
            ahead.next();
            if ahead.peek().is_some_and(char::is_ascii_digit) {
                chars.next();
                seen_dot = true;
            } else {
                break;
            }
        } else if next == 'e' || next == 'E' {
            // Exponent: `e` / `E`, optional sign, at least one digit.
            // Anything else means the `e` starts an identifier (`1em`
            // cannot occur in valid Cypher, but stay conservative).
            let mut ahead = chars.clone();
            ahead.next();
            let after = ahead.peek().copied();
            let signed = matches!(after, Some('+') | Some('-'));
            if signed {
                ahead.next();
            }
            if ahead.peek().is_some_and(char::is_ascii_digit) {
                chars.next(); // e
                if signed {
                    chars.next(); // sign
                }
                while chars.peek().is_some_and(char::is_ascii_digit) {
                    chars.next();
                }
            }
            break;
        } else {
            break;
        }
    }
}

/// Collapses normalized literal *lists* (`[?, ?, ?]` from `[1, 2, 3]`) to a
/// single `[?]` placeholder, so `UNWIND [1, 2]` and `UNWIND [7, 8, 9]`
/// share one fingerprint regardless of list length. Only runs inside
/// square brackets: `RETURN ?, ?` (two projection items) and `RETURN ?`
/// (one) must keep distinct shapes — the old text-global collapse conflated
/// them and collided distinct plans in the cache.
fn collapse_list_literals(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = String::with_capacity(text.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'[' {
            // Scan ahead: does this bracket hold only `?` placeholders
            // separated by commas (whitespace allowed)?
            let mut j = i + 1;
            let mut placeholders = 0usize;
            let mut expect_placeholder = true;
            let mut collapsible = false;
            while j < bytes.len() {
                match bytes[j] {
                    b' ' => {}
                    b'?' if expect_placeholder => {
                        placeholders += 1;
                        expect_placeholder = false;
                    }
                    b',' if !expect_placeholder => expect_placeholder = true,
                    b']' if !expect_placeholder && placeholders > 0 => {
                        collapsible = true;
                        break;
                    }
                    _ => break,
                }
                j += 1;
            }
            if collapsible {
                out.push_str("[?]");
                i = j + 1;
                continue;
            }
        }
        let c = text[i..].chars().next().expect("in-bounds char");
        out.push(c);
        i += c.len_utf8();
    }
    out
}

/// Stable 64-bit FNV-1a hash, rendered as 16 hex digits. Used for both
/// query fingerprints and plan digests so values are reproducible across
/// runs, platforms and Rust versions.
pub fn stable_digest(text: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// Builds the per-operator rows/bytes list and worst q-error from a
/// profiled plan tree.
pub(crate) fn operators_from_profile(root: &ProfileNode) -> (Vec<OperatorLogEntry>, f64) {
    fn walk(node: &ProfileNode, out: &mut Vec<OperatorLogEntry>, worst: &mut f64) {
        out.push(OperatorLogEntry {
            name: node.operator.clone(),
            rows_out: node.rows_out,
            bytes: node.embedding_bytes,
        });
        if node.estimate_error > *worst {
            *worst = node.estimate_error;
        }
        for child in &node.children {
            walk(child, out, worst);
        }
    }
    let mut out = Vec::new();
    let mut worst = 1.0;
    walk(root, &mut out, &mut worst);
    (out, worst)
}

/// Builds a query log record from a finished [`Profile`].
pub(crate) fn record_from_profile(
    query_text: &str,
    plan_digest: String,
    profile: &Profile,
    stolen_morsels: u64,
) -> QueryLogRecord {
    let shape = normalize_query_shape(query_text);
    let fingerprint = stable_digest(&shape);
    let (operators, max_q_error) = operators_from_profile(&profile.root);
    QueryLogRecord {
        query: query_text.to_string(),
        shape,
        fingerprint,
        plan_digest,
        plan_cache: None,
        outcome: QueryOutcome::Ok,
        error: None,
        matches: profile.matches,
        wall_seconds: profile.wall_seconds,
        simulated_seconds: profile.simulated_seconds,
        operators,
        max_q_error,
        recovery_attempts: profile.recovery_attempts,
        stolen_morsels,
        peak_memory_bytes: profile.peak_memory_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_normalize_literals_and_whitespace() {
        let a = normalize_query_shape(
            "MATCH (p:Person {name: 'Alice', age: 42})-->(b)\n  RETURN p.name",
        );
        let b =
            normalize_query_shape("MATCH (p:Person {name: \"Bob\", age: 7})-->(b) RETURN p.name");
        assert_eq!(a, b);
        assert_eq!(a, "MATCH (p:Person {name: ?, age: ?})-->(b) RETURN p.name");
        // Identifier-embedded digits are not literals.
        assert_eq!(normalize_query_shape("RETURN a1.x"), "RETURN a1.x");
        // Escaped quotes do not end the literal early.
        assert_eq!(
            normalize_query_shape(r#"MATCH (a {s: "x\"y"}) RETURN a"#),
            "MATCH (a {s: ?}) RETURN a"
        );
    }

    #[test]
    fn shapes_collapse_literal_lists_and_paging_literals() {
        // List literals of different lengths share one fingerprint…
        assert_eq!(
            normalize_query_shape("UNWIND [1, 2, 3] AS x RETURN x"),
            normalize_query_shape("UNWIND [70,80] AS x RETURN x"),
        );
        assert_eq!(
            normalize_query_shape("UNWIND [1, 2, 3] AS x RETURN x"),
            "UNWIND [?] AS x RETURN x"
        );
        // …as do SKIP/LIMIT with different cut-offs.
        assert_eq!(
            normalize_query_shape("MATCH (a) RETURN a ORDER BY a.name SKIP 10 LIMIT 5"),
            normalize_query_shape("MATCH (a) RETURN a ORDER BY a.name SKIP 2 LIMIT 700"),
        );
        // Property-map placeholders keep their keys: no over-collapsing.
        assert_eq!(
            normalize_query_shape("MATCH (p {name: 'Al', age: 4}) RETURN p"),
            "MATCH (p {name: ?, age: ?}) RETURN p"
        );
    }

    #[test]
    fn shapes_do_not_collapse_outside_list_literals() {
        // Regression: the old text-global `?, ?` collapse conflated a
        // two-item projection with a one-item projection, colliding
        // distinct plans under one fingerprint.
        assert_ne!(
            normalize_query_shape("RETURN 1, 2"),
            normalize_query_shape("RETURN 1"),
        );
        assert_eq!(normalize_query_shape("RETURN 1, 2"), "RETURN ?, ?");
        assert_ne!(
            normalize_query_shape("MATCH (n) RETURN n.a, n.b"),
            normalize_query_shape("MATCH (n) RETURN n.a"),
        );
        // Literal argument lists outside brackets keep their arity too.
        assert_ne!(
            normalize_query_shape("MATCH (a) WHERE a.x = 1 OR a.y = 2 RETURN a"),
            normalize_query_shape("MATCH (a) WHERE a.x = 1 RETURN a"),
        );
        // Inside brackets the collapse still applies, but a non-literal
        // element keeps the list expanded.
        assert_eq!(
            normalize_query_shape("UNWIND [1, x, 3] AS y RETURN y"),
            "UNWIND [?, x, ?] AS y RETURN y"
        );
    }

    #[test]
    fn shapes_normalize_scientific_and_leading_dot_numbers() {
        // Regression: `1e9` used to normalize to `?e9` — the exponent
        // leaked into the shape, so equal shapes fingerprinted apart.
        assert_eq!(
            normalize_query_shape("MATCH (a) WHERE a.x > 1e9 RETURN a"),
            normalize_query_shape("MATCH (a) WHERE a.x > 2e10 RETURN a"),
        );
        assert_eq!(
            normalize_query_shape("RETURN 1e9"),
            normalize_query_shape("RETURN 1.5E+10"),
        );
        assert_eq!(normalize_query_shape("RETURN 2e-3"), "RETURN ?");
        // Regression: leading-dot floats were not normalized at all.
        assert_eq!(
            normalize_query_shape("MATCH (a) WHERE a.x > .5 RETURN a"),
            normalize_query_shape("MATCH (a) WHERE a.x > 0.7 RETURN a"),
        );
        // Property access dots are untouched.
        assert_eq!(normalize_query_shape("RETURN a.b5"), "RETURN a.b5");
        // Var-length range bounds normalize per bound, keeping `..`.
        assert_eq!(
            normalize_query_shape("MATCH (a)-[*0..10]->(b) RETURN a"),
            "MATCH (a)-[*?..?]->(b) RETURN a"
        );
        assert_eq!(
            normalize_query_shape("MATCH (a)-[*0..10]->(b) RETURN a"),
            normalize_query_shape("MATCH (a)-[*2..5]->(b) RETURN a"),
        );
    }

    #[test]
    fn shapes_normalize_parameters_like_inline_literals() {
        // The cache-hit-across-users property: a `$param` spelling and an
        // inline-literal spelling of the same shape share one entry.
        assert_eq!(
            normalize_query_shape("MATCH (p:Person {age: $a}) RETURN p"),
            normalize_query_shape("MATCH (p:Person {age: 42}) RETURN p"),
        );
        assert_eq!(
            normalize_query_shape("MATCH (p) WHERE p.name = $name RETURN p"),
            normalize_query_shape("MATCH (p) WHERE p.name = 'Alice' RETURN p"),
        );
        assert_eq!(
            normalize_query_shape("MATCH (p {age: $a}) RETURN p"),
            "MATCH (p {age: ?}) RETURN p"
        );
        // Distinct parameters in distinct positions keep the arity.
        assert_ne!(
            normalize_query_shape("RETURN $a, $b"),
            normalize_query_shape("RETURN $a"),
        );
        // A bare `$` that is not a parameter survives unchanged.
        assert_eq!(normalize_query_shape("RETURN '$'"), "RETURN ?");
    }

    #[test]
    fn digests_are_stable_and_distinct() {
        assert_eq!(stable_digest("abc"), stable_digest("abc"));
        assert_ne!(stable_digest("abc"), stable_digest("abd"));
        assert_eq!(stable_digest("").len(), 16);
        // Known FNV-1a vector: empty input is the offset basis.
        assert_eq!(stable_digest(""), "cbf29ce484222325");
    }

    #[test]
    fn memory_log_retains_and_evicts() {
        let log = MemoryQueryLog::new();
        let record = QueryLogRecord {
            query: "RETURN 1".into(),
            shape: "RETURN ?".into(),
            fingerprint: stable_digest("RETURN ?"),
            plan_digest: String::new(),
            plan_cache: None,
            outcome: QueryOutcome::Ok,
            error: None,
            matches: 1,
            wall_seconds: 0.0,
            simulated_seconds: 0.0,
            operators: vec![],
            max_q_error: 1.0,
            recovery_attempts: 0,
            stolen_morsels: 0,
            peak_memory_bytes: 0,
        };
        for _ in 0..MEMORY_LOG_CAPACITY + 5 {
            log.log(&record);
        }
        assert_eq!(log.len(), MEMORY_LOG_CAPACITY);
        assert!(!log.is_empty());
        assert_eq!(log.drain().len(), MEMORY_LOG_CAPACITY);
        assert!(log.is_empty());
    }

    #[test]
    fn records_render_as_parseable_jsonl() {
        let record = QueryLogRecord {
            query: "MATCH (a) RETURN a".into(),
            shape: "MATCH (a) RETURN a".into(),
            fingerprint: stable_digest("MATCH (a) RETURN a"),
            plan_digest: stable_digest("ScanVertices(a)"),
            plan_cache: Some("hit"),
            outcome: QueryOutcome::Faulted,
            error: Some("stage `join` exhausted retries".into()),
            matches: 0,
            wall_seconds: 0.01,
            simulated_seconds: 2.5,
            operators: vec![OperatorLogEntry {
                name: "ScanVertices(a)".into(),
                rows_out: 10,
                bytes: 240,
            }],
            max_q_error: 3.5,
            recovery_attempts: 2,
            stolen_morsels: 4,
            peak_memory_bytes: 4096,
        };
        let line = record.to_jsonl();
        assert!(!line.contains('\n'));
        let parsed = JsonValue::parse(&line).expect("JSONL line parses");
        assert!(parsed.semantically_eq(&record.to_json_value()));
        assert_eq!(
            parsed.get("outcome").and_then(JsonValue::as_str),
            Some("faulted")
        );
        assert_eq!(
            parsed.get("plan_cache").and_then(JsonValue::as_str),
            Some("hit")
        );
        assert_eq!(
            parsed
                .get("operators")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(1)
        );
    }

    #[test]
    fn jsonl_sink_appends_one_line_per_record() {
        let dir = std::env::temp_dir().join("gradoop-querylog-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("log-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let sink = JsonlQueryLog::create(&path).unwrap();
            let record = QueryLogRecord {
                query: "RETURN 1".into(),
                shape: "RETURN ?".into(),
                fingerprint: stable_digest("RETURN ?"),
                plan_digest: String::new(),
                plan_cache: None,
                outcome: QueryOutcome::Ok,
                error: None,
                matches: 1,
                wall_seconds: 0.0,
                simulated_seconds: 0.0,
                operators: vec![],
                max_q_error: 1.0,
                recovery_attempts: 0,
                stolen_morsels: 0,
                peak_memory_bytes: 0,
            };
            sink.log(&record);
            sink.log(&record);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(JsonValue::parse(line).is_ok());
        }
        let _ = std::fs::remove_file(&path);
    }
}
