//! Single-machine reference matcher.
//!
//! A naive backtracking pattern matcher with exactly the engine's semantics
//! (three-valued Kleene predicates, user-selected morphisms, paths with
//! alternating `via` identifiers). It serves two purposes:
//!
//! * a correctness **oracle** — property tests and the conformance fuzzer
//!   compare the distributed engine's result set against it on random
//!   graphs and queries;
//! * the single-machine **baseline** of the benchmark suite (the role a
//!   graph database like Neo4j plays in the paper's motivation).
//!
//! To stay independent of the engine's CNF machinery, the matcher
//! additionally re-evaluates the query's retained `WHERE` expression tree
//! ([`QueryGraph::where_expression`]) with the direct Kleene evaluator
//! [`eval_expression`] on every candidate match. The per-element CNF
//! predicates still prune the backtracking (they are semantics-preserving),
//! but a match is only emitted when the original expression is exactly
//! `true` — so an NNF/CNF/split bug that makes the engine *admit* a row
//! Cypher would filter shows up as a divergence from this matcher.

use std::collections::HashMap;

use gradoop_cypher::ast::{
    MatchStage, Pipeline, Projection, ProjectionExpr, ProjectionItem, Query, ReturnClause,
    ReturnItem, Stage, UnwindSource, UnwindStage,
};
use gradoop_cypher::predicates::eval::{
    eval_clause, eval_expression, eval_predicate, Bindings, SingleElement,
};
use gradoop_cypher::{QueryEdge, QueryGraph};
use gradoop_epgm::{Edge, Label, LogicalGraph, PropertyValue, Vertex};

use crate::embedding::Entry;
use crate::matching::{MatchingConfig, MorphismType};
use crate::values::{
    agg_arg_value, canonical_row, canonical_string, cmp_rows, compare_rows_by_keys, fold_aggregate,
    property_to_value, Row, RowScope, Snapshot, Value,
};

/// One match found by the reference matcher: variable → entry.
pub type ReferenceMatch = HashMap<String, Entry>;

/// In-memory snapshot of a data graph, indexed for backtracking.
struct GraphIndex {
    vertices: HashMap<u64, Vertex>,
    edges: Vec<Edge>,
    out_edges: HashMap<u64, Vec<usize>>,
}

impl GraphIndex {
    fn of(graph: &LogicalGraph) -> Self {
        let vertices: HashMap<u64, Vertex> = graph
            .vertices()
            .collect()
            .into_iter()
            .map(|v| (v.id.0, v))
            .collect();
        let edges = graph.edges().collect();
        let mut out_edges: HashMap<u64, Vec<usize>> = HashMap::new();
        for (index, edge) in edges.iter().enumerate() {
            out_edges.entry(edge.source.0).or_default().push(index);
        }
        GraphIndex {
            vertices,
            edges,
            out_edges,
        }
    }
}

struct Matcher<'a> {
    graph: &'a GraphIndex,
    query: &'a QueryGraph,
    config: MatchingConfig,
    /// Vertex variable → data vertex id.
    vertex_bindings: HashMap<String, u64>,
    /// Edge variable → id or via path.
    edge_bindings: HashMap<String, Entry>,
    /// All vertex ids currently bound (columns + path intermediates), for
    /// vertex isomorphism.
    used_vertices: Vec<u64>,
    /// All edge ids currently bound, for edge isomorphism.
    used_edges: Vec<u64>,
    results: Vec<ReferenceMatch>,
}

/// Runs the reference matcher, returning all matches.
pub fn reference_match(
    graph: &LogicalGraph,
    query: &QueryGraph,
    config: &MatchingConfig,
) -> Vec<ReferenceMatch> {
    let index = GraphIndex::of(graph);
    let mut matcher = Matcher {
        graph: &index,
        query,
        config: *config,
        vertex_bindings: HashMap::new(),
        edge_bindings: HashMap::new(),
        used_vertices: Vec::new(),
        used_edges: Vec::new(),
        results: Vec::new(),
    };
    matcher.solve_edges(0);
    matcher.results
}

impl Matcher<'_> {
    fn vertex_ok(&self, query_vertex: usize, vertex: &Vertex) -> bool {
        let qv = &self.query.vertices[query_vertex];
        if !qv.labels.is_empty() && !qv.labels.contains(&vertex.label) {
            return false;
        }
        let bindings = SingleElement {
            variable: &qv.variable,
            label: &vertex.label,
            properties: &vertex.properties,
            id: vertex.id.0,
        };
        eval_predicate(&qv.predicates, &bindings)
    }

    fn edge_ok(&self, query_edge: &QueryEdge, edge: &Edge) -> bool {
        if !query_edge.labels.is_empty() && !query_edge.labels.contains(&edge.label) {
            return false;
        }
        let bindings = SingleElement {
            variable: &query_edge.variable,
            label: &edge.label,
            properties: &edge.properties,
            id: edge.id.0,
        };
        eval_predicate(&query_edge.predicates, &bindings)
    }

    /// Binds a vertex variable if compatible; returns whether binding was
    /// fresh (must be undone) or `None` if incompatible.
    fn bind_vertex(&mut self, query_vertex: usize, id: u64) -> Option<bool> {
        let variable = self.query.vertices[query_vertex].variable.clone();
        if let Some(&bound) = self.vertex_bindings.get(&variable) {
            return (bound == id).then_some(false);
        }
        let vertex = self.graph.vertices.get(&id)?;
        if !self.vertex_ok(query_vertex, vertex) {
            return None;
        }
        if self.config.vertices == MorphismType::Isomorphism && self.used_vertices.contains(&id) {
            return None;
        }
        self.vertex_bindings.insert(variable, id);
        self.used_vertices.push(id);
        Some(true)
    }

    fn unbind_vertex(&mut self, query_vertex: usize) {
        let variable = &self.query.vertices[query_vertex].variable;
        if let Some(id) = self.vertex_bindings.remove(variable) {
            let position = self
                .used_vertices
                .iter()
                .rposition(|&v| v == id)
                .expect("bound vertex is used");
            self.used_vertices.remove(position);
        }
    }

    fn solve_edges(&mut self, edge_index: usize) {
        if edge_index == self.query.edges.len() {
            self.solve_isolated_vertices(0);
            return;
        }
        let edge = self.query.edges[edge_index].clone();
        if edge.is_variable_length() {
            self.solve_path_edge(edge_index, &edge);
        } else {
            self.solve_plain_edge(edge_index, &edge);
        }
    }

    fn solve_plain_edge(&mut self, edge_index: usize, query_edge: &QueryEdge) {
        for data_index in 0..self.graph.edges.len() {
            let edge = self.graph.edges[data_index].clone();
            if !self.edge_ok(query_edge, &edge) {
                continue;
            }
            if self.config.edges == MorphismType::Isomorphism
                && self.used_edges.contains(&edge.id.0)
            {
                continue;
            }
            let mut orientations = vec![(edge.source.0, edge.target.0)];
            if query_edge.undirected && edge.source != edge.target {
                orientations.push((edge.target.0, edge.source.0));
            }
            for (source, target) in orientations {
                // Loop query edges need a loop data edge.
                if query_edge.source == query_edge.target && source != target {
                    continue;
                }
                let Some(fresh_source) = self.bind_vertex(query_edge.source, source) else {
                    continue;
                };
                if let Some(fresh_target) = self.bind_vertex(query_edge.target, target) {
                    self.edge_bindings
                        .insert(query_edge.variable.clone(), Entry::Id(edge.id.0));
                    self.used_edges.push(edge.id.0);
                    self.solve_edges(edge_index + 1);
                    self.used_edges.pop();
                    self.edge_bindings.remove(&query_edge.variable);
                    if fresh_target {
                        self.unbind_vertex(query_edge.target);
                    }
                }
                if fresh_source {
                    self.unbind_vertex(query_edge.source);
                }
            }
        }
    }

    fn solve_path_edge(&mut self, edge_index: usize, query_edge: &QueryEdge) {
        let (lower, upper) = query_edge.range.expect("variable-length edge");
        // Enumerate start vertices: the bound source, or every vertex.
        let source_variable = &self.query.vertices[query_edge.source].variable;
        let starts: Vec<u64> = match self.vertex_bindings.get(source_variable) {
            Some(&id) => vec![id],
            None => self.graph.vertices.keys().copied().collect(),
        };
        for start in starts {
            let Some(fresh_start) = self.bind_vertex(query_edge.source, start) else {
                continue;
            };
            self.extend_path(edge_index, query_edge, start, Vec::new(), lower, upper);
            if fresh_start {
                self.unbind_vertex(query_edge.source);
            }
        }
    }

    /// Depth-first path extension from `end`, having already traversed
    /// `via` (alternating edge, vertex, ... ids from the path's start).
    fn extend_path(
        &mut self,
        edge_index: usize,
        query_edge: &QueryEdge,
        end: u64,
        via: Vec<u64>,
        lower: usize,
        upper: usize,
    ) {
        let hops = via.len().div_ceil(2);
        if hops >= lower {
            self.emit_path(edge_index, query_edge, end, &via);
        }
        if hops == upper {
            return;
        }
        // 1-hop extension in the allowed orientations.
        let mut candidates: Vec<(u64, u64)> = Vec::new(); // (edge id, next vertex)
        if let Some(indices) = self.graph.out_edges.get(&end) {
            for &index in indices {
                let edge = &self.graph.edges[index];
                if self.edge_ok(query_edge, edge) {
                    candidates.push((edge.id.0, edge.target.0));
                }
            }
        }
        if query_edge.undirected {
            for edge in &self.graph.edges {
                if edge.target.0 == end
                    && edge.source.0 != edge.target.0
                    && self.edge_ok(query_edge, edge)
                {
                    candidates.push((edge.id.0, edge.source.0));
                }
            }
        }
        for (edge_id, next) in candidates {
            if self.config.edges == MorphismType::Isomorphism {
                let in_path = via.iter().step_by(2).any(|&e| e == edge_id);
                if in_path || self.used_edges.contains(&edge_id) {
                    continue;
                }
            }
            if self.config.vertices == MorphismType::Isomorphism && !via.is_empty() {
                // `end` becomes an intermediate vertex: it must not repeat
                // any path intermediate nor any already-bound vertex
                // (columns or other paths' intermediates).
                let in_path = via.iter().skip(1).step_by(2).any(|&v| v == end);
                if in_path || self.used_vertices.contains(&end) {
                    continue;
                }
            }
            let mut extended = via.clone();
            if extended.is_empty() {
                extended.push(edge_id);
            } else {
                extended.push(end);
                extended.push(edge_id);
            }
            self.extend_path(edge_index, query_edge, next, extended, lower, upper);
        }
    }

    fn emit_path(&mut self, edge_index: usize, query_edge: &QueryEdge, end: u64, via: &[u64]) {
        let Some(fresh_end) = self.bind_vertex(query_edge.target, end) else {
            return;
        };
        // Register path contents in the uniqueness sets so later edges see
        // them; the final morphism check is implicit in these sets.
        let path_edges: Vec<u64> = via.iter().step_by(2).copied().collect();
        let path_vertices: Vec<u64> = via.iter().skip(1).step_by(2).copied().collect();
        let mut valid = true;
        if self.config.edges == MorphismType::Isomorphism {
            let mut all = path_edges.clone();
            all.sort_unstable();
            if all.windows(2).any(|w| w[0] == w[1]) {
                valid = false;
            }
            if path_edges.iter().any(|e| self.used_edges.contains(e)) {
                valid = false;
            }
        }
        if valid && self.config.vertices == MorphismType::Isomorphism {
            let mut all = path_vertices.clone();
            all.sort_unstable();
            if all.windows(2).any(|w| w[0] == w[1]) {
                valid = false;
            }
            if path_vertices.iter().any(|v| self.used_vertices.contains(v)) {
                valid = false;
            }
        }
        if valid {
            self.used_edges.extend(&path_edges);
            self.used_vertices.extend(&path_vertices);
            self.edge_bindings
                .insert(query_edge.variable.clone(), Entry::Path(via.to_vec()));
            self.solve_edges(edge_index + 1);
            self.edge_bindings.remove(&query_edge.variable);
            self.used_vertices
                .truncate(self.used_vertices.len() - path_vertices.len());
            self.used_edges
                .truncate(self.used_edges.len() - path_edges.len());
        }
        if fresh_end {
            self.unbind_vertex(query_edge.target);
        }
    }

    fn solve_isolated_vertices(&mut self, from: usize) {
        // Bind any query vertex not yet bound (isolated components).
        let next = (from..self.query.vertices.len()).find(|&i| {
            !self
                .vertex_bindings
                .contains_key(&self.query.vertices[i].variable)
        });
        let Some(vertex_index) = next else {
            self.emit_match();
            return;
        };
        let ids: Vec<u64> = self.graph.vertices.keys().copied().collect();
        for id in ids {
            if let Some(fresh) = self.bind_vertex(vertex_index, id) {
                self.solve_isolated_vertices(vertex_index + 1);
                if fresh {
                    self.unbind_vertex(vertex_index);
                }
            }
        }
    }

    fn emit_match(&mut self) {
        // Cross-variable predicates, evaluated with full element access.
        let bindings = ReferenceBindings {
            graph: self.graph,
            vertex_bindings: &self.vertex_bindings,
            edge_bindings: &self.edge_bindings,
        };
        for (clause, _) in &self.query.cross_clauses {
            if !eval_clause(clause, &bindings) {
                return;
            }
        }
        // Ground truth: the retained WHERE expression, evaluated directly
        // under Kleene logic, must be exactly true.
        if let Some(expression) = &self.query.where_expression {
            if eval_expression(expression, &bindings) != Some(true) {
                return;
            }
        }
        let mut result: ReferenceMatch = HashMap::new();
        for (variable, id) in &self.vertex_bindings {
            result.insert(variable.clone(), Entry::Id(*id));
        }
        for (variable, entry) in &self.edge_bindings {
            result.insert(variable.clone(), entry.clone());
        }
        self.results.push(result);
    }
}

struct ReferenceBindings<'a> {
    graph: &'a GraphIndex,
    vertex_bindings: &'a HashMap<String, u64>,
    edge_bindings: &'a HashMap<String, Entry>,
}

impl Bindings for ReferenceBindings<'_> {
    fn property(&self, variable: &str, key: &str) -> Option<PropertyValue> {
        if let Some(id) = self.vertex_bindings.get(variable) {
            return self.graph.vertices.get(id)?.properties.get(key).cloned();
        }
        if let Some(Entry::Id(id)) = self.edge_bindings.get(variable) {
            let edge = self.graph.edges.iter().find(|e| e.id.0 == *id)?;
            return edge.properties.get(key).cloned();
        }
        None
    }

    fn label(&self, variable: &str) -> Option<Label> {
        if let Some(id) = self.vertex_bindings.get(variable) {
            return Some(self.graph.vertices.get(id)?.label.clone());
        }
        if let Some(Entry::Id(id)) = self.edge_bindings.get(variable) {
            return self
                .graph
                .edges
                .iter()
                .find(|e| e.id.0 == *id)
                .map(|e| e.label.clone());
        }
        None
    }

    fn element_id(&self, variable: &str) -> Option<u64> {
        if let Some(id) = self.vertex_bindings.get(variable) {
            return Some(*id);
        }
        match self.edge_bindings.get(variable) {
            Some(Entry::Id(id)) => Some(*id),
            _ => None,
        }
    }
}

// --- pipeline reference interpreter ------------------------------------------

/// The result table of [`reference_pipeline`]: named columns over value
/// rows. `ordered` is set when the final `RETURN` carried an `ORDER BY`, in
/// which case row order is significant.
#[derive(Debug, Clone)]
pub struct RefTable {
    /// Output column names, in projection order.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
    /// Whether row order is part of the result.
    pub ordered: bool,
}

/// Interprets a multi-clause pipeline (`MATCH` / `OPTIONAL MATCH` / `WITH`
/// / `UNWIND` / final `RETURN`) clause by clause over an in-memory table —
/// the oracle the conformance fuzzer holds the dataflow lowering against.
///
/// Clause semantics:
/// * each `MATCH` stage is matched by [`reference_match`] under its **own**
///   morphism-uniqueness scope (openCypher's per-`MATCH` uniqueness), then
///   joined onto the working table on the shared variables;
/// * the stage `WHERE` is evaluated row-wise under Kleene logic over the
///   combined row — for `OPTIONAL MATCH` it participates in the match
///   decision, so a row whose candidates all fail is NULL-padded;
/// * a later `MATCH` referencing a NULL-bound variable finds no join
///   partner: the row is dropped (or re-padded when optional);
/// * `WITH` / `RETURN` apply projection → aggregation → `DISTINCT` →
///   `ORDER BY` → `SKIP`/`LIMIT` → trailing `WHERE`, in that order;
/// * `SKIP`/`LIMIT` without `ORDER BY` cut after the canonical full-row
///   sort, so the selection is deterministic and engine-reproducible.
pub fn reference_pipeline(
    graph: &LogicalGraph,
    pipeline: &Pipeline,
    config: &MatchingConfig,
) -> Result<RefTable, String> {
    let snapshot = Snapshot::of(graph);
    let mut columns: Vec<String> = Vec::new();
    let mut rows: Vec<Row> = vec![Vec::new()];
    for stage in &pipeline.stages {
        match stage {
            Stage::Match(stage) => {
                apply_match(
                    graph,
                    &snapshot,
                    &mut columns,
                    &mut rows,
                    stage,
                    config,
                    false,
                )?;
            }
            Stage::OptionalMatch(stage) => {
                apply_match(
                    graph,
                    &snapshot,
                    &mut columns,
                    &mut rows,
                    stage,
                    config,
                    true,
                )?;
            }
            Stage::With(projection) => {
                apply_projection(&snapshot, &mut columns, &mut rows, projection)?;
            }
            Stage::Unwind(unwind) => apply_unwind(&snapshot, &mut columns, &mut rows, unwind)?,
        }
    }
    apply_projection(&snapshot, &mut columns, &mut rows, &pipeline.ret)?;
    Ok(RefTable {
        columns,
        rows,
        ordered: !pipeline.ret.order_by.is_empty(),
    })
}

/// Matches one `MATCH` stage in isolation: named variables become columns
/// (vertices first, then edges, in query-graph order).
fn match_stage_table(
    graph: &LogicalGraph,
    stage: &MatchStage,
    config: &MatchingConfig,
) -> Result<(Vec<String>, Vec<Row>), String> {
    let query = Query {
        patterns: stage.patterns.clone(),
        // The stage WHERE is evaluated row-wise over the combined table so
        // it can see earlier columns; the query graph gets patterns only.
        where_clause: None,
        return_clause: ReturnClause {
            items: vec![ReturnItem::All],
            distinct: false,
        },
    };
    let query_graph = QueryGraph::from_query(&query).map_err(|e| e.to_string())?;
    let mut columns: Vec<String> = Vec::new();
    let mut vertex_columns = 0usize;
    for vertex in &query_graph.vertices {
        if vertex.named {
            columns.push(vertex.variable.clone());
            vertex_columns += 1;
        }
    }
    for edge in &query_graph.edges {
        if edge.named {
            columns.push(edge.variable.clone());
        }
    }
    let matches = reference_match(graph, &query_graph, config);
    let rows = matches
        .into_iter()
        .map(|found| {
            columns
                .iter()
                .enumerate()
                .map(|(i, variable)| match &found[variable] {
                    Entry::Id(id) if i < vertex_columns => Value::Vertex(*id),
                    Entry::Id(id) => Value::Edge(*id),
                    Entry::Path(via) => Value::Path(via.clone()),
                })
                .collect()
        })
        .collect();
    Ok((columns, rows))
}

/// Join equality for shared variables: canonical equality with NULL joining
/// nothing — exactly the engine's canonical-key hash join.
fn join_equal(a: &Value, b: &Value) -> bool {
    !matches!(a, Value::Null)
        && !matches!(b, Value::Null)
        && canonical_string(a) == canonical_string(b)
}

fn apply_match(
    graph: &LogicalGraph,
    snapshot: &Snapshot,
    columns: &mut Vec<String>,
    rows: &mut Vec<Row>,
    stage: &MatchStage,
    config: &MatchingConfig,
    optional: bool,
) -> Result<(), String> {
    let (match_columns, match_rows) = match_stage_table(graph, stage, config)?;
    let shared: Vec<(usize, usize)> = match_columns
        .iter()
        .enumerate()
        .filter_map(|(mi, name)| columns.iter().position(|c| c == name).map(|li| (li, mi)))
        .collect();
    let new_columns: Vec<usize> = (0..match_columns.len())
        .filter(|mi| !shared.iter().any(|&(_, smi)| smi == *mi))
        .collect();
    let mut out_columns = columns.clone();
    out_columns.extend(new_columns.iter().map(|&mi| match_columns[mi].clone()));
    let mut out: Vec<Row> = Vec::new();
    for row in rows.iter() {
        let mut matched = false;
        for match_row in &match_rows {
            if !shared
                .iter()
                .all(|&(li, mi)| join_equal(&row[li], &match_row[mi]))
            {
                continue;
            }
            let mut combined = row.clone();
            combined.extend(new_columns.iter().map(|&mi| match_row[mi].clone()));
            if let Some(expr) = &stage.where_clause {
                let scope = RowScope {
                    columns: &out_columns,
                    row: &combined,
                    snapshot,
                };
                if eval_expression(expr, &scope) != Some(true) {
                    continue;
                }
            }
            matched = true;
            out.push(combined);
        }
        if optional && !matched {
            let mut padded = row.clone();
            padded.extend(new_columns.iter().map(|_| Value::Null));
            out.push(padded);
        }
    }
    *columns = out_columns;
    *rows = out;
    Ok(())
}

fn apply_unwind(
    snapshot: &Snapshot,
    columns: &mut Vec<String>,
    rows: &mut Vec<Row>,
    unwind: &UnwindStage,
) -> Result<(), String> {
    if columns.contains(&unwind.alias) {
        return Err(format!("UNWIND alias `{}` is already bound", unwind.alias));
    }
    let mut out: Vec<Row> = Vec::new();
    for row in rows.iter() {
        let scope = RowScope {
            columns,
            row,
            snapshot,
        };
        let source = match &unwind.source {
            UnwindSource::List(items) => Value::List(
                items
                    .iter()
                    .map(|l| property_to_value(&l.to_property_value()))
                    .collect(),
            ),
            UnwindSource::Variable(variable) => scope.get(variable).cloned().unwrap_or(Value::Null),
            UnwindSource::Property { variable, key } => scope.property_value(variable, key),
        };
        match source {
            // UNWIND NULL produces no rows; a non-list scalar one row.
            Value::Null => {}
            Value::List(items) => {
                for item in items {
                    let mut extended = row.clone();
                    extended.push(item);
                    out.push(extended);
                }
            }
            scalar => {
                let mut extended = row.clone();
                extended.push(scalar);
                out.push(extended);
            }
        }
    }
    columns.push(unwind.alias.clone());
    *rows = out;
    Ok(())
}

fn eval_projection_item(item: &ProjectionExpr, scope: &RowScope<'_>) -> Value {
    match item {
        ProjectionExpr::Variable(variable) => scope.get(variable).cloned().unwrap_or(Value::Null),
        ProjectionExpr::Property { variable, key } => scope.property_value(variable, key),
        ProjectionExpr::Aggregate(_) => unreachable!("aggregates are folded per group"),
    }
}

fn apply_projection(
    snapshot: &Snapshot,
    columns: &mut Vec<String>,
    rows: &mut Vec<Row>,
    projection: &Projection,
) -> Result<(), String> {
    let items: Vec<ProjectionItem> = if projection.star {
        columns
            .iter()
            .map(|c| ProjectionItem {
                expr: ProjectionExpr::Variable(c.clone()),
                alias: None,
            })
            .collect()
    } else {
        projection.items.clone()
    };
    let out_columns: Vec<String> = items.iter().map(|i| i.name()).collect();
    let has_aggregate = items
        .iter()
        .any(|i| matches!(i.expr, ProjectionExpr::Aggregate(_)));

    let mut out_rows: Vec<Row> = if has_aggregate {
        // Group by the non-aggregate items; each group folds its members in
        // canonical row order (so `collect` agrees with the engine).
        let mut order: Vec<String> = Vec::new();
        let mut groups: HashMap<String, (Vec<Value>, Vec<Row>)> = HashMap::new();
        for row in rows.iter() {
            let scope = RowScope {
                columns,
                row,
                snapshot,
            };
            let key_values: Vec<Value> = items
                .iter()
                .filter(|i| !matches!(i.expr, ProjectionExpr::Aggregate(_)))
                .map(|i| eval_projection_item(&i.expr, &scope))
                .collect();
            let key = canonical_row(&key_values);
            let group = groups.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                (key_values, Vec::new())
            });
            group.1.push(row.clone());
        }
        if groups.is_empty()
            && items
                .iter()
                .all(|i| matches!(i.expr, ProjectionExpr::Aggregate(_)))
        {
            // A global aggregate over no rows still emits one row.
            order.push(String::new());
            groups.insert(String::new(), (Vec::new(), Vec::new()));
        }
        order
            .iter()
            .map(|key| {
                let (key_values, members) = &groups[key];
                let mut members = members.clone();
                members.sort_by(|a, b| cmp_rows(a, b));
                let mut key_iter = key_values.iter();
                items
                    .iter()
                    .map(|item| match &item.expr {
                        ProjectionExpr::Aggregate(call) => {
                            let args: Vec<Value> = members
                                .iter()
                                .map(|member| {
                                    let scope = RowScope {
                                        columns,
                                        row: member,
                                        snapshot,
                                    };
                                    agg_arg_value(&call.arg, &scope)
                                })
                                .collect();
                            fold_aggregate(call.func, call.distinct, &args)
                        }
                        _ => key_iter.next().expect("grouping key").clone(),
                    })
                    .collect()
            })
            .collect()
    } else {
        rows.iter()
            .map(|row| {
                let scope = RowScope {
                    columns,
                    row,
                    snapshot,
                };
                items
                    .iter()
                    .map(|item| eval_projection_item(&item.expr, &scope))
                    .collect()
            })
            .collect()
    };

    if projection.distinct {
        let mut seen = std::collections::HashSet::new();
        out_rows.retain(|row| seen.insert(canonical_row(row)));
    }
    if !projection.order_by.is_empty() || projection.skip.is_some() || projection.limit.is_some() {
        out_rows.sort_by(|a, b| {
            compare_rows_by_keys(&projection.order_by, &out_columns, snapshot, a, b)
        });
        let skip = projection.skip.unwrap_or(0);
        let limit = projection.limit.unwrap_or(usize::MAX);
        out_rows = out_rows.into_iter().skip(skip).take(limit).collect();
    }
    if let Some(expr) = &projection.where_clause {
        out_rows.retain(|row| {
            let scope = RowScope {
                columns: &out_columns,
                row,
                snapshot,
            };
            eval_expression(expr, &scope) == Some(true)
        });
    }
    *columns = out_columns;
    *rows = out_rows;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradoop_cypher::parse;
    use gradoop_dataflow::{CostModel, ExecutionConfig, ExecutionEnvironment};
    use gradoop_epgm::{properties, GradoopId, GraphHead, Properties};

    fn graph() -> LogicalGraph {
        let env = ExecutionEnvironment::new(
            ExecutionConfig::with_workers(2).cost_model(CostModel::free()),
        );
        let person = |id: u64, name: &str| {
            Vertex::new(GradoopId(id), "Person", properties! {"name" => name})
        };
        let knows = |id: u64, s: u64, t: u64| {
            Edge::new(
                GradoopId(id),
                "knows",
                GradoopId(s),
                GradoopId(t),
                Properties::new(),
            )
        };
        LogicalGraph::from_data(
            &env,
            GraphHead::new(GradoopId(100), "g", Properties::new()),
            vec![person(1, "Alice"), person(2, "Eve"), person(3, "Bob")],
            vec![knows(10, 1, 2), knows(11, 2, 3), knows(12, 1, 3)],
        )
    }

    fn matches(text: &str, config: MatchingConfig) -> Vec<ReferenceMatch> {
        let query = QueryGraph::from_query(&parse(text).unwrap()).unwrap();
        reference_match(&graph(), &query, &config)
    }

    #[test]
    fn single_edge_matches() {
        let found = matches(
            "MATCH (a:Person)-[e:knows]->(b:Person) RETURN *",
            MatchingConfig::cypher_default(),
        );
        assert_eq!(found.len(), 3);
    }

    #[test]
    fn two_hop_matches() {
        let found = matches(
            "MATCH (a)-[e1:knows]->(b)-[e2:knows]->(c) RETURN *",
            MatchingConfig::cypher_default(),
        );
        // 1->2->3 only.
        assert_eq!(found.len(), 1);
        assert_eq!(found[0]["a"], Entry::Id(1));
        assert_eq!(found[0]["c"], Entry::Id(3));
    }

    #[test]
    fn triangle_under_different_semantics() {
        let text = "MATCH (a)-[e1:knows]->(b)-[e2:knows]->(c), (a)-[e3:knows]->(c) RETURN *";
        assert_eq!(matches(text, MatchingConfig::cypher_default()).len(), 1);
        assert_eq!(matches(text, MatchingConfig::isomorphism()).len(), 1);
        assert_eq!(matches(text, MatchingConfig::homomorphism()).len(), 1);
    }

    #[test]
    fn variable_length_paths() {
        let found = matches(
            "MATCH (a:Person {name: 'Alice'})-[e:knows*1..2]->(b) RETURN *",
            MatchingConfig::cypher_default(),
        );
        // 1->2, 1->3, 1->2->3.
        assert_eq!(found.len(), 3);
        let path = found
            .iter()
            .find_map(|m| match &m["e"] {
                Entry::Path(via) if via.len() == 3 => Some(via.clone()),
                _ => None,
            })
            .expect("two-hop path");
        assert_eq!(path, vec![10, 2, 11]);
    }

    #[test]
    fn zero_length_path_binds_same_vertex() {
        let found = matches(
            "MATCH (a:Person {name: 'Alice'})-[e:knows*0..1]->(b) RETURN *",
            MatchingConfig::cypher_default(),
        );
        // Zero-length: b = a; plus 1->2 and 1->3.
        assert_eq!(found.len(), 3);
        assert!(found
            .iter()
            .any(|m| m["e"] == Entry::Path(vec![]) && m["b"] == Entry::Id(1)));
    }

    #[test]
    fn cross_predicates_filter_matches() {
        let found = matches(
            "MATCH (a:Person)-[:knows]->(b:Person) WHERE a.name <> b.name RETURN *",
            MatchingConfig::cypher_default(),
        );
        assert_eq!(found.len(), 3);
        let found = matches(
            "MATCH (a:Person)-[:knows]->(b:Person) WHERE a.name = b.name RETURN *",
            MatchingConfig::cypher_default(),
        );
        assert_eq!(found.len(), 0);
    }

    #[test]
    fn isolated_vertices_are_enumerated() {
        let found = matches(
            "MATCH (a:Person), (b:Person) RETURN *",
            MatchingConfig::homomorphism(),
        );
        assert_eq!(found.len(), 9);
        let found = matches(
            "MATCH (a:Person), (b:Person) RETURN *",
            MatchingConfig::isomorphism(),
        );
        assert_eq!(found.len(), 6);
    }

    // --- pipeline interpreter ------------------------------------------------

    fn pipeline(text: &str) -> RefTable {
        let pipeline = gradoop_cypher::parse_pipeline(text).unwrap();
        reference_pipeline(&graph(), &pipeline, &MatchingConfig::cypher_default()).unwrap()
    }

    fn sorted_rows(table: &RefTable) -> Vec<Row> {
        let mut rows = table.rows.clone();
        rows.sort_by(|a, b| cmp_rows(a, b));
        rows
    }

    #[test]
    fn with_aggregation_groups_by_nonaggregate_items() {
        let table = pipeline("MATCH (a:Person)-[e:knows]->(b) WITH a, count(b) AS n RETURN a, n");
        assert_eq!(table.columns, vec!["a", "n"]);
        assert_eq!(
            sorted_rows(&table),
            vec![
                vec![Value::Vertex(1), Value::Int(2)],
                vec![Value::Vertex(2), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn optional_match_pads_with_null_when_where_rejects() {
        let table = pipeline(
            "MATCH (a:Person) OPTIONAL MATCH (a)-[e:knows]->(b) \
             WHERE b.name = 'Eve' RETURN a, b",
        );
        assert_eq!(
            sorted_rows(&table),
            vec![
                vec![Value::Vertex(1), Value::Vertex(2)],
                vec![Value::Vertex(2), Value::Null],
                vec![Value::Vertex(3), Value::Null],
            ]
        );
    }

    #[test]
    fn match_after_optional_drops_null_bound_rows() {
        // b is NULL for Bob (3, no outgoing edges); the second MATCH can't
        // join a NULL, so only rows with a real b survive.
        let table = pipeline(
            "MATCH (a:Person) OPTIONAL MATCH (a)-[e:knows]->(b) \
             MATCH (b)-[f:knows]->(c) RETURN a, c",
        );
        assert_eq!(
            sorted_rows(&table),
            vec![
                vec![Value::Vertex(1), Value::Vertex(3)], // a=1 via b=2
            ]
        );
    }

    #[test]
    fn order_by_skip_limit_slices_deterministically() {
        let table =
            pipeline("MATCH (a:Person) RETURN a.name AS name ORDER BY name DESC SKIP 1 LIMIT 1");
        assert!(table.ordered);
        assert_eq!(table.rows, vec![vec![Value::Str("Bob".into())]]);
    }

    #[test]
    fn with_where_applies_after_paging() {
        let table = pipeline(
            "MATCH (a:Person) WITH a.name AS name ORDER BY name LIMIT 2 \
             WHERE name <> 'Alice' RETURN name",
        );
        assert_eq!(table.rows, vec![vec![Value::Str("Bob".into())]]);
    }

    #[test]
    fn unwind_expands_lists_and_distinct_dedups() {
        let table = pipeline("UNWIND [1, 2, 2] AS x RETURN DISTINCT x");
        assert_eq!(
            sorted_rows(&table),
            vec![vec![Value::Int(1)], vec![Value::Int(2)]]
        );
    }

    #[test]
    fn global_aggregates_on_empty_input_emit_one_row() {
        let table = pipeline(
            "MATCH (a:Person) WHERE a.name = 'Zed' \
             RETURN count(a) AS n, min(a.name) AS m, collect(a.name) AS c",
        );
        assert_eq!(
            table.rows,
            vec![vec![Value::Int(0), Value::Null, Value::List(vec![])]]
        );
    }

    #[test]
    fn count_distinct_counts_unique_sources() {
        let table =
            pipeline("MATCH (a:Person)-[e:knows]->(b:Person) RETURN count(DISTINCT a) AS n");
        assert_eq!(table.rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn collect_folds_in_canonical_member_order() {
        let table =
            pipeline("MATCH (a:Person)-[e:knows]->(b:Person) RETURN collect(b.name) AS names");
        // Members sort canonically by full input row before folding:
        // rows keyed by (a, e, b) → edges 10 (1→2), 11 (2→3), 12 (1→3).
        assert_eq!(
            table.rows,
            vec![vec![Value::List(vec![
                Value::Str("Eve".into()),
                Value::Str("Bob".into()),
                Value::Str("Bob".into()),
            ])]]
        );
    }
}
