//! Query results: tabular access (paper Table 2) and EPGM post-processing
//! into a graph collection (Definition 2.4).

use std::collections::HashMap;

use gradoop_cypher::{QueryGraph, ReturnItem};
use gradoop_dataflow::JoinStrategy;
use gradoop_epgm::operators::next_derived_graph_id;
use gradoop_epgm::{
    GradoopId, GraphCollection, GraphHead, LogicalGraph, Properties, PropertyValue,
};

use crate::embedding::{Embedding, EmbeddingMetaData, Entry};
use crate::engine::CypherError;
use crate::planner::QueryPlan;
use gradoop_dataflow::ExecutionFailure;

/// Classifies an unbound RETURN item as an execution failure: the plan
/// failed to materialize a binding the query returns. Surfaced as
/// [`CypherError::Execution`] instead of a panic (the engine's never-panic
/// contract covers planner bugs, not just fault paths).
fn unbound(message: String) -> CypherError {
    CypherError::Execution(ExecutionFailure {
        site: "result materialization".to_string(),
        attempts: 0,
        message,
    })
}

/// A value of one result cell.
#[derive(Debug, Clone, PartialEq)]
pub enum ResultValue {
    /// A bound element identifier.
    Id(u64),
    /// A bound path (via identifiers, alternating edge/vertex).
    Path(Vec<u64>),
    /// A property value.
    Property(PropertyValue),
    /// A `count(*)` aggregate.
    Count(u64),
}

/// One row of the tabular result view.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    /// `(column name, value)` pairs in RETURN order.
    pub values: Vec<(String, ResultValue)>,
}

/// The result of a Cypher query execution.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The final embeddings.
    pub embeddings: gradoop_dataflow::Dataset<Embedding>,
    /// Their layout.
    pub meta: EmbeddingMetaData,
    /// The executed query graph.
    pub query: QueryGraph,
    /// The executed plan (with its cost estimate).
    pub plan: QueryPlan,
}

impl QueryResult {
    /// Number of matches (distributed count — what the paper's evaluation
    /// measures).
    pub fn count(&self) -> usize {
        self.embeddings.count()
    }

    /// Materializes the tabular view (Table 2): one row per embedding with
    /// one column per RETURN item. For `RETURN count(*)` a single row with
    /// the match count is produced. A RETURN item the embeddings do not
    /// bind (a malformed plan) yields a classified
    /// [`CypherError::Execution`] instead of panicking.
    pub fn rows(&self) -> Result<Vec<ResultRow>, CypherError> {
        if self
            .query
            .return_items
            .iter()
            .any(|item| matches!(item, ReturnItem::CountStar))
        {
            return Ok(vec![ResultRow {
                values: vec![(
                    "count(*)".to_string(),
                    ResultValue::Count(self.count() as u64),
                )],
            }]);
        }
        let embeddings = self.embeddings.collect();
        embeddings
            .iter()
            .map(|embedding| {
                Ok(ResultRow {
                    values: self
                        .query
                        .return_items
                        .iter()
                        .map(|item| self.cell(embedding, item))
                        .collect::<Result<Vec<_>, _>>()?,
                })
            })
            .collect()
    }

    fn cell(
        &self,
        embedding: &Embedding,
        item: &ReturnItem,
    ) -> Result<(String, ResultValue), CypherError> {
        match item {
            ReturnItem::Variable(variable) => {
                let column = self
                    .meta
                    .column(variable)
                    .ok_or_else(|| unbound(format!("returned variable `{variable}` unbound")))?;
                let value = match embedding.entry(column) {
                    Entry::Id(id) => ResultValue::Id(id),
                    Entry::Path(ids) => ResultValue::Path(ids),
                };
                Ok((variable.clone(), value))
            }
            ReturnItem::Property {
                variable,
                key,
                alias,
            } => {
                let index = self.meta.property_index(variable, key).ok_or_else(|| {
                    unbound(format!("returned property `{variable}.{key}` unbound"))
                })?;
                let name = alias.clone().unwrap_or_else(|| format!("{variable}.{key}"));
                Ok((name, ResultValue::Property(embedding.property(index))))
            }
            ReturnItem::CountStar => Ok(("count(*)".to_string(), ResultValue::Count(0))),
            // The builder expands `RETURN *`; seeing it here means the
            // query graph was constructed by hand and is malformed.
            ReturnItem::All => Err(unbound(
                "RETURN * not expanded during query-graph construction".to_string(),
            )),
        }
    }

    /// EPGM post-processing (Definition 2.4): one new logical graph per
    /// embedding, containing the matched vertices and edges (with path
    /// contents expanded). Variable bindings and returned property values
    /// are attached as graph-head properties, so arbitrary downstream
    /// operators can post-process the collection.
    pub fn to_graph_collection(
        &self,
        data_graph: &LogicalGraph,
    ) -> Result<GraphCollection, CypherError> {
        let env = data_graph.env().clone();
        let embeddings = self.embeddings.collect();

        let mut heads = Vec::with_capacity(embeddings.len());
        let mut vertex_memberships: Vec<(u64, u64)> = Vec::new();
        let mut edge_memberships: Vec<(u64, u64)> = Vec::new();

        let vertex_columns = self.meta.vertex_columns();
        let edge_columns = self.meta.edge_columns();
        let path_columns = self.meta.path_columns();

        for embedding in &embeddings {
            let graph_id = next_derived_graph_id();
            let mut properties = Properties::new();
            for item in &self.query.return_items {
                match item {
                    ReturnItem::CountStar => continue,
                    item => {
                        let (name, value) = self.cell(embedding, item)?;
                        let property = match value {
                            ResultValue::Id(id) => PropertyValue::Long(id as i64),
                            ResultValue::Path(ids) => PropertyValue::List(
                                ids.iter()
                                    .map(|id| PropertyValue::Long(*id as i64))
                                    .collect(),
                            ),
                            ResultValue::Property(value) => value,
                            ResultValue::Count(count) => PropertyValue::Long(count as i64),
                        };
                        properties.set(&name, property);
                    }
                }
            }
            heads.push(GraphHead::new(graph_id, "Match", properties));

            for &column in &vertex_columns {
                vertex_memberships.push((embedding.id(column), graph_id.0));
            }
            for &column in &edge_columns {
                edge_memberships.push((embedding.id(column), graph_id.0));
            }
            for &column in &path_columns {
                let path = embedding.path(column);
                for (position, id) in path.iter().enumerate() {
                    if position % 2 == 0 {
                        edge_memberships.push((*id, graph_id.0));
                    } else {
                        vertex_memberships.push((*id, graph_id.0));
                    }
                }
            }
        }

        let heads = env.from_collection(heads);

        // Group memberships per element and join them with the data graph,
        // extending each matched element's membership set.
        let vertex_groups = env.from_collection(vertex_memberships).group_reduce(
            |(id, _)| *id,
            |id, members| (*id, members.iter().map(|(_, g)| *g).collect::<Vec<u64>>()),
        );
        let vertices = data_graph.vertices().join(
            &vertex_groups,
            |v| v.id.0,
            |(id, _)| *id,
            JoinStrategy::RepartitionHash,
            |vertex, (_, graphs)| {
                let mut vertex = vertex.clone();
                for graph in graphs {
                    vertex.graph_ids.insert(GradoopId(*graph));
                }
                Some(vertex)
            },
        );
        let edge_groups = env.from_collection(edge_memberships).group_reduce(
            |(id, _)| *id,
            |id, members| (*id, members.iter().map(|(_, g)| *g).collect::<Vec<u64>>()),
        );
        let edges = data_graph.edges().join(
            &edge_groups,
            |e| e.id.0,
            |(id, _)| *id,
            JoinStrategy::RepartitionHash,
            |edge, (_, graphs)| {
                let mut edge = edge.clone();
                for graph in graphs {
                    edge.graph_ids.insert(GradoopId(*graph));
                }
                Some(edge)
            },
        );

        Ok(GraphCollection::new(heads, vertices, edges))
    }

    /// Convenience: result rows keyed by column name, for assertions.
    pub fn rows_as_maps(&self) -> Result<Vec<HashMap<String, ResultValue>>, CypherError> {
        Ok(self
            .rows()?
            .into_iter()
            .map(|row| row.values.into_iter().collect())
            .collect())
    }
}
