//! Abstraction over the two graph representations a query can scan.
//!
//! The planner only needs label-restricted vertex and edge datasets. A plain
//! [`LogicalGraph`] serves them by scanning and filtering its full datasets;
//! an [`IndexedLogicalGraph`] (paper Section 3.4) serves the pre-partitioned
//! per-label dataset directly, avoiding the full scan. Benchmarks compare
//! both paths (`ablation_index`).

use gradoop_dataflow::{Dataset, ExecutionEnvironment};
use gradoop_epgm::{Edge, IndexedLogicalGraph, Label, LogicalGraph, Vertex};

/// Provider of label-restricted element datasets.
pub trait GraphSource {
    /// The owning environment.
    fn env(&self) -> &ExecutionEnvironment;
    /// Vertices whose label is in `labels` (all vertices if empty).
    fn vertices_for_labels(&self, labels: &[Label]) -> Dataset<Vertex>;
    /// Edges whose label is in `labels` (all edges if empty).
    fn edges_for_labels(&self, labels: &[Label]) -> Dataset<Edge>;
}

impl GraphSource for LogicalGraph {
    fn env(&self) -> &ExecutionEnvironment {
        LogicalGraph::env(self)
    }

    fn vertices_for_labels(&self, labels: &[Label]) -> Dataset<Vertex> {
        if labels.is_empty() {
            return self.vertices().clone();
        }
        let labels = labels.to_vec();
        self.vertices().filter(move |v| labels.contains(&v.label))
    }

    fn edges_for_labels(&self, labels: &[Label]) -> Dataset<Edge> {
        if labels.is_empty() {
            return self.edges().clone();
        }
        let labels = labels.to_vec();
        self.edges().filter(move |e| labels.contains(&e.label))
    }
}

impl GraphSource for IndexedLogicalGraph {
    fn env(&self) -> &ExecutionEnvironment {
        IndexedLogicalGraph::env(self)
    }

    fn vertices_for_labels(&self, labels: &[Label]) -> Dataset<Vertex> {
        IndexedLogicalGraph::vertices_for_labels(self, labels)
    }

    fn edges_for_labels(&self, labels: &[Label]) -> Dataset<Edge> {
        IndexedLogicalGraph::edges_for_labels(self, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradoop_dataflow::{CostModel, ExecutionConfig};
    use gradoop_epgm::{GradoopId, GraphHead, Properties};

    fn graph() -> LogicalGraph {
        let env = ExecutionEnvironment::new(
            ExecutionConfig::with_workers(2).cost_model(CostModel::free()),
        );
        LogicalGraph::from_data(
            &env,
            GraphHead::new(GradoopId(100), "g", Properties::new()),
            vec![
                Vertex::new(GradoopId(1), "Person", Properties::new()),
                Vertex::new(GradoopId(2), "City", Properties::new()),
            ],
            vec![Edge::new(
                GradoopId(10),
                "livesIn",
                GradoopId(1),
                GradoopId(2),
                Properties::new(),
            )],
        )
    }

    #[test]
    fn logical_graph_scans_and_filters() {
        let g = graph();
        assert_eq!(g.vertices_for_labels(&[]).count(), 2);
        assert_eq!(g.vertices_for_labels(&[Label::new("Person")]).count(), 1);
        assert_eq!(g.edges_for_labels(&[Label::new("livesIn")]).count(), 1);
        assert_eq!(g.edges_for_labels(&[Label::new("knows")]).count(), 0);
    }

    #[test]
    fn indexed_graph_agrees_with_scan() {
        let g = graph();
        let indexed = g.to_indexed();
        for labels in [vec![], vec![Label::new("Person")], vec![Label::new("City")]] {
            assert_eq!(
                GraphSource::vertices_for_labels(&g, &labels).count(),
                GraphSource::vertices_for_labels(&indexed, &labels).count(),
                "{labels:?}"
            );
        }
    }
}
