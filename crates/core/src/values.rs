//! The row value domain of pipeline queries.
//!
//! Multi-clause queries (`WITH`, `OPTIONAL MATCH`, aggregates, `UNWIND`)
//! carry **tables** between stages rather than embeddings: each row is a
//! `Vec<Value>` under a schema of column names. This module defines that
//! value domain plus every row-level primitive the two executors share —
//! expression evaluation ([`RowScope`]), the total order used by `ORDER BY`
//! ([`cmp_values`]), the injective rendering used for grouping and
//! `DISTINCT` ([`canonical_string`]), and the aggregate folds
//! ([`fold_aggregate`]).
//!
//! The reference interpreter ([`crate::reference::reference_pipeline`]) and
//! the dataflow lowering use **exactly these functions**, so the
//! conformance fuzzer compares the two matchers' clause orchestration, not
//! two re-implementations of value semantics.

use std::cmp::Ordering;
use std::collections::HashMap;

use gradoop_cypher::ast::{AggArg, AggFunc, SortKey, SortRef};
use gradoop_cypher::predicates::eval::{compare_values, eval_expression, Bindings};
use gradoop_cypher::{CmpOp, Expression};
use gradoop_dataflow::Data;
use gradoop_epgm::{Label, Properties, PropertyValue};

use crate::source::GraphSource;

/// A value bound to one column of a pipeline row.
///
/// Vertices and edges stay references (their id) — properties are resolved
/// against the query's [`Snapshot`] on demand, mirroring the embedding
/// layout of the classic path. `Vertex` and `Edge` are distinct variants
/// because the two id spaces may overlap.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL/Cypher NULL (also the padding of `OPTIONAL MATCH`).
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (all EPGM integer widths widen to this).
    Int(i64),
    /// Float (both EPGM float widths widen to this).
    Float(f64),
    /// String.
    Str(String),
    /// A vertex reference.
    Vertex(u64),
    /// An edge reference.
    Edge(u64),
    /// A variable-length path: alternating edge/vertex ids, as in
    /// [`crate::embedding::Entry::Path`].
    Path(Vec<u64>),
    /// A list (from `collect(..)` or a list property).
    List(Vec<Value>),
}

impl Data for Value {
    fn byte_size(&self) -> usize {
        match self {
            Value::Null | Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) | Value::Vertex(_) | Value::Edge(_) => 8,
            Value::Str(s) => 8 + s.len(),
            Value::Path(via) => 8 + 8 * via.len(),
            Value::List(items) => 8 + items.iter().map(Value::byte_size).sum::<usize>(),
        }
    }
}

/// One pipeline row.
pub type Row = Vec<Value>;

/// Widens an EPGM property value into the row domain.
pub fn property_to_value(value: &PropertyValue) -> Value {
    match value {
        PropertyValue::Null => Value::Null,
        PropertyValue::Boolean(b) => Value::Bool(*b),
        PropertyValue::Int(i) => Value::Int(*i as i64),
        PropertyValue::Long(l) => Value::Int(*l),
        PropertyValue::Float(f) => Value::Float(*f as f64),
        PropertyValue::Double(d) => Value::Float(*d),
        PropertyValue::String(s) => Value::Str(s.clone()),
        PropertyValue::List(items) => Value::List(items.iter().map(property_to_value).collect()),
    }
}

/// Projects a row value back into the property domain for predicate
/// evaluation. Elements become their id as a `Long` (matching the classic
/// evaluator's identity comparisons); paths have no property-domain
/// equivalent and compare as `NULL`.
pub fn value_to_property(value: &Value) -> PropertyValue {
    match value {
        Value::Null => PropertyValue::Null,
        Value::Bool(b) => PropertyValue::Boolean(*b),
        Value::Int(i) => PropertyValue::Long(*i),
        Value::Float(f) => PropertyValue::Double(*f),
        Value::Str(s) => PropertyValue::String(s.clone()),
        Value::Vertex(id) | Value::Edge(id) => PropertyValue::Long(*id as i64),
        Value::Path(_) => PropertyValue::Null,
        Value::List(items) => PropertyValue::List(items.iter().map(value_to_property).collect()),
    }
}

/// A float that denotes an integer collapses to that integer (`2.0` → `2`),
/// so equality, grouping keys and the canonical rendering agree with
/// numeric comparison. `NaN` and non-integral floats stay floats.
fn canon(value: &Value) -> Value {
    match value {
        Value::Float(f) if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 => {
            Value::Int(*f as i64)
        }
        Value::List(items) => Value::List(items.iter().map(canon).collect()),
        other => other.clone(),
    }
}

fn type_rank(value: &Value) -> u8 {
    match value {
        Value::Bool(_) => 0,
        Value::Int(_) | Value::Float(_) => 1,
        Value::Str(_) => 2,
        Value::Vertex(_) => 3,
        Value::Edge(_) => 4,
        Value::Path(_) => 5,
        Value::List(_) => 6,
        // NULL sorts greatest: last under ASC, first under DESC — Cypher's
        // null placement.
        Value::Null => 7,
    }
}

fn cmp_f64(a: f64, b: f64) -> Ordering {
    // NaN is equal to itself and greater than every other number, so the
    // order stays total and deterministic.
    match a.partial_cmp(&b) {
        Some(ordering) => ordering,
        None => match (a.is_nan(), b.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => unreachable!("partial_cmp only fails on NaN"),
        },
    }
}

/// Total, deterministic order over the whole value domain: used by
/// `ORDER BY`, min/max aggregates and the canonical row tiebreak. Values of
/// different types order by type rank (booleans < numbers < strings <
/// vertices < edges < paths < lists < NULL); numbers compare numerically
/// across `Int`/`Float`.
pub fn cmp_values(a: &Value, b: &Value) -> Ordering {
    let (ra, rb) = (type_rank(a), type_rank(b));
    if ra != rb {
        return ra.cmp(&rb);
    }
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::Int(x), Value::Float(y)) => cmp_f64(*x as f64, *y),
        (Value::Float(x), Value::Int(y)) => cmp_f64(*x, *y as f64),
        (Value::Float(x), Value::Float(y)) => cmp_f64(*x, *y),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::Vertex(x), Value::Vertex(y)) | (Value::Edge(x), Value::Edge(y)) => x.cmp(y),
        (Value::Path(x), Value::Path(y)) => x.cmp(y),
        (Value::List(x), Value::List(y)) => {
            for (xi, yi) in x.iter().zip(y.iter()) {
                let ordering = cmp_values(xi, yi);
                if ordering != Ordering::Equal {
                    return ordering;
                }
            }
            x.len().cmp(&y.len())
        }
        (Value::Null, Value::Null) => Ordering::Equal,
        _ => unreachable!("equal type ranks"),
    }
}

/// Lexicographic row order under [`cmp_values`] — the deterministic
/// tiebreak behind `ORDER BY` and the fold order of group members.
pub fn cmp_rows(a: &[Value], b: &[Value]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let ordering = cmp_values(x, y);
        if ordering != Ordering::Equal {
            return ordering;
        }
    }
    a.len().cmp(&b.len())
}

/// Injective rendering of a value, stable across runs: the grouping /
/// `DISTINCT` key and the conformance harness's row encoding. Two values
/// render equal iff [`cmp_values`] says `Equal` (floats collapse via
/// [`canon`]; string content is length-prefixed so list renderings stay
/// unambiguous).
pub fn canonical_string(value: &Value) -> String {
    fn render(value: &Value, out: &mut String) {
        match value {
            Value::Null => out.push('0'),
            Value::Bool(b) => out.push_str(if *b { "b:1" } else { "b:0" }),
            Value::Int(i) => {
                out.push_str("i:");
                out.push_str(&i.to_string());
            }
            Value::Float(f) => {
                out.push_str("f:");
                out.push_str(&format!("{f:?}"));
            }
            Value::Str(s) => {
                out.push_str("s:");
                out.push_str(&s.len().to_string());
                out.push(':');
                out.push_str(s);
            }
            Value::Vertex(id) => {
                out.push_str("v:");
                out.push_str(&id.to_string());
            }
            Value::Edge(id) => {
                out.push_str("e:");
                out.push_str(&id.to_string());
            }
            Value::Path(via) => {
                out.push_str("p:[");
                for (i, id) in via.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&id.to_string());
                }
                out.push(']');
            }
            Value::List(items) => {
                out.push_str("l:[");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render(item, out);
                }
                out.push(']');
            }
        }
    }
    let mut out = String::new();
    render(&canon(value), &mut out);
    out
}

/// Canonical rendering of a whole row (`|`-joined canonical values — still
/// injective thanks to the length prefixes).
pub fn canonical_row(row: &[Value]) -> String {
    let mut out = String::new();
    for (i, value) in row.iter().enumerate() {
        if i > 0 {
            out.push('|');
        }
        out.push_str(&canonical_string(value));
    }
    out
}

// --- graph snapshot ----------------------------------------------------------

/// Label and properties of one element.
#[derive(Debug, Clone)]
pub struct ElementData {
    /// The element's label.
    pub label: Label,
    /// The element's properties.
    pub properties: Properties,
}

/// Materialized label/property lookup for every element of the queried
/// graph, built once per pipeline query. Rows store element ids; every
/// property access (projections, predicates, sort keys) resolves here.
#[derive(Debug, Default)]
pub struct Snapshot {
    /// Vertex id → element data.
    pub vertices: HashMap<u64, ElementData>,
    /// Edge id → element data.
    pub edges: HashMap<u64, ElementData>,
}

impl Snapshot {
    /// Collects the full graph from a source.
    pub fn of<S: GraphSource + ?Sized>(source: &S) -> Snapshot {
        let vertices = source
            .vertices_for_labels(&[])
            .collect()
            .into_iter()
            .map(|v| {
                (
                    v.id.0,
                    ElementData {
                        label: v.label,
                        properties: v.properties,
                    },
                )
            })
            .collect();
        let edges = source
            .edges_for_labels(&[])
            .collect()
            .into_iter()
            .map(|e| {
                (
                    e.id.0,
                    ElementData {
                        label: e.label,
                        properties: e.properties,
                    },
                )
            })
            .collect();
        Snapshot { vertices, edges }
    }

    fn element(&self, value: &Value) -> Option<&ElementData> {
        match value {
            Value::Vertex(id) => self.vertices.get(id),
            Value::Edge(id) => self.edges.get(id),
            _ => None,
        }
    }
}

// --- row-scoped evaluation ---------------------------------------------------

/// [`Bindings`] over one pipeline row: columns are visible by name, element
/// columns resolve labels/properties through the snapshot, and scalar
/// columns surface through [`Bindings::value`].
pub struct RowScope<'a> {
    /// Column names, parallel to `row`.
    pub columns: &'a [String],
    /// The row under evaluation.
    pub row: &'a [Value],
    /// Element lookup.
    pub snapshot: &'a Snapshot,
}

impl RowScope<'_> {
    /// The value bound to a column, if the column exists.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.columns
            .iter()
            .position(|c| c == name)
            .map(|i| &self.row[i])
    }

    /// Property access in the row domain: NULL for missing columns,
    /// non-elements, NULL-padded elements and absent keys.
    pub fn property_value(&self, variable: &str, key: &str) -> Value {
        self.get(variable)
            .and_then(|v| self.snapshot.element(v))
            .and_then(|e| e.properties.get(key))
            .map(property_to_value)
            .unwrap_or(Value::Null)
    }
}

impl Bindings for RowScope<'_> {
    fn property(&self, variable: &str, key: &str) -> Option<PropertyValue> {
        match self.property_value(variable, key) {
            Value::Null => None,
            value => Some(value_to_property(&value)),
        }
    }

    fn label(&self, variable: &str) -> Option<Label> {
        self.get(variable)
            .and_then(|v| self.snapshot.element(v))
            .map(|e| e.label.clone())
    }

    fn element_id(&self, variable: &str) -> Option<u64> {
        match self.get(variable) {
            Some(Value::Vertex(id)) | Some(Value::Edge(id)) => Some(*id),
            _ => None,
        }
    }

    fn value(&self, variable: &str) -> Option<PropertyValue> {
        match self.get(variable) {
            None | Some(Value::Null) | Some(Value::Path(_)) => None,
            Some(scalar) => Some(value_to_property(scalar)),
        }
    }
}

/// Kleene evaluation of a `WHERE` expression over a row — delegates to the
/// shared ground-truth evaluator with row-scoped bindings.
pub fn eval_row_expression(expr: &Expression, scope: &RowScope<'_>) -> Option<bool> {
    eval_expression(expr, scope)
}

/// Row-domain equality under Cypher's comparison rules (`Some(true)` /
/// `Some(false)` / unknown), via the shared [`compare_values`].
pub fn values_equal(a: &Value, b: &Value) -> Option<bool> {
    compare_values(
        Some(value_to_property(a)),
        CmpOp::Eq,
        Some(value_to_property(b)),
    )
}

// --- sorting -----------------------------------------------------------------

/// Resolves one `ORDER BY` key against a row.
fn sort_value(key: &SortRef, scope: &RowScope<'_>) -> Value {
    match key {
        SortRef::Name(name) => scope.get(name).cloned().unwrap_or(Value::Null),
        SortRef::Property { variable, key } => scope.property_value(variable, key),
    }
}

/// The total `ORDER BY` comparator: explicit sort keys first (descending
/// keys reversed, which also flips NULL placement exactly as Cypher does),
/// then the canonical full-row order as tiebreak so `SKIP`/`LIMIT` cut
/// deterministically even across tied keys. With no keys this is the plain
/// canonical row order (used for `SKIP`/`LIMIT` without `ORDER BY`).
pub fn compare_rows_by_keys(
    keys: &[SortKey],
    columns: &[String],
    snapshot: &Snapshot,
    a: &[Value],
    b: &[Value],
) -> Ordering {
    for key in keys {
        let scope_a = RowScope {
            columns,
            row: a,
            snapshot,
        };
        let scope_b = RowScope {
            columns,
            row: b,
            snapshot,
        };
        let (va, vb) = (
            sort_value(&key.expr, &scope_a),
            sort_value(&key.expr, &scope_b),
        );
        let ordering = cmp_values(&va, &vb);
        let ordering = if key.descending {
            ordering.reverse()
        } else {
            ordering
        };
        if ordering != Ordering::Equal {
            return ordering;
        }
    }
    cmp_rows(a, b)
}

// --- aggregation -------------------------------------------------------------

/// Resolves an aggregate argument against a row (`None` arg = `count(*)`,
/// which counts rows and resolves to a non-NULL marker).
pub fn agg_arg_value(arg: &Option<AggArg>, scope: &RowScope<'_>) -> Value {
    match arg {
        None => Value::Int(1), // count(*): every row counts
        Some(AggArg::Variable(v)) => scope.get(v).cloned().unwrap_or(Value::Null),
        Some(AggArg::Property { variable, key }) => scope.property_value(variable, key),
    }
}

/// Folds one aggregate over the argument values of a group, in member
/// order. NULLs are skipped (except that `count(*)` arguments are never
/// NULL). `DISTINCT` dedups by canonical rendering, keeping first
/// occurrences.
pub fn fold_aggregate(func: AggFunc, distinct: bool, values: &[Value]) -> Value {
    let non_null: Vec<&Value> = values
        .iter()
        .filter(|v| !matches!(v, Value::Null))
        .collect();
    let deduped: Vec<&Value> = if distinct {
        let mut seen = std::collections::HashSet::new();
        non_null
            .into_iter()
            .filter(|v| seen.insert(canonical_string(v)))
            .collect()
    } else {
        non_null
    };
    match func {
        AggFunc::Count => Value::Int(deduped.len() as i64),
        AggFunc::Collect => Value::List(deduped.into_iter().cloned().collect()),
        AggFunc::Min => deduped
            .into_iter()
            .min_by(|a, b| cmp_values(a, b))
            .cloned()
            .unwrap_or(Value::Null),
        AggFunc::Max => deduped
            .into_iter()
            .max_by(|a, b| cmp_values(a, b))
            .cloned()
            .unwrap_or(Value::Null),
        AggFunc::Sum => {
            // Non-numeric values are skipped (shared by both executors, so
            // the conformance harness never sees a one-sided error).
            let mut int_sum: i64 = 0;
            let mut float_sum: f64 = 0.0;
            let mut saw_float = false;
            for value in &deduped {
                match value {
                    Value::Int(i) => int_sum = int_sum.wrapping_add(*i),
                    Value::Float(f) => {
                        saw_float = true;
                        float_sum += f;
                    }
                    _ => {}
                }
            }
            if saw_float {
                Value::Float(float_sum + int_sum as f64)
            } else {
                Value::Int(int_sum)
            }
        }
        AggFunc::Avg => {
            let mut sum = 0.0f64;
            let mut count = 0usize;
            for value in &deduped {
                match value {
                    Value::Int(i) => {
                        sum += *i as f64;
                        count += 1;
                    }
                    Value::Float(f) => {
                        sum += f;
                        count += 1;
                    }
                    _ => {}
                }
            }
            if count == 0 {
                Value::Null
            } else {
                Value::Float(sum / count as f64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradoop_cypher::ast::SortKey;

    #[test]
    fn canonical_string_collapses_numeric_types() {
        assert_eq!(canonical_string(&Value::Int(2)), "i:2");
        assert_eq!(canonical_string(&Value::Float(2.0)), "i:2");
        assert_eq!(canonical_string(&Value::Float(2.5)), "f:2.5");
        assert_ne!(
            canonical_string(&Value::Vertex(5)),
            canonical_string(&Value::Edge(5))
        );
        // Length prefixes keep list renderings unambiguous.
        let a = Value::List(vec![Value::Str("a,b".into()), Value::Str("c".into())]);
        let b = Value::List(vec![Value::Str("a".into()), Value::Str("b,c".into())]);
        assert_ne!(canonical_string(&a), canonical_string(&b));
    }

    #[test]
    fn cmp_values_is_total_and_matches_canonical_equality() {
        let values = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-1),
            Value::Int(2),
            Value::Float(2.0),
            Value::Float(2.5),
            Value::Float(f64::NAN),
            Value::Str("a".into()),
            Value::Vertex(1),
            Value::Edge(1),
            Value::Path(vec![1, 2, 3]),
            Value::List(vec![Value::Int(1)]),
        ];
        for a in &values {
            for b in &values {
                let ordering = cmp_values(a, b);
                assert_eq!(ordering.reverse(), cmp_values(b, a), "{a:?} vs {b:?}");
                assert_eq!(
                    ordering == Ordering::Equal,
                    canonical_string(a) == canonical_string(b),
                    "{a:?} vs {b:?}"
                );
            }
        }
        // Numeric coercion: Int(2) == Float(2.0).
        assert_eq!(
            cmp_values(&Value::Int(2), &Value::Float(2.0)),
            Ordering::Equal
        );
        // NULL sorts last.
        assert_eq!(
            cmp_values(&Value::Null, &Value::Str("z".into())),
            Ordering::Greater
        );
    }

    #[test]
    fn aggregates_fold_as_specified() {
        let vals = vec![
            Value::Int(3),
            Value::Null,
            Value::Int(1),
            Value::Int(3),
            Value::Float(0.5),
        ];
        assert_eq!(fold_aggregate(AggFunc::Count, false, &vals), Value::Int(4));
        assert_eq!(fold_aggregate(AggFunc::Count, true, &vals), Value::Int(3));
        assert_eq!(
            fold_aggregate(AggFunc::Sum, false, &vals),
            Value::Float(7.5)
        );
        assert_eq!(
            fold_aggregate(AggFunc::Min, false, &vals),
            Value::Float(0.5)
        );
        assert_eq!(fold_aggregate(AggFunc::Max, false, &vals), Value::Int(3));
        assert_eq!(
            fold_aggregate(AggFunc::Collect, true, &vals),
            Value::List(vec![Value::Int(3), Value::Int(1), Value::Float(0.5)])
        );
        assert_eq!(
            fold_aggregate(AggFunc::Avg, false, &vals),
            Value::Float(7.5 / 4.0)
        );
        // Empty input: count 0, sum 0, collect [], min/max/avg NULL.
        assert_eq!(fold_aggregate(AggFunc::Count, false, &[]), Value::Int(0));
        assert_eq!(fold_aggregate(AggFunc::Sum, false, &[]), Value::Int(0));
        assert_eq!(
            fold_aggregate(AggFunc::Collect, false, &[]),
            Value::List(vec![])
        );
        assert_eq!(fold_aggregate(AggFunc::Min, false, &[]), Value::Null);
        assert_eq!(fold_aggregate(AggFunc::Avg, false, &[]), Value::Null);
    }

    #[test]
    fn sort_comparator_orders_keys_then_tiebreaks() {
        let columns = vec!["x".to_string(), "y".to_string()];
        let snapshot = Snapshot::default();
        let keys = vec![SortKey {
            expr: SortRef::Name("x".into()),
            descending: true,
        }];
        let a = vec![Value::Int(1), Value::Str("a".into())];
        let b = vec![Value::Int(2), Value::Str("b".into())];
        assert_eq!(
            compare_rows_by_keys(&keys, &columns, &snapshot, &a, &b),
            Ordering::Greater
        );
        // Tied key → canonical full-row tiebreak on y.
        let c = vec![Value::Int(1), Value::Str("b".into())];
        assert_eq!(
            compare_rows_by_keys(&keys, &columns, &snapshot, &a, &c),
            Ordering::Less
        );
        // DESC puts NULL first.
        let n = vec![Value::Null, Value::Str("n".into())];
        assert_eq!(
            compare_rows_by_keys(&keys, &columns, &snapshot, &n, &a),
            Ordering::Less
        );
    }

    #[test]
    fn row_scope_resolves_scalars_and_nulls() {
        let columns = vec!["p".to_string()];
        let snapshot = Snapshot::default();
        let row = vec![Value::Int(7)];
        let scope = RowScope {
            columns: &columns,
            row: &row,
            snapshot: &snapshot,
        };
        // `p > 0` with a scalar column resolves through Bindings::value.
        let expr = Expression::Comparison {
            left: Box::new(Expression::Variable("p".into())),
            op: CmpOp::Gt,
            right: Box::new(Expression::Literal(gradoop_cypher::Literal::Integer(0))),
        };
        assert_eq!(eval_row_expression(&expr, &scope), Some(true));
        // NULL-padded column: comparison unknown, IS NULL true.
        let row = vec![Value::Null];
        let scope = RowScope {
            columns: &columns,
            row: &row,
            snapshot: &snapshot,
        };
        assert_eq!(eval_row_expression(&expr, &scope), None);
        let is_null = Expression::IsNull {
            operand: Box::new(Expression::Variable("p".into())),
            negated: false,
        };
        assert_eq!(eval_row_expression(&is_null, &scope), Some(true));
    }
}
