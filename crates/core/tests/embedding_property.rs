//! Property-based tests of the byte-array embedding layout: every sequence
//! of writes reads back exactly, and merge behaves like concatenation with
//! column skips.

use gradoop_core::{Embedding, Entry};
use gradoop_epgm::PropertyValue;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Write {
    Id(u64),
    Path(Vec<u64>),
}

fn writes() -> impl Strategy<Value = Vec<Write>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u64>().prop_map(Write::Id),
            proptest::collection::vec(any::<u64>(), 0..8).prop_map(Write::Path),
        ],
        0..10,
    )
}

fn properties() -> impl Strategy<Value = Vec<PropertyValue>> {
    proptest::collection::vec(
        prop_oneof![
            Just(PropertyValue::Null),
            any::<i64>().prop_map(PropertyValue::Long),
            "[a-z]{0,12}".prop_map(PropertyValue::String),
        ],
        0..6,
    )
}

fn build(writes: &[Write], props: &[PropertyValue]) -> Embedding {
    let mut embedding = Embedding::new();
    for write in writes {
        match write {
            Write::Id(id) => embedding.push_id(*id),
            Write::Path(ids) => embedding.push_path(ids),
        }
    }
    for value in props {
        embedding.push_property(value);
    }
    embedding
}

fn expected_entry(write: &Write) -> Entry {
    match write {
        Write::Id(id) => Entry::Id(*id),
        Write::Path(ids) => Entry::Path(ids.clone()),
    }
}

proptest! {
    #[test]
    fn writes_read_back_exactly(ws in writes(), props in properties()) {
        let embedding = build(&ws, &props);
        prop_assert_eq!(embedding.columns(), ws.len());
        prop_assert_eq!(embedding.property_count(), props.len());
        for (column, write) in ws.iter().enumerate() {
            prop_assert_eq!(embedding.entry(column), expected_entry(write));
        }
        for (index, value) in props.iter().enumerate() {
            prop_assert_eq!(&embedding.property(index), value);
        }
    }

    #[test]
    fn merge_is_concatenation_with_skips(
        left_writes in writes(),
        left_props in properties(),
        right_writes in writes(),
        right_props in properties(),
        skip_mask in proptest::collection::vec(any::<bool>(), 10),
    ) {
        let left = build(&left_writes, &left_props);
        let right = build(&right_writes, &right_props);
        let skips: Vec<usize> = (0..right_writes.len())
            .filter(|&i| skip_mask[i])
            .collect();
        let merged = left.merge(&right, &skips);

        // Columns: all of left's, then right's unskipped ones in order.
        let mut expected: Vec<Entry> = left_writes.iter().map(expected_entry).collect();
        expected.extend(
            right_writes
                .iter()
                .enumerate()
                .filter(|(i, _)| !skips.contains(i))
                .map(|(_, w)| expected_entry(w)),
        );
        prop_assert_eq!(merged.columns(), expected.len());
        for (column, entry) in expected.iter().enumerate() {
            prop_assert_eq!(&merged.entry(column), entry);
        }

        // Properties: plain concatenation.
        prop_assert_eq!(merged.property_count(), left_props.len() + right_props.len());
        for (index, value) in left_props.iter().chain(right_props.iter()).enumerate() {
            prop_assert_eq!(&merged.property(index), value);
        }
    }

    #[test]
    fn merge_with_empty_right_is_identity(ws in writes(), props in properties()) {
        let embedding = build(&ws, &props);
        let merged = embedding.merge(&Embedding::new(), &[]);
        prop_assert_eq!(merged, embedding);
    }
}
