//! End-to-end observability tests on the paper's Figure 1 sample graph:
//! `PROFILE` must report the actual per-operator cardinalities, `EXPLAIN`
//! must report the join strategies the executor would choose from the
//! estimates, and both must render to round-trippable JSON.

use std::collections::HashMap;
use std::sync::Arc;

use gradoop_core::{
    choose_join_strategy, ship_strategies, CypherEngine, MatchingConfig, Profile, ProfileNode,
    ShipStrategy,
};
use gradoop_dataflow::{CollectingSink, ExecutionConfig, ExecutionEnvironment, JsonValue};
use gradoop_epgm::{properties, Edge, GradoopId, GraphHead, LogicalGraph, Properties, Vertex};

/// The social-network sample of the paper's Figure 1 (simplified): persons
/// Alice, Eve and Bob, a university, three `knows` edges and two `studyAt`
/// edges. Runs on the default (cluster-calibrated) cost model so simulated
/// times are non-trivial.
fn figure1_graph() -> LogicalGraph {
    let env = ExecutionEnvironment::new(ExecutionConfig::with_workers(2));
    let person =
        |id: u64, name: &str| Vertex::new(GradoopId(id), "Person", properties! {"name" => name});
    let knows = |id: u64, s: u64, t: u64| {
        Edge::new(
            GradoopId(id),
            "knows",
            GradoopId(s),
            GradoopId(t),
            Properties::new(),
        )
    };
    LogicalGraph::from_data(
        &env,
        GraphHead::new(GradoopId(100), "Community", Properties::new()),
        vec![
            person(10, "Alice"),
            person(20, "Eve"),
            person(30, "Bob"),
            Vertex::new(
                GradoopId(40),
                "University",
                properties! {"name" => "Uni Leipzig"},
            ),
        ],
        vec![
            knows(5, 10, 20),
            knows(6, 20, 10),
            knows(7, 20, 30),
            Edge::new(
                GradoopId(3),
                "studyAt",
                GradoopId(10),
                GradoopId(40),
                properties! {"classYear" => 2015i64},
            ),
            Edge::new(
                GradoopId(4),
                "studyAt",
                GradoopId(30),
                GradoopId(40),
                properties! {"classYear" => 2016i64},
            ),
        ],
    )
}

fn profile(graph: &LogicalGraph, text: &str) -> Profile {
    CypherEngine::for_graph(graph)
        .profile(
            graph,
            text,
            &HashMap::new(),
            MatchingConfig::cypher_default(),
        )
        .expect("query profiles")
}

fn nodes(root: &ProfileNode) -> Vec<&ProfileNode> {
    fn walk<'a>(node: &'a ProfileNode, out: &mut Vec<&'a ProfileNode>) {
        out.push(node);
        for child in &node.children {
            walk(child, out);
        }
    }
    let mut out = Vec::new();
    walk(root, &mut out);
    out
}

const TWO_HOP: &str = "MATCH (a:Person)-[e1:knows]->(b:Person)-[e2:knows]->(c:Person) RETURN *";

#[test]
fn profile_reports_actual_cardinalities_for_two_hop_query() {
    let graph = figure1_graph();
    let p = profile(&graph, TWO_HOP);

    // The Figure 1 graph has exactly three 2-hop knows-paths under Cypher
    // default morphism (edge isomorphism): 10→20→10, 10→20→30, 20→10→20.
    assert_eq!(p.matches, 3);
    assert_eq!(p.root.rows_out, 3);

    for node in nodes(&p.root) {
        // Every operator carries actual rows-in/rows-out, simulated time
        // and a computed estimate-vs-actual error.
        assert!(node.rows_in > 0, "{} saw no input", node.operator);
        assert!(
            node.simulated_seconds > 0.0,
            "{} has no cost",
            node.operator
        );
        assert!(node.wall_seconds >= 0.0);
        assert!(node.estimate_error >= 1.0, "q-error is clamped to >= 1");
        assert!(node.selectivity >= 0.0);
        // Inner joins consume exactly what their children produced.
        if node.operator.starts_with("JoinEmbeddings") {
            assert_eq!(node.children.len(), 2);
            assert_eq!(
                node.rows_in,
                node.children[0].rows_out + node.children[1].rows_out,
                "{} rows_in mismatch",
                node.operator
            );
            assert!(node.actual_strategy.is_some());
        }
    }
    // The per-operator counts sum to a non-trivial intermediate footprint.
    assert!(p.root.intermediate_rows() > 0);
    assert!(p.simulated_seconds > 0.0);

    // The leaf scans saw the real data: 3 Person vertices out of 4.
    let scans: Vec<_> = nodes(&p.root)
        .into_iter()
        .filter(|n| n.operator.starts_with("ScanVertices"))
        .collect();
    assert!(!scans.is_empty());
    for scan in scans {
        assert_eq!(scan.rows_out, 3, "three Person vertices match");
        assert!(scan.rows_in >= scan.rows_out);
    }
}

#[test]
fn profile_counts_studyat_predicate_match() {
    let graph = figure1_graph();
    let p = profile(
        &graph,
        "MATCH (p:Person)-[s:studyAt]->(u:University) WHERE s.classYear = 2015 RETURN *",
    );
    assert_eq!(p.matches, 1, "only Alice studies at Leipzig since 2015");
    assert_eq!(p.root.rows_out, 1);
}

#[test]
fn profile_records_variable_length_expansion_iterations() {
    let graph = figure1_graph();
    let p = profile(
        &graph,
        "MATCH (a:Person)-[e:knows*1..3]->(b:Person) RETURN *",
    );
    let expand = nodes(&p.root)
        .into_iter()
        .find(|n| n.operator.starts_with("ExpandEmbeddings"))
        .expect("plan contains an expand operator");
    assert!(
        !expand.iterations.is_empty(),
        "per-iteration counters recorded"
    );
    for (index, iteration) in expand.iterations.iter().enumerate() {
        assert_eq!(iteration.iteration, index as u64 + 1);
    }
    let emitted: u64 = expand.iterations.iter().map(|i| i.emitted_rows).sum();
    assert!(emitted > 0, "the expansion found paths");
}

#[test]
fn expansion_ships_candidate_edges_only_in_the_first_iteration() {
    let graph = figure1_graph();
    let p = profile(
        &graph,
        "MATCH (a:Person)-[e:knows*1..3]->(b:Person) RETURN *",
    );
    let expand = nodes(&p.root)
        .into_iter()
        .find(|n| n.operator.starts_with("ExpandEmbeddings"))
        .expect("plan contains an expand operator");
    assert!(
        expand.iterations.len() > 1,
        "upper bound 3 runs several supersteps"
    );
    // The candidate edge relation is loop-invariant: it is partitioned and
    // indexed once before the iteration, so only iteration 1 is charged for
    // shipping it. Later supersteps probe the cached index for free.
    assert!(
        expand.iterations[0].candidate_shuffled_bytes > 0,
        "building the candidate index ships the edge relation once"
    );
    for iteration in &expand.iterations[1..] {
        assert_eq!(
            iteration.candidate_shuffled_bytes, 0,
            "iteration {} re-shipped the loop-invariant candidates",
            iteration.iteration
        );
    }
}

#[test]
fn profile_json_round_trips() {
    let graph = figure1_graph();
    let p = profile(&graph, TWO_HOP);
    let json = p.to_json();
    let parsed = JsonValue::parse(&json).expect("profile JSON parses");
    assert!(
        parsed.semantically_eq(&p.to_json_value()),
        "to_json round-trips"
    );
    assert_eq!(parsed.get("matches").and_then(JsonValue::as_f64), Some(3.0));
}

#[test]
fn explain_reports_strategy_chosen_from_estimates() {
    let graph = figure1_graph();
    let engine = CypherEngine::for_graph(&graph);
    let explain = engine.explain(TWO_HOP).expect("query plans");

    // At least one binary join is predicted, every predicted join carries a
    // per-side ship annotation consistent with its strategy, and when
    // neither input is pre-partitioned on the key the strategy is exactly
    // what choose_join_strategy picks for the children's estimates.
    let strategies = explain.join_strategies();
    assert!(!strategies.is_empty(), "2-hop plan joins embeddings");
    fn check(node: &gradoop_core::ExplainNode) {
        if let Some(strategy) = node.estimated_strategy {
            assert_eq!(node.children.len(), 2);
            let ship = node
                .estimated_ship
                .unwrap_or_else(|| panic!("{} join lacks ship annotation", node.operator));
            // Forward on a repartition-join side means the planner predicts
            // that side is already placed on the key; re-deriving the ship
            // pair from the strategy and those flags must agree.
            let left_partitioned = ship[0] == ShipStrategy::Forward;
            let right_partitioned = ship[1] == ShipStrategy::Forward;
            assert_eq!(
                ship,
                ship_strategies(strategy, left_partitioned, right_partitioned),
                "{} ship annotation inconsistent with its strategy",
                node.operator
            );
            if ship == [ShipStrategy::Shuffle, ShipStrategy::Shuffle] {
                let expected = choose_join_strategy(
                    node.children[0].estimated_cardinality.max(0.0) as usize,
                    node.children[1].estimated_cardinality.max(0.0) as usize,
                );
                assert_eq!(strategy, expected, "{} strategy", node.operator);
            }
        }
        for child in &node.children {
            check(child);
        }
    }
    check(&explain.root);

    // The planner decision log covers both edges of the pattern.
    assert_eq!(explain.planner.rounds.len(), 2);
    assert!(!explain.planner.rounds[0].candidates.is_empty());

    // EXPLAIN JSON round-trips too.
    let parsed = JsonValue::parse(&explain.to_json()).expect("explain JSON parses");
    assert!(parsed.semantically_eq(&explain.to_json_value()));
}

#[test]
fn profile_restores_previously_installed_trace_sink() {
    let graph = figure1_graph();
    let sink = Arc::new(CollectingSink::new());
    graph.env().set_trace_sink(Some(sink.clone()));
    let p = profile(&graph, TWO_HOP);
    assert_eq!(p.matches, 3);
    assert!(
        graph.env().trace_sink().is_some(),
        "profiling restores the caller's sink"
    );
    graph.env().set_trace_sink(None);
}
