//! Golden-file tests for the worst-case-optimal join's EXPLAIN and PROFILE
//! surface: a forced-WCO triangle query must render the committed plan
//! (the `wco intersect` operator with its cardinality estimates) and the
//! committed profile (the `wco: intersected=` counter line). Regenerate
//! with `GRADOOP_UPDATE_GOLDEN=1 cargo test -p gradoop-core --test
//! wco_golden` after deliberate format changes.
//!
//! Wall-clock fields are scrubbed before comparison — everything else in
//! both renderings is deterministic (cost-model simulated times, estimated
//! and actual cardinalities, intersection counters).

use std::collections::HashMap;

use gradoop_core::{CypherEngine, MatchingConfig, PlanMode};
use gradoop_dataflow::ExecutionEnvironment;
use gradoop_epgm::{
    properties, Edge, GradoopId, GraphHead, GraphStatistics, LogicalGraph, Properties, Vertex,
};

const EXPLAIN_GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/testdata/wco_explain_golden.txt"
);
const PROFILE_GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/testdata/wco_profile_golden.txt"
);

const TRIANGLE: &str = "MATCH (a:Person)-[e1:knows]->(b:Person), (b)-[e2:knows]->(c:Person), \
     (c)-[e3:knows]->(a) RETURN *";

/// A directed triangle 1 → 2 → 3 → 1 plus a spoke 1 → 4 the intersection
/// must reject.
fn triangle_graph(env: &ExecutionEnvironment) -> LogicalGraph {
    let vertices = (1..=4)
        .map(|id| Vertex::new(GradoopId(id), "Person", properties! {"vid" => id as i32}))
        .collect();
    let edges = vec![
        Edge::new(
            GradoopId(10),
            "knows",
            GradoopId(1),
            GradoopId(2),
            Properties::new(),
        ),
        Edge::new(
            GradoopId(11),
            "knows",
            GradoopId(2),
            GradoopId(3),
            Properties::new(),
        ),
        Edge::new(
            GradoopId(12),
            "knows",
            GradoopId(3),
            GradoopId(1),
            Properties::new(),
        ),
        Edge::new(
            GradoopId(13),
            "knows",
            GradoopId(1),
            GradoopId(4),
            Properties::new(),
        ),
    ];
    LogicalGraph::from_data(
        env,
        GraphHead::new(GradoopId(100), "triangle", Properties::new()),
        vertices,
        edges,
    )
}

fn wco_engine(graph: &LogicalGraph) -> CypherEngine {
    CypherEngine::with_statistics(GraphStatistics::of(graph)).with_plan_mode(PlanMode::ForceWco)
}

/// Replaces the nondeterministic wall-clock value after `marker` (rendered
/// as `{:.4}s`) with `<scrubbed>`, keeping the rest of the line — the
/// `wco: intersected=` segment follows `t_wall=…s` on the same line.
fn scrub_number_after(line: &str, marker: &str) -> Option<String> {
    let pos = line.find(marker)?;
    let rest = &line[pos + marker.len()..];
    let end = rest.find('s')?;
    Some(format!(
        "{}{marker}<scrubbed>{}",
        &line[..pos],
        &rest[end + 1..]
    ))
}

fn scrub_wall(text: &str) -> String {
    let mut out = String::new();
    for line in text.lines() {
        match scrub_number_after(line, "t_wall=").or_else(|| scrub_number_after(line, "wall: ")) {
            Some(scrubbed) => out.push_str(&scrubbed),
            None => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

fn compare_golden(path: &str, actual: &str, what: &str) {
    if std::env::var_os("GRADOOP_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
        std::fs::write(path, actual).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file exists (regenerate with GRADOOP_UPDATE_GOLDEN=1)");
    assert_eq!(
        actual, golden,
        "{what} drifted from the committed golden file.\nactual:\n{actual}\ngolden:\n{golden}"
    );
}

#[test]
fn forced_wco_explain_matches_the_committed_golden_file() {
    let env = ExecutionEnvironment::with_workers(2);
    let graph = triangle_graph(&env);
    let explain = wco_engine(&graph).explain(TRIANGLE).unwrap();
    let actual = explain.to_text();
    assert!(
        actual.contains("wco intersect"),
        "EXPLAIN lost the intersect operator:\n{actual}"
    );
    compare_golden(EXPLAIN_GOLDEN, &actual, "EXPLAIN");
}

#[test]
fn forced_wco_profile_matches_the_committed_golden_file() {
    let env = ExecutionEnvironment::with_workers(2);
    let graph = triangle_graph(&env);
    let profile = wco_engine(&graph)
        .profile(
            &graph,
            TRIANGLE,
            &HashMap::new(),
            MatchingConfig::cypher_default(),
        )
        .unwrap();
    let actual = scrub_wall(&profile.to_text());
    assert!(
        actual.contains("wco: intersected="),
        "PROFILE lost the intersection counter:\n{actual}"
    );
    compare_golden(PROFILE_GOLDEN, &actual, "PROFILE");
}
