//! Abstract syntax tree of the supported Cypher subset, plus a
//! pretty-printer whose output re-parses to the same AST (used by the
//! property tests).

use crate::predicates::expr::{Expression, Literal};

/// A full query: `MATCH <patterns> [WHERE <expr>] RETURN <items>`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Comma-separated path patterns from all MATCH clauses.
    pub patterns: Vec<PathPattern>,
    /// Filter expression of the WHERE clause.
    pub where_clause: Option<Expression>,
    /// The RETURN clause.
    pub return_clause: ReturnClause,
}

/// One path pattern: a start node and a sequence of (relationship, node)
/// steps, e.g. `(a)-[e]->(b)<-[f]-(c)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PathPattern {
    /// First node of the path.
    pub start: NodePattern,
    /// Relationship/node steps extending the path.
    pub steps: Vec<(RelPattern, NodePattern)>,
}

/// A node pattern `(variable:Label1|Label2 {key: literal, ...})`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodePattern {
    /// Declared variable, if any.
    pub variable: Option<String>,
    /// Label alternatives (`|`-separated); empty means "any label".
    pub labels: Vec<String>,
    /// Inline property equality constraints.
    pub properties: Vec<(String, Literal)>,
}

/// Direction of a relationship pattern relative to its textual order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `-[..]->`
    Outgoing,
    /// `<-[..]-`
    Incoming,
    /// `-[..]-`
    Undirected,
}

/// Bounds of a variable-length path expression `*lower..upper`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathRange {
    /// Minimum number of edges (`*2..` → 2; bare `*` → 1).
    pub lower: usize,
    /// Maximum number of edges (`*..3` → 3; bare `*` → unbounded default).
    pub upper: usize,
}

/// A relationship pattern `-[variable:label1|label2 *1..3 {key: lit}]->`.
#[derive(Debug, Clone, PartialEq)]
pub struct RelPattern {
    /// Declared variable, if any.
    pub variable: Option<String>,
    /// Label alternatives; empty means "any label".
    pub labels: Vec<String>,
    /// Inline property equality constraints.
    pub properties: Vec<(String, Literal)>,
    /// Pattern direction.
    pub direction: Direction,
    /// Variable-length bounds; `None` for a plain 1-hop edge.
    pub range: Option<PathRange>,
}

impl Default for RelPattern {
    fn default() -> Self {
        RelPattern {
            variable: None,
            labels: Vec::new(),
            properties: Vec::new(),
            direction: Direction::Outgoing,
            range: None,
        }
    }
}

/// One item of the RETURN clause.
#[derive(Debug, Clone, PartialEq)]
pub enum ReturnItem {
    /// `RETURN *` — all declared variables.
    All,
    /// `RETURN count(*)`.
    CountStar,
    /// A variable, e.g. `RETURN p1`.
    Variable(String),
    /// A property access, e.g. `RETURN p1.name` (optionally `AS alias`).
    Property {
        /// The variable.
        variable: String,
        /// The property key.
        key: String,
        /// Optional alias.
        alias: Option<String>,
    },
}

/// The RETURN clause.
#[derive(Debug, Clone, PartialEq)]
pub struct ReturnClause {
    /// Returned items, in declaration order.
    pub items: Vec<ReturnItem>,
    /// `RETURN DISTINCT ...` — deduplicate result rows.
    pub distinct: bool,
}

// --- pretty printer ----------------------------------------------------------

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MATCH ")?;
        for (i, pattern) in self.patterns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{pattern}")?;
        }
        if let Some(where_clause) = &self.where_clause {
            write!(f, " WHERE {where_clause}")?;
        }
        write!(f, " RETURN ")?;
        if self.return_clause.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.return_clause.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        Ok(())
    }
}

impl std::fmt::Display for PathPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.start)?;
        for (rel, node) in &self.steps {
            write!(f, "{rel}{node}")?;
        }
        Ok(())
    }
}

fn write_labels_and_properties(
    f: &mut std::fmt::Formatter<'_>,
    labels: &[String],
    properties: &[(String, Literal)],
) -> std::fmt::Result {
    if !labels.is_empty() {
        write!(f, ":{}", labels.join("|"))?;
    }
    if !properties.is_empty() {
        write!(f, " {{")?;
        for (i, (key, value)) in properties.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{key}: {value}")?;
        }
        write!(f, "}}")?;
    }
    Ok(())
}

impl std::fmt::Display for NodePattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        if let Some(variable) = &self.variable {
            write!(f, "{variable}")?;
        }
        write_labels_and_properties(f, &self.labels, &self.properties)?;
        write!(f, ")")
    }
}

impl std::fmt::Display for RelPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.direction == Direction::Incoming {
            write!(f, "<-[")?;
        } else {
            write!(f, "-[")?;
        }
        if let Some(variable) = &self.variable {
            write!(f, "{variable}")?;
        }
        if !self.labels.is_empty() {
            write!(f, ":{}", self.labels.join("|"))?;
        }
        // The range precedes the property map, like in Cypher:
        // `-[e:knows*1..3 {since: 2014}]->`.
        if let Some(range) = &self.range {
            write!(f, "*{}..{}", range.lower, range.upper)?;
        }
        if !self.properties.is_empty() {
            write!(f, " {{")?;
            for (i, (key, value)) in self.properties.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{key}: {value}")?;
            }
            write!(f, "}}")?;
        }
        if self.direction == Direction::Outgoing {
            write!(f, "]->")
        } else {
            write!(f, "]-")
        }
    }
}

impl std::fmt::Display for ReturnItem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReturnItem::All => write!(f, "*"),
            ReturnItem::CountStar => write!(f, "count(*)"),
            ReturnItem::Variable(variable) => write!(f, "{variable}"),
            ReturnItem::Property {
                variable,
                key,
                alias,
            } => {
                write!(f, "{variable}.{key}")?;
                if let Some(alias) = alias {
                    write!(f, " AS {alias}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_a_pattern() {
        let query = Query {
            patterns: vec![PathPattern {
                start: NodePattern {
                    variable: Some("p".into()),
                    labels: vec!["Person".into()],
                    properties: vec![("name".into(), Literal::String("Alice".into()))],
                },
                steps: vec![(
                    RelPattern {
                        variable: Some("e".into()),
                        labels: vec!["knows".into()],
                        range: Some(PathRange { lower: 1, upper: 3 }),
                        ..RelPattern::default()
                    },
                    NodePattern {
                        variable: Some("q".into()),
                        ..NodePattern::default()
                    },
                )],
            }],
            where_clause: None,
            return_clause: ReturnClause {
                items: vec![ReturnItem::All],
                distinct: false,
            },
        };
        assert_eq!(
            query.to_string(),
            "MATCH (p:Person {name: 'Alice'})-[e:knows*1..3]->(q) RETURN *"
        );
    }

    #[test]
    fn incoming_edges_print_reversed_arrow() {
        let rel = RelPattern {
            direction: Direction::Incoming,
            labels: vec!["hasCreator".into()],
            ..RelPattern::default()
        };
        assert_eq!(rel.to_string(), "<-[:hasCreator]-");
    }

    #[test]
    fn undirected_edges_print_no_arrowhead() {
        let rel = RelPattern {
            direction: Direction::Undirected,
            ..RelPattern::default()
        };
        assert_eq!(rel.to_string(), "-[]-");
    }
}
