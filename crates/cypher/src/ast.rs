//! Abstract syntax tree of the supported Cypher subset, plus a
//! pretty-printer whose output re-parses to the same AST (used by the
//! property tests).

use crate::predicates::expr::{Expression, Literal};

/// A full query: `MATCH <patterns> [WHERE <expr>] RETURN <items>`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Comma-separated path patterns from all MATCH clauses.
    pub patterns: Vec<PathPattern>,
    /// Filter expression of the WHERE clause.
    pub where_clause: Option<Expression>,
    /// The RETURN clause.
    pub return_clause: ReturnClause,
}

/// One path pattern: a start node and a sequence of (relationship, node)
/// steps, e.g. `(a)-[e]->(b)<-[f]-(c)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PathPattern {
    /// First node of the path.
    pub start: NodePattern,
    /// Relationship/node steps extending the path.
    pub steps: Vec<(RelPattern, NodePattern)>,
}

/// A value position inside an inline property map: a literal or a `$param`
/// placeholder resolved against the caller's parameter bindings when the
/// query graph is built (same substitution moment as `WHERE` parameters).
#[derive(Debug, Clone, PartialEq)]
pub enum MapValue {
    /// An inline literal, e.g. `{age: 42}`.
    Literal(Literal),
    /// A named parameter, e.g. `{age: $a}`.
    Parameter(String),
}

impl std::fmt::Display for MapValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapValue::Literal(literal) => write!(f, "{literal}"),
            MapValue::Parameter(name) => write!(f, "${name}"),
        }
    }
}

/// A node pattern `(variable:Label1|Label2 {key: literal, ...})`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodePattern {
    /// Declared variable, if any.
    pub variable: Option<String>,
    /// Label alternatives (`|`-separated); empty means "any label".
    pub labels: Vec<String>,
    /// Inline property equality constraints.
    pub properties: Vec<(String, MapValue)>,
}

/// Direction of a relationship pattern relative to its textual order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `-[..]->`
    Outgoing,
    /// `<-[..]-`
    Incoming,
    /// `-[..]-`
    Undirected,
}

/// Bounds of a variable-length path expression `*lower..upper`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathRange {
    /// Minimum number of edges (`*2..` → 2; bare `*` → 1).
    pub lower: usize,
    /// Maximum number of edges (`*..3` → 3; bare `*` → unbounded default).
    pub upper: usize,
    /// The query left the upper bound open (`*`, `*2..`). `upper` then holds
    /// the engine's substituted cap; the executor must verify the cap did
    /// not truncate results and raise a classified error if it would.
    pub open: bool,
}

impl PathRange {
    /// A closed range `*lower..upper`.
    pub fn closed(lower: usize, upper: usize) -> PathRange {
        PathRange {
            lower,
            upper,
            open: false,
        }
    }

    /// An open-ended range (`*`, `*lower..`) capped at `upper`.
    pub fn open(lower: usize, upper: usize) -> PathRange {
        PathRange {
            lower,
            upper,
            open: true,
        }
    }
}

/// A relationship pattern `-[variable:label1|label2 *1..3 {key: lit}]->`.
#[derive(Debug, Clone, PartialEq)]
pub struct RelPattern {
    /// Declared variable, if any.
    pub variable: Option<String>,
    /// Label alternatives; empty means "any label".
    pub labels: Vec<String>,
    /// Inline property equality constraints.
    pub properties: Vec<(String, MapValue)>,
    /// Pattern direction.
    pub direction: Direction,
    /// Variable-length bounds; `None` for a plain 1-hop edge.
    pub range: Option<PathRange>,
}

impl Default for RelPattern {
    fn default() -> Self {
        RelPattern {
            variable: None,
            labels: Vec::new(),
            properties: Vec::new(),
            direction: Direction::Outgoing,
            range: None,
        }
    }
}

/// One item of the RETURN clause.
#[derive(Debug, Clone, PartialEq)]
pub enum ReturnItem {
    /// `RETURN *` — all declared variables.
    All,
    /// `RETURN count(*)`.
    CountStar,
    /// A variable, e.g. `RETURN p1`.
    Variable(String),
    /// A property access, e.g. `RETURN p1.name` (optionally `AS alias`).
    Property {
        /// The variable.
        variable: String,
        /// The property key.
        key: String,
        /// Optional alias.
        alias: Option<String>,
    },
}

/// The RETURN clause.
#[derive(Debug, Clone, PartialEq)]
pub struct ReturnClause {
    /// Returned items, in declaration order.
    pub items: Vec<ReturnItem>,
    /// `RETURN DISTINCT ...` — deduplicate result rows.
    pub distinct: bool,
}

// --- pipeline queries --------------------------------------------------------

/// A multi-clause read query: a sequence of reading stages (`MATCH`,
/// `OPTIONAL MATCH`, `WITH`, `UNWIND`) terminated by a `RETURN` projection.
/// The single-`MATCH` core of the paper is the special case
/// [`Pipeline::as_simple`] recognizes.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    /// Reading stages, in clause order.
    pub stages: Vec<Stage>,
    /// The terminal `RETURN` projection.
    pub ret: Projection,
}

/// One reading stage of a [`Pipeline`].
#[derive(Debug, Clone, PartialEq)]
pub enum Stage {
    /// `MATCH <patterns> [WHERE <expr>]` — joins new bindings onto the
    /// working table; rows without a match are dropped.
    Match(MatchStage),
    /// `OPTIONAL MATCH <patterns> [WHERE <expr>]` — like `Match` but rows
    /// without a match survive with the new columns bound to NULL.
    OptionalMatch(MatchStage),
    /// `WITH <projection>` — a projection/aggregation barrier.
    With(Projection),
    /// `UNWIND <list> AS <alias>` — one output row per list element.
    Unwind(UnwindStage),
}

/// The body of a `MATCH` / `OPTIONAL MATCH` stage. The `WHERE` belongs to
/// the clause: for `OPTIONAL MATCH` it participates in the match decision
/// (a row whose candidates all fail is NULL-padded, not dropped).
#[derive(Debug, Clone, PartialEq)]
pub struct MatchStage {
    /// Comma-separated path patterns of this clause.
    pub patterns: Vec<PathPattern>,
    /// Clause-level filter.
    pub where_clause: Option<Expression>,
}

/// `UNWIND <source> AS <alias>`.
#[derive(Debug, Clone, PartialEq)]
pub struct UnwindStage {
    /// What to unwind.
    pub source: UnwindSource,
    /// The column the elements are bound to.
    pub alias: String,
}

/// The operand of an `UNWIND` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum UnwindSource {
    /// A literal list, e.g. `UNWIND [1, 2, 3] AS x`.
    List(Vec<Literal>),
    /// A bound column holding a list (e.g. produced by `collect`).
    Variable(String),
    /// A list-valued property, e.g. `UNWIND a.tags AS t`.
    Property {
        /// The element variable.
        variable: String,
        /// The property key.
        key: String,
    },
}

/// The projection body shared by `WITH` and `RETURN`:
/// `[DISTINCT] <items> [ORDER BY ...] [SKIP n] [LIMIT n] [WHERE expr]`
/// (the trailing `WHERE` is only legal on `WITH`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Projection {
    /// `*` — carry every bound column through.
    pub star: bool,
    /// Explicit projection items (empty iff `star`).
    pub items: Vec<ProjectionItem>,
    /// Deduplicate output rows.
    pub distinct: bool,
    /// Sort keys, outermost first.
    pub order_by: Vec<SortKey>,
    /// Rows to drop from the front of the ordered output.
    pub skip: Option<usize>,
    /// Maximum rows to keep after `skip`.
    pub limit: Option<usize>,
    /// Post-projection filter (`WITH ... WHERE ...` only).
    pub where_clause: Option<Expression>,
}

/// One projected column.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectionItem {
    /// The projected expression.
    pub expr: ProjectionExpr,
    /// Optional `AS alias`. Mandatory in `WITH` for non-variable items.
    pub alias: Option<String>,
}

impl ProjectionItem {
    /// The output column name: the alias if given, else the rendered
    /// expression (`x`, `a.p`, `count(*)`).
    pub fn name(&self) -> String {
        match &self.alias {
            Some(alias) => alias.clone(),
            None => self.expr.to_string(),
        }
    }
}

/// A projectable expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ProjectionExpr {
    /// A bound column.
    Variable(String),
    /// A property access.
    Property {
        /// The element variable.
        variable: String,
        /// The property key.
        key: String,
    },
    /// An aggregate call. Any aggregate in a projection turns it into a
    /// grouping: the non-aggregate items become the grouping key.
    Aggregate(AggregateCall),
}

/// An aggregate function call, e.g. `count(DISTINCT a.p)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateCall {
    /// Which aggregate.
    pub func: AggFunc,
    /// `DISTINCT` inside the call.
    pub distinct: bool,
    /// The argument; `None` is `count(*)`.
    pub arg: Option<AggArg>,
}

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `count(..)` — non-NULL values (or rows, for `count(*)`).
    Count,
    /// `collect(..)` — non-NULL values into a list.
    Collect,
    /// `sum(..)` — numeric sum; 0 on empty input.
    Sum,
    /// `min(..)` — minimum; NULL on empty input.
    Min,
    /// `max(..)` — maximum; NULL on empty input.
    Max,
    /// `avg(..)` — numeric mean; NULL on empty input.
    Avg,
}

impl AggFunc {
    /// Lower-case Cypher spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Collect => "collect",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// An aggregate argument.
#[derive(Debug, Clone, PartialEq)]
pub enum AggArg {
    /// A bound column.
    Variable(String),
    /// A property access.
    Property {
        /// The element variable.
        variable: String,
        /// The property key.
        key: String,
    },
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// What to sort on.
    pub expr: SortRef,
    /// `DESC` — reverse the order (NULLs first instead of last).
    pub descending: bool,
}

/// A sortable reference: an output column (possibly an alias) or a property
/// of a projected element variable.
#[derive(Debug, Clone, PartialEq)]
pub enum SortRef {
    /// A projected column by name.
    Name(String),
    /// A property access on a projected variable.
    Property {
        /// The element variable.
        variable: String,
        /// The property key.
        key: String,
    },
}

impl Pipeline {
    /// Recognizes pipelines expressible in the single-clause core —
    /// exactly one plain `MATCH` stage and a projection without
    /// ordering/paging/aggregation — so the engine can route them through
    /// the original planner/executor path unchanged.
    pub fn as_simple(&self) -> Option<Query> {
        let [Stage::Match(stage)] = self.stages.as_slice() else {
            return None;
        };
        let p = &self.ret;
        if !p.order_by.is_empty()
            || p.skip.is_some()
            || p.limit.is_some()
            || p.where_clause.is_some()
        {
            return None;
        }
        let items = if p.star {
            if !p.items.is_empty() {
                return None;
            }
            vec![ReturnItem::All]
        } else if let [ProjectionItem {
            expr:
                ProjectionExpr::Aggregate(AggregateCall {
                    func: AggFunc::Count,
                    distinct: false,
                    arg: None,
                }),
            alias: None,
        }] = p.items.as_slice()
        {
            // A bare `count(*)` is the classic hardcoded CountStar path;
            // aliased or grouped counts go through the pipeline executor.
            if p.distinct {
                return None;
            }
            vec![ReturnItem::CountStar]
        } else {
            let mut items = Vec::with_capacity(p.items.len());
            for item in &p.items {
                match &item.expr {
                    ProjectionExpr::Variable(v) => {
                        if item.alias.is_some() {
                            return None;
                        }
                        items.push(ReturnItem::Variable(v.clone()));
                    }
                    ProjectionExpr::Property { variable, key } => {
                        items.push(ReturnItem::Property {
                            variable: variable.clone(),
                            key: key.clone(),
                            alias: item.alias.clone(),
                        });
                    }
                    ProjectionExpr::Aggregate(_) => return None,
                }
            }
            items
        };
        Some(Query {
            patterns: stage.patterns.clone(),
            where_clause: stage.where_clause.clone(),
            return_clause: ReturnClause {
                items,
                distinct: p.distinct,
            },
        })
    }

    /// True when any stage or the final projection contains an aggregate.
    pub fn has_aggregate(&self) -> bool {
        let proj_has = |p: &Projection| {
            p.items
                .iter()
                .any(|i| matches!(i.expr, ProjectionExpr::Aggregate(_)))
        };
        self.stages.iter().any(|s| match s {
            Stage::With(p) => proj_has(p),
            _ => false,
        }) || proj_has(&self.ret)
    }
}

// --- pretty printer ----------------------------------------------------------

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MATCH ")?;
        for (i, pattern) in self.patterns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{pattern}")?;
        }
        if let Some(where_clause) = &self.where_clause {
            write!(f, " WHERE {where_clause}")?;
        }
        write!(f, " RETURN ")?;
        if self.return_clause.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.return_clause.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        Ok(())
    }
}

impl std::fmt::Display for PathPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.start)?;
        for (rel, node) in &self.steps {
            write!(f, "{rel}{node}")?;
        }
        Ok(())
    }
}

fn write_labels_and_properties(
    f: &mut std::fmt::Formatter<'_>,
    labels: &[String],
    properties: &[(String, MapValue)],
) -> std::fmt::Result {
    if !labels.is_empty() {
        write!(f, ":{}", labels.join("|"))?;
    }
    if !properties.is_empty() {
        write!(f, " {{")?;
        for (i, (key, value)) in properties.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{key}: {value}")?;
        }
        write!(f, "}}")?;
    }
    Ok(())
}

impl std::fmt::Display for NodePattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        if let Some(variable) = &self.variable {
            write!(f, "{variable}")?;
        }
        write_labels_and_properties(f, &self.labels, &self.properties)?;
        write!(f, ")")
    }
}

impl std::fmt::Display for RelPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.direction == Direction::Incoming {
            write!(f, "<-[")?;
        } else {
            write!(f, "-[")?;
        }
        if let Some(variable) = &self.variable {
            write!(f, "{variable}")?;
        }
        if !self.labels.is_empty() {
            write!(f, ":{}", self.labels.join("|"))?;
        }
        // The range precedes the property map, like in Cypher:
        // `-[e:knows*1..3 {since: 2014}]->`.
        if let Some(range) = &self.range {
            if range.open {
                write!(f, "*{}..", range.lower)?;
            } else {
                write!(f, "*{}..{}", range.lower, range.upper)?;
            }
        }
        if !self.properties.is_empty() {
            write!(f, " {{")?;
            for (i, (key, value)) in self.properties.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{key}: {value}")?;
            }
            write!(f, "}}")?;
        }
        if self.direction == Direction::Outgoing {
            write!(f, "]->")
        } else {
            write!(f, "]-")
        }
    }
}

impl std::fmt::Display for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for stage in &self.stages {
            write!(f, "{stage} ")?;
        }
        write!(f, "RETURN {}", self.ret)
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stage::Match(m) => write!(f, "MATCH {m}"),
            Stage::OptionalMatch(m) => write!(f, "OPTIONAL MATCH {m}"),
            Stage::With(p) => write!(f, "WITH {p}"),
            Stage::Unwind(u) => write!(f, "{u}"),
        }
    }
}

impl std::fmt::Display for MatchStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, pattern) in self.patterns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{pattern}")?;
        }
        if let Some(where_clause) = &self.where_clause {
            write!(f, " WHERE {where_clause}")?;
        }
        Ok(())
    }
}

impl std::fmt::Display for UnwindStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "UNWIND {} AS {}", self.source, self.alias)
    }
}

impl std::fmt::Display for UnwindSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnwindSource::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            UnwindSource::Variable(v) => write!(f, "{v}"),
            UnwindSource::Property { variable, key } => write!(f, "{variable}.{key}"),
        }
    }
}

impl std::fmt::Display for Projection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        if self.star {
            write!(f, "*")?;
        } else {
            for (i, item) in self.items.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{item}")?;
            }
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, key) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{key}")?;
            }
        }
        if let Some(skip) = self.skip {
            write!(f, " SKIP {skip}")?;
        }
        if let Some(limit) = self.limit {
            write!(f, " LIMIT {limit}")?;
        }
        if let Some(where_clause) = &self.where_clause {
            write!(f, " WHERE {where_clause}")?;
        }
        Ok(())
    }
}

impl std::fmt::Display for ProjectionItem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.expr)?;
        if let Some(alias) = &self.alias {
            write!(f, " AS {alias}")?;
        }
        Ok(())
    }
}

impl std::fmt::Display for ProjectionExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProjectionExpr::Variable(v) => write!(f, "{v}"),
            ProjectionExpr::Property { variable, key } => write!(f, "{variable}.{key}"),
            ProjectionExpr::Aggregate(call) => write!(f, "{call}"),
        }
    }
}

impl std::fmt::Display for AggregateCall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(", self.func.as_str())?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        match &self.arg {
            None => write!(f, "*")?,
            Some(AggArg::Variable(v)) => write!(f, "{v}")?,
            Some(AggArg::Property { variable, key }) => write!(f, "{variable}.{key}")?,
        }
        write!(f, ")")
    }
}

impl std::fmt::Display for SortKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.expr)?;
        if self.descending {
            write!(f, " DESC")?;
        }
        Ok(())
    }
}

impl std::fmt::Display for SortRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SortRef::Name(name) => write!(f, "{name}"),
            SortRef::Property { variable, key } => write!(f, "{variable}.{key}"),
        }
    }
}

impl std::fmt::Display for ReturnItem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReturnItem::All => write!(f, "*"),
            ReturnItem::CountStar => write!(f, "count(*)"),
            ReturnItem::Variable(variable) => write!(f, "{variable}"),
            ReturnItem::Property {
                variable,
                key,
                alias,
            } => {
                write!(f, "{variable}.{key}")?;
                if let Some(alias) = alias {
                    write!(f, " AS {alias}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_a_pattern() {
        let query = Query {
            patterns: vec![PathPattern {
                start: NodePattern {
                    variable: Some("p".into()),
                    labels: vec!["Person".into()],
                    properties: vec![(
                        "name".into(),
                        MapValue::Literal(Literal::String("Alice".into())),
                    )],
                },
                steps: vec![(
                    RelPattern {
                        variable: Some("e".into()),
                        labels: vec!["knows".into()],
                        range: Some(PathRange::closed(1, 3)),
                        ..RelPattern::default()
                    },
                    NodePattern {
                        variable: Some("q".into()),
                        ..NodePattern::default()
                    },
                )],
            }],
            where_clause: None,
            return_clause: ReturnClause {
                items: vec![ReturnItem::All],
                distinct: false,
            },
        };
        assert_eq!(
            query.to_string(),
            "MATCH (p:Person {name: 'Alice'})-[e:knows*1..3]->(q) RETURN *"
        );
    }

    #[test]
    fn incoming_edges_print_reversed_arrow() {
        let rel = RelPattern {
            direction: Direction::Incoming,
            labels: vec!["hasCreator".into()],
            ..RelPattern::default()
        };
        assert_eq!(rel.to_string(), "<-[:hasCreator]-");
    }

    #[test]
    fn undirected_edges_print_no_arrowhead() {
        let rel = RelPattern {
            direction: Direction::Undirected,
            ..RelPattern::default()
        };
        assert_eq!(rel.to_string(), "-[]-");
    }
}
