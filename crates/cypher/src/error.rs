//! Errors of the Cypher front-end.

/// Position in the query text (1-based line/column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Position {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

impl Position {
    /// Start-of-input position.
    pub fn start() -> Self {
        Position { line: 1, column: 1 }
    }
}

impl std::fmt::Display for Position {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Error produced while lexing or parsing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where the problem was detected.
    pub position: Position,
    /// Problem description.
    pub message: String,
}

impl ParseError {
    /// Creates a parse error.
    pub fn new(position: Position, message: impl Into<String>) -> Self {
        ParseError {
            position,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Error produced while turning a parsed query into a query graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryGraphError(pub String);

impl std::fmt::Display for QueryGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid query: {}", self.0)
    }
}

impl std::error::Error for QueryGraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_position() {
        let error = ParseError::new(Position { line: 2, column: 7 }, "unexpected token");
        assert_eq!(error.to_string(), "parse error at 2:7: unexpected token");
    }

    #[test]
    fn query_graph_error_displays_message() {
        assert_eq!(
            QueryGraphError("duplicate edge variable".into()).to_string(),
            "invalid query: duplicate edge variable"
        );
    }
}
