//! Hand-written lexer for the Cypher subset.

use crate::error::{ParseError, Position};
use crate::token::{Keyword, Token, TokenKind};

/// Lexes `input` into tokens (terminated by [`TokenKind::Eof`]).
pub fn lex(input: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(input).run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    position: Position,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            chars: input.chars().peekable(),
            position: Position::start(),
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.position.line += 1;
            self.position.column = 1;
        } else {
            self.position.column += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.position, message)
    }

    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        let mut tokens = Vec::new();
        loop {
            while matches!(self.peek(), Some(c) if c.is_whitespace()) {
                self.bump();
            }
            // `//` line comments.
            if self.peek() == Some('/') {
                let position = self.position;
                self.bump();
                if self.peek() == Some('/') {
                    while !matches!(self.peek(), None | Some('\n')) {
                        self.bump();
                    }
                    continue;
                }
                return Err(ParseError::new(position, "unexpected `/`"));
            }
            let position = self.position;
            let Some(c) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    position,
                });
                return Ok(tokens);
            };
            let kind = match c {
                '(' => self.single(TokenKind::LParen),
                ')' => self.single(TokenKind::RParen),
                '[' => self.single(TokenKind::LBracket),
                ']' => self.single(TokenKind::RBracket),
                '{' => self.single(TokenKind::LBrace),
                '}' => self.single(TokenKind::RBrace),
                ':' => self.single(TokenKind::Colon),
                ',' => self.single(TokenKind::Comma),
                '|' => self.single(TokenKind::Pipe),
                '-' => self.single(TokenKind::Minus),
                '*' => self.single(TokenKind::Star),
                '=' => self.single(TokenKind::Eq),
                '.' => {
                    self.bump();
                    match self.peek() {
                        Some('.') => {
                            self.bump();
                            TokenKind::DotDot
                        }
                        // Leading-dot float: `.5` lexes like `0.5` (the
                        // shape normalizer already treats them alike).
                        Some(c) if c.is_ascii_digit() => self.fraction()?,
                        _ => TokenKind::Dot,
                    }
                }
                '<' => {
                    self.bump();
                    match self.peek() {
                        Some('>') => {
                            self.bump();
                            TokenKind::Neq
                        }
                        Some('=') => {
                            self.bump();
                            TokenKind::Lte
                        }
                        _ => TokenKind::Lt,
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::Gte
                    } else {
                        TokenKind::Gt
                    }
                }
                '\'' | '"' => self.string()?,
                '$' => {
                    self.bump();
                    let name = self.ident_text();
                    if name.is_empty() {
                        return Err(self.error("expected parameter name after `$`"));
                    }
                    TokenKind::Parameter(name)
                }
                c if c.is_ascii_digit() => self.number()?,
                c if c.is_alphabetic() || c == '_' => {
                    let text = self.ident_text();
                    match Keyword::from_ident(&text) {
                        Some(keyword) => TokenKind::Keyword(keyword),
                        None => TokenKind::Ident(text),
                    }
                }
                '`' => {
                    // Backtick-quoted identifier.
                    self.bump();
                    let mut text = String::new();
                    loop {
                        match self.bump() {
                            Some('`') => break,
                            Some(c) => text.push(c),
                            None => return Err(self.error("unterminated `` ` `` identifier")),
                        }
                    }
                    TokenKind::Ident(text)
                }
                other => return Err(self.error(format!("unexpected character {other:?}"))),
            };
            tokens.push(Token { kind, position });
        }
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.bump();
        kind
    }

    fn ident_text(&mut self) -> String {
        let mut text = String::new();
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
            text.push(self.bump().expect("peeked"));
        }
        text
    }

    fn string(&mut self) -> Result<TokenKind, ParseError> {
        let quote = self.bump().expect("peeked quote");
        let mut text = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string literal")),
                Some('\\') => match self.bump() {
                    Some('n') => text.push('\n'),
                    Some('t') => text.push('\t'),
                    Some(c) => text.push(c),
                    None => return Err(self.error("unterminated escape sequence")),
                },
                Some(c) if c == quote => break,
                Some(c) => text.push(c),
            }
        }
        Ok(TokenKind::String(text))
    }

    fn number(&mut self) -> Result<TokenKind, ParseError> {
        let mut text = String::new();
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            text.push(self.bump().expect("peeked"));
        }
        // A `.` only continues the number if a digit follows — `1..3` must
        // lex as Integer DotDot Integer.
        let mut is_float = false;
        if self.peek() == Some('.') {
            let mut lookahead = self.chars.clone();
            lookahead.next();
            if matches!(lookahead.peek(), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                text.push(self.bump().expect("dot"));
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    text.push(self.bump().expect("peeked"));
                }
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            is_float = true;
            self.exponent(&mut text);
        }
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|e| self.error(format!("invalid float literal: {e}")))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Integer)
                .map_err(|e| self.error(format!("invalid integer literal: {e}")))
        }
    }

    /// Continues a float after a consumed leading dot: `.5`, `.5e-3`.
    fn fraction(&mut self) -> Result<TokenKind, ParseError> {
        let mut text = String::from("0.");
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            text.push(self.bump().expect("peeked"));
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            self.exponent(&mut text);
        }
        text.parse::<f64>()
            .map(TokenKind::Float)
            .map_err(|e| self.error(format!("invalid float literal: {e}")))
    }

    /// Consumes an exponent suffix (`e9`, `E+10`, `e-3`) onto `text`.
    fn exponent(&mut self, text: &mut String) {
        text.push(self.bump().expect("e"));
        if matches!(self.peek(), Some('+' | '-')) {
            text.push(self.bump().expect("sign"));
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            text.push(self.bump().expect("peeked"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input)
            .expect("lex")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_pattern_punctuation() {
        assert_eq!(
            kinds("(p:Person)-[e:knows*1..3]->(q)"),
            vec![
                TokenKind::LParen,
                TokenKind::Ident("p".into()),
                TokenKind::Colon,
                TokenKind::Ident("Person".into()),
                TokenKind::RParen,
                TokenKind::Minus,
                TokenKind::LBracket,
                TokenKind::Ident("e".into()),
                TokenKind::Colon,
                TokenKind::Ident("knows".into()),
                TokenKind::Star,
                TokenKind::Integer(1),
                TokenKind::DotDot,
                TokenKind::Integer(3),
                TokenKind::RBracket,
                TokenKind::Minus,
                TokenKind::Gt,
                TokenKind::LParen,
                TokenKind::Ident("q".into()),
                TokenKind::RParen,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_leading_dot_floats() {
        assert_eq!(
            kinds(".5 .25e2 a.b ..."),
            vec![
                TokenKind::Float(0.5),
                TokenKind::Float(25.0),
                TokenKind::Ident("a".into()),
                TokenKind::Dot,
                TokenKind::Ident("b".into()),
                TokenKind::DotDot,
                TokenKind::Dot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_comparison_operators() {
        assert_eq!(
            kinds("a <> b <= c >= d < e > f = g"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Neq,
                TokenKind::Ident("b".into()),
                TokenKind::Lte,
                TokenKind::Ident("c".into()),
                TokenKind::Gte,
                TokenKind::Ident("d".into()),
                TokenKind::Lt,
                TokenKind::Ident("e".into()),
                TokenKind::Gt,
                TokenKind::Ident("f".into()),
                TokenKind::Eq,
                TokenKind::Ident("g".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_string_literals_with_escapes() {
        assert_eq!(
            kinds(r#"'Uni Leipzig' "it\'s" 'a\nb'"#),
            vec![
                TokenKind::String("Uni Leipzig".into()),
                TokenKind::String("it's".into()),
                TokenKind::String("a\nb".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("2014 3.5 1e3 2.5e-2"),
            vec![
                TokenKind::Integer(2014),
                TokenKind::Float(3.5),
                TokenKind::Float(1000.0),
                TokenKind::Float(0.025),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn integer_range_does_not_lex_as_float() {
        assert_eq!(
            kinds("*0..10"),
            vec![
                TokenKind::Star,
                TokenKind::Integer(0),
                TokenKind::DotDot,
                TokenKind::Integer(10),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_keywords_case_insensitively() {
        assert_eq!(
            kinds("MATCH where Return and OR not"),
            vec![
                TokenKind::Keyword(Keyword::Match),
                TokenKind::Keyword(Keyword::Where),
                TokenKind::Keyword(Keyword::Return),
                TokenKind::Keyword(Keyword::And),
                TokenKind::Keyword(Keyword::Or),
                TokenKind::Keyword(Keyword::Not),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_parameters_and_backtick_idents() {
        assert_eq!(
            kinds("$firstName `weird name`"),
            vec![
                TokenKind::Parameter("firstName".into()),
                TokenKind::Ident("weird name".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("MATCH // comment here\nRETURN"),
            vec![
                TokenKind::Keyword(Keyword::Match),
                TokenKind::Keyword(Keyword::Return),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn reports_errors_with_position() {
        let error = lex("MATCH (p) WHERE ^").unwrap_err();
        assert_eq!(error.position.line, 1);
        assert_eq!(error.position.column, 17);
        let error = lex("'open").unwrap_err();
        assert!(error.message.contains("unterminated"));
        assert!(lex("$ ").is_err());
    }

    #[test]
    fn tracks_line_numbers() {
        let tokens = lex("MATCH\n  (p)").unwrap();
        assert_eq!(tokens[1].position.line, 2);
        assert_eq!(tokens[1].position.column, 3);
    }
}
