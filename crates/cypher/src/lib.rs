#![warn(missing_docs)]

//! # gradoop-cypher
//!
//! The Cypher front-end of the Rust reproduction of *"Cypher-based Graph
//! Pattern Matching in Gradoop"* (GRADES'17): lexer, recursive-descent
//! parser, AST, predicate normalization (CNF) with per-variable splitting,
//! and query-graph construction (Definition 2.2).
//!
//! ```
//! use gradoop_cypher::{parse, QueryGraph};
//!
//! let ast = parse(
//!     "MATCH (p1:Person)-[e:knows*1..3]->(p2:Person) \
//!      WHERE p1.gender <> p2.gender RETURN *",
//! )
//! .unwrap();
//! let graph = QueryGraph::from_query(&ast).unwrap();
//! assert_eq!(graph.vertices.len(), 2);
//! assert_eq!(graph.edges[0].range, Some((1, 3)));
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod predicates;
pub mod query_graph;
pub mod token;

pub use ast::{
    AggArg, AggFunc, AggregateCall, Direction, MatchStage, NodePattern, PathPattern, PathRange,
    Pipeline, Projection, ProjectionExpr, ProjectionItem, Query, RelPattern, ReturnItem, SortKey,
    SortRef, Stage, UnwindSource, UnwindStage,
};
pub use error::{ParseError, QueryGraphError};
pub use parser::{parse, parse_pipeline, DEFAULT_MAX_HOPS};
pub use predicates::{
    Atom, Bindings, CmpOp, CnfClause, CnfPredicate, Expression, Literal, Operand,
};
pub use query_graph::{QueryEdge, QueryGraph, QueryVertex};
