//! Recursive-descent parser for the supported Cypher subset.
//!
//! Supported grammar (the pattern-matching core of Cypher used by the
//! paper): one or more `MATCH` clauses with comma-separated path patterns,
//! node/relationship patterns with variables, `|`-alternated label
//! predicates, inline property maps, both edge directions, undirected
//! edges, variable-length path expressions `*l..u`, a `WHERE` clause with
//! comparisons, `AND`/`OR`/`NOT` and parentheses, and a `RETURN` clause
//! (`*`, variables, property accesses, `count(*)`).

use crate::ast::{
    AggArg, AggFunc, AggregateCall, Direction, MapValue, MatchStage, NodePattern, PathPattern,
    PathRange, Pipeline, Projection, ProjectionExpr, ProjectionItem, Query, RelPattern,
    ReturnClause, ReturnItem, SortKey, SortRef, Stage, UnwindSource, UnwindStage,
};
use crate::error::{ParseError, Position};
use crate::lexer::lex;
use crate::predicates::expr::{CmpOp, Expression, Literal};
use crate::token::{Keyword, Token, TokenKind};

/// Upper bound substituted for open-ended variable-length expressions
/// (`*`, `*2..`). Cypher leaves these unbounded; a distributed bulk
/// iteration needs a finite limit, so we cap at 10 hops — the largest bound
/// used by the paper's benchmark queries.
pub const DEFAULT_MAX_HOPS: usize = 10;

/// Parses a query string into an AST.
pub fn parse(input: &str) -> Result<Query, ParseError> {
    let tokens = lex(input)?;
    Parser { tokens, index: 0 }.query()
}

/// Parses a multi-clause read query (`MATCH` / `OPTIONAL MATCH` / `WITH` /
/// `UNWIND` stages followed by `RETURN` with optional `ORDER BY` / `SKIP` /
/// `LIMIT`) into a [`Pipeline`].
pub fn parse_pipeline(input: &str) -> Result<Pipeline, ParseError> {
    let tokens = lex(input)?;
    Parser { tokens, index: 0 }.pipeline()
}

struct Parser {
    tokens: Vec<Token>,
    index: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.index].kind
    }

    fn position(&self) -> Position {
        self.tokens[self.index].position
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.index].kind.clone();
        if self.index + 1 < self.tokens.len() {
            self.index += 1;
        }
        kind
    }

    fn eat(&mut self, expected: &TokenKind) -> bool {
        if self.peek() == expected {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, expected: &TokenKind) -> Result<(), ParseError> {
        if self.eat(expected) {
            Ok(())
        } else {
            Err(self.error(format!("expected {expected}, found {}", self.peek())))
        }
    }

    fn expect_keyword(&mut self, keyword: Keyword) -> Result<(), ParseError> {
        if self.eat(&TokenKind::Keyword(keyword)) {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected keyword `{keyword:?}`, found {}",
                self.peek()
            )))
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.position(), message)
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.bump();
                Ok(name)
            }
            other => Err(self.error(format!("expected {what}, found {other}"))),
        }
    }

    // --- query ---------------------------------------------------------------

    fn query(&mut self) -> Result<Query, ParseError> {
        self.expect_keyword(Keyword::Match)?;
        let mut patterns = vec![self.path_pattern()?];
        loop {
            if self.eat(&TokenKind::Comma) || self.eat(&TokenKind::Keyword(Keyword::Match)) {
                patterns.push(self.path_pattern()?);
            } else {
                break;
            }
        }
        let where_clause = if self.eat(&TokenKind::Keyword(Keyword::Where)) {
            Some(self.expression()?)
        } else {
            None
        };
        self.expect_keyword(Keyword::Return)?;
        let return_clause = self.return_clause()?;
        self.expect(&TokenKind::Eof)?;
        Ok(Query {
            patterns,
            where_clause,
            return_clause,
        })
    }

    // --- patterns ------------------------------------------------------------

    fn path_pattern(&mut self) -> Result<PathPattern, ParseError> {
        let start = self.node_pattern()?;
        let mut steps = Vec::new();
        while matches!(self.peek(), TokenKind::Minus | TokenKind::Lt) {
            let rel = self.rel_pattern()?;
            let node = self.node_pattern()?;
            steps.push((rel, node));
        }
        Ok(PathPattern { start, steps })
    }

    fn node_pattern(&mut self) -> Result<NodePattern, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let variable = match self.peek() {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.bump();
                Some(name)
            }
            _ => None,
        };
        let labels = if self.eat(&TokenKind::Colon) {
            self.label_alternatives()?
        } else {
            Vec::new()
        };
        let properties = if matches!(self.peek(), TokenKind::LBrace) {
            self.property_map()?
        } else {
            Vec::new()
        };
        self.expect(&TokenKind::RParen)?;
        Ok(NodePattern {
            variable,
            labels,
            properties,
        })
    }

    fn label_alternatives(&mut self) -> Result<Vec<String>, ParseError> {
        let mut labels = vec![self.ident("label")?];
        while self.eat(&TokenKind::Pipe) {
            labels.push(self.ident("label")?);
        }
        Ok(labels)
    }

    fn property_map(&mut self) -> Result<Vec<(String, MapValue)>, ParseError> {
        self.expect(&TokenKind::LBrace)?;
        let mut entries = Vec::new();
        if !matches!(self.peek(), TokenKind::RBrace) {
            loop {
                let key = self.ident("property key")?;
                self.expect(&TokenKind::Colon)?;
                // A map value is a literal or a `$param` placeholder; the
                // placeholder is kept in the AST and resolved against the
                // caller's bindings when the query graph is built.
                let value = match self.peek() {
                    TokenKind::Parameter(name) => {
                        let name = name.clone();
                        self.bump();
                        MapValue::Parameter(name)
                    }
                    _ => MapValue::Literal(self.literal()?),
                };
                entries.push((key, value));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(entries)
    }

    fn rel_pattern(&mut self) -> Result<RelPattern, ParseError> {
        let incoming = self.eat(&TokenKind::Lt);
        self.expect(&TokenKind::Minus)?;
        let mut rel = if matches!(self.peek(), TokenKind::LBracket) {
            self.rel_detail()?
        } else {
            RelPattern::default()
        };
        self.expect(&TokenKind::Minus)?;
        let outgoing = self.eat(&TokenKind::Gt);
        rel.direction = match (incoming, outgoing) {
            (true, false) => Direction::Incoming,
            (false, true) => Direction::Outgoing,
            (false, false) => Direction::Undirected,
            (true, true) => {
                return Err(self.error("a relationship cannot point both ways (`<-[..]->`)"))
            }
        };
        Ok(rel)
    }

    fn rel_detail(&mut self) -> Result<RelPattern, ParseError> {
        self.expect(&TokenKind::LBracket)?;
        let variable = match self.peek() {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.bump();
                Some(name)
            }
            _ => None,
        };
        let labels = if self.eat(&TokenKind::Colon) {
            self.label_alternatives()?
        } else {
            Vec::new()
        };
        let range = if self.eat(&TokenKind::Star) {
            Some(self.path_range()?)
        } else {
            None
        };
        let properties = if matches!(self.peek(), TokenKind::LBrace) {
            self.property_map()?
        } else {
            Vec::new()
        };
        self.expect(&TokenKind::RBracket)?;
        Ok(RelPattern {
            variable,
            labels,
            properties,
            direction: Direction::Outgoing, // fixed up by rel_pattern
            range,
        })
    }

    fn path_range(&mut self) -> Result<PathRange, ParseError> {
        // Already consumed `*`. Forms: `*`, `*n`, `*l..`, `*..u`, `*l..u`.
        let lower = match self.peek() {
            TokenKind::Integer(value) => {
                let value = *value;
                if value < 0 {
                    return Err(self.error("path bounds must be non-negative"));
                }
                self.bump();
                Some(value as usize)
            }
            _ => None,
        };
        if self.eat(&TokenKind::DotDot) {
            let upper = match self.peek() {
                TokenKind::Integer(value) => {
                    let value = *value;
                    if value < 0 {
                        return Err(self.error("path bounds must be non-negative"));
                    }
                    self.bump();
                    Some(value as usize)
                }
                _ => None,
            };
            let lower = lower.unwrap_or(1);
            match upper {
                Some(upper) => {
                    if lower > upper {
                        return Err(self.error(format!(
                            "path lower bound {lower} exceeds upper bound {upper}"
                        )));
                    }
                    Ok(PathRange::closed(lower, upper))
                }
                // `*l..` — open-ended; capped at DEFAULT_MAX_HOPS, and the
                // executor errors if the cap would silently truncate.
                None => Ok(PathRange::open(lower, DEFAULT_MAX_HOPS.max(lower))),
            }
        } else {
            match lower {
                // `*n` — exactly n hops.
                Some(n) => Ok(PathRange::closed(n, n)),
                // bare `*` — at least one hop, open-ended.
                None => Ok(PathRange::open(1, DEFAULT_MAX_HOPS)),
            }
        }
    }

    // --- RETURN ----------------------------------------------------------------

    fn return_clause(&mut self) -> Result<ReturnClause, ParseError> {
        let distinct = self.eat(&TokenKind::Keyword(Keyword::Distinct));
        let mut items = Vec::new();
        loop {
            let item = match self.peek().clone() {
                TokenKind::Star => {
                    self.bump();
                    ReturnItem::All
                }
                TokenKind::Keyword(Keyword::Count) => {
                    self.bump();
                    self.expect(&TokenKind::LParen)?;
                    self.expect(&TokenKind::Star)?;
                    self.expect(&TokenKind::RParen)?;
                    ReturnItem::CountStar
                }
                TokenKind::Ident(variable) => {
                    self.bump();
                    if self.eat(&TokenKind::Dot) {
                        let key = self.ident("property key")?;
                        let alias = if self.eat(&TokenKind::Keyword(Keyword::As)) {
                            Some(self.ident("alias")?)
                        } else {
                            None
                        };
                        ReturnItem::Property {
                            variable,
                            key,
                            alias,
                        }
                    } else {
                        ReturnItem::Variable(variable)
                    }
                }
                other => return Err(self.error(format!("expected return item, found {other}"))),
            };
            items.push(item);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(ReturnClause { items, distinct })
    }

    // --- pipeline queries ------------------------------------------------------

    fn pipeline(&mut self) -> Result<Pipeline, ParseError> {
        let mut stages = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Keyword(Keyword::Match) => {
                    self.bump();
                    stages.push(Stage::Match(self.match_stage()?));
                }
                TokenKind::Keyword(Keyword::Optional) => {
                    self.bump();
                    self.expect_keyword(Keyword::Match)?;
                    stages.push(Stage::OptionalMatch(self.match_stage()?));
                }
                TokenKind::Keyword(Keyword::With) => {
                    self.bump();
                    stages.push(Stage::With(self.projection(true)?));
                }
                TokenKind::Keyword(Keyword::Unwind) => {
                    self.bump();
                    stages.push(Stage::Unwind(self.unwind_stage()?));
                }
                _ => break,
            }
        }
        if stages.is_empty() {
            return Err(self.error(format!(
                "expected MATCH, OPTIONAL MATCH, WITH or UNWIND, found {}",
                self.peek()
            )));
        }
        if let Some(Stage::OptionalMatch(_)) = stages.first() {
            return Err(self.error("a query cannot start with OPTIONAL MATCH"));
        }
        self.expect_keyword(Keyword::Return)?;
        let ret = self.projection(false)?;
        self.expect(&TokenKind::Eof)?;
        Ok(Pipeline { stages, ret })
    }

    fn match_stage(&mut self) -> Result<MatchStage, ParseError> {
        // Unlike the single-clause grammar, each MATCH keyword opens its own
        // stage (its own morphism-uniqueness scope); only commas extend it.
        let mut patterns = vec![self.path_pattern()?];
        while self.eat(&TokenKind::Comma) {
            patterns.push(self.path_pattern()?);
        }
        let where_clause = if self.eat(&TokenKind::Keyword(Keyword::Where)) {
            Some(self.expression()?)
        } else {
            None
        };
        Ok(MatchStage {
            patterns,
            where_clause,
        })
    }

    fn unwind_stage(&mut self) -> Result<UnwindStage, ParseError> {
        let source = match self.peek().clone() {
            TokenKind::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if !matches!(self.peek(), TokenKind::RBracket) {
                    loop {
                        items.push(self.literal()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RBracket)?;
                UnwindSource::List(items)
            }
            TokenKind::Ident(variable) => {
                self.bump();
                if self.eat(&TokenKind::Dot) {
                    let key = self.ident("property key")?;
                    UnwindSource::Property { variable, key }
                } else {
                    UnwindSource::Variable(variable)
                }
            }
            other => {
                return Err(self.error(format!(
                    "expected list or variable after UNWIND, found {other}"
                )))
            }
        };
        self.expect_keyword(Keyword::As)?;
        let alias = self.ident("UNWIND alias")?;
        Ok(UnwindStage { source, alias })
    }

    fn projection(&mut self, is_with: bool) -> Result<Projection, ParseError> {
        let clause = if is_with { "WITH" } else { "RETURN" };
        let distinct = self.eat(&TokenKind::Keyword(Keyword::Distinct));
        let mut star = false;
        let mut items = Vec::new();
        if self.eat(&TokenKind::Star) {
            star = true;
        } else {
            loop {
                let item = self.projection_item()?;
                // openCypher requires WITH items that are not bare variables
                // to be aliased so downstream clauses have a column name.
                if is_with
                    && item.alias.is_none()
                    && !matches!(item.expr, ProjectionExpr::Variable(_))
                {
                    return Err(self.error(format!(
                        "{clause} item `{item}` must be aliased (`... AS name`)"
                    )));
                }
                items.push(item);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat(&TokenKind::Keyword(Keyword::Order)) {
            self.expect_keyword(Keyword::By)?;
            loop {
                order_by.push(self.sort_key()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let skip = if self.eat(&TokenKind::Keyword(Keyword::Skip)) {
            Some(self.row_count("SKIP")?)
        } else {
            None
        };
        let limit = if self.eat(&TokenKind::Keyword(Keyword::Limit)) {
            Some(self.row_count("LIMIT")?)
        } else {
            None
        };
        let where_clause = if is_with && self.eat(&TokenKind::Keyword(Keyword::Where)) {
            Some(self.expression()?)
        } else {
            None
        };
        Ok(Projection {
            star,
            items,
            distinct,
            order_by,
            skip,
            limit,
            where_clause,
        })
    }

    fn row_count(&mut self, clause: &str) -> Result<usize, ParseError> {
        match self.peek() {
            TokenKind::Integer(value) => {
                let value = *value;
                if value < 0 {
                    return Err(self.error(format!("{clause} must be non-negative")));
                }
                self.bump();
                Ok(value as usize)
            }
            other => Err(self.error(format!("expected integer after {clause}, found {other}"))),
        }
    }

    fn agg_func(keyword: Keyword) -> Option<AggFunc> {
        match keyword {
            Keyword::Count => Some(AggFunc::Count),
            Keyword::Collect => Some(AggFunc::Collect),
            Keyword::Sum => Some(AggFunc::Sum),
            Keyword::Min => Some(AggFunc::Min),
            Keyword::Max => Some(AggFunc::Max),
            Keyword::Avg => Some(AggFunc::Avg),
            _ => None,
        }
    }

    fn projection_item(&mut self) -> Result<ProjectionItem, ParseError> {
        let expr = match self.peek().clone() {
            TokenKind::Keyword(k) if Self::agg_func(k).is_some() => {
                let func = Self::agg_func(k).expect("guard checked");
                self.bump();
                ProjectionExpr::Aggregate(self.aggregate_call(func)?)
            }
            TokenKind::Ident(variable) => {
                self.bump();
                if self.eat(&TokenKind::Dot) {
                    let key = self.ident("property key")?;
                    ProjectionExpr::Property { variable, key }
                } else {
                    ProjectionExpr::Variable(variable)
                }
            }
            other => return Err(self.error(format!("expected projection item, found {other}"))),
        };
        let alias = if self.eat(&TokenKind::Keyword(Keyword::As)) {
            Some(self.ident("alias")?)
        } else {
            None
        };
        Ok(ProjectionItem { expr, alias })
    }

    fn aggregate_call(&mut self, func: AggFunc) -> Result<AggregateCall, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let distinct = self.eat(&TokenKind::Keyword(Keyword::Distinct));
        let arg = if self.eat(&TokenKind::Star) {
            if func != AggFunc::Count {
                return Err(self.error(format!(
                    "`*` is only valid in count(*), not {}(*)",
                    func.as_str()
                )));
            }
            if distinct {
                return Err(self.error("count(DISTINCT *) is not supported"));
            }
            None
        } else {
            let variable = self.ident("aggregate argument")?;
            if self.eat(&TokenKind::Dot) {
                let key = self.ident("property key")?;
                Some(AggArg::Property { variable, key })
            } else {
                Some(AggArg::Variable(variable))
            }
        };
        self.expect(&TokenKind::RParen)?;
        Ok(AggregateCall {
            func,
            distinct,
            arg,
        })
    }

    fn sort_key(&mut self) -> Result<SortKey, ParseError> {
        let name = self.ident("ORDER BY key")?;
        let expr = if self.eat(&TokenKind::Dot) {
            let key = self.ident("property key")?;
            SortRef::Property {
                variable: name,
                key,
            }
        } else {
            SortRef::Name(name)
        };
        let descending = if self.eat(&TokenKind::Keyword(Keyword::Desc)) {
            true
        } else {
            self.eat(&TokenKind::Keyword(Keyword::Asc));
            false
        };
        Ok(SortKey { expr, descending })
    }

    // --- expressions -------------------------------------------------------------

    fn expression(&mut self) -> Result<Expression, ParseError> {
        self.or_expression()
    }

    fn or_expression(&mut self) -> Result<Expression, ParseError> {
        let mut left = self.and_expression()?;
        while self.eat(&TokenKind::Keyword(Keyword::Or)) {
            let right = self.and_expression()?;
            left = Expression::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expression(&mut self) -> Result<Expression, ParseError> {
        let mut left = self.not_expression()?;
        while self.eat(&TokenKind::Keyword(Keyword::And)) {
            let right = self.not_expression()?;
            left = Expression::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expression(&mut self) -> Result<Expression, ParseError> {
        if self.eat(&TokenKind::Keyword(Keyword::Not)) {
            let inner = self.not_expression()?;
            return Ok(Expression::Not(Box::new(inner)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expression, ParseError> {
        let left = self.primary()?;
        if self.eat(&TokenKind::Keyword(Keyword::Is)) {
            let negated = self.eat(&TokenKind::Keyword(Keyword::Not));
            self.expect_keyword(Keyword::Null)?;
            return Ok(Expression::IsNull {
                operand: Box::new(left),
                negated,
            });
        }
        let op = match self.peek() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Neq => CmpOp::Neq,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Lte => CmpOp::Lte,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Gte => CmpOp::Gte,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.primary()?;
        Ok(Expression::Comparison {
            left: Box::new(left),
            op,
            right: Box::new(right),
        })
    }

    fn primary(&mut self) -> Result<Expression, ParseError> {
        match self.peek().clone() {
            TokenKind::LParen => {
                self.bump();
                let inner = self.expression()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(variable) => {
                self.bump();
                if self.eat(&TokenKind::Dot) {
                    let key = self.ident("property key")?;
                    Ok(Expression::Property { variable, key })
                } else {
                    Ok(Expression::Variable(variable))
                }
            }
            TokenKind::Parameter(name) => {
                self.bump();
                Ok(Expression::Parameter(name))
            }
            _ => self.literal().map(Expression::Literal),
        }
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        let literal = match self.peek().clone() {
            TokenKind::String(value) => Literal::String(value),
            TokenKind::Integer(value) => Literal::Integer(value),
            TokenKind::Float(value) => Literal::Float(value),
            TokenKind::Keyword(Keyword::True) => Literal::Boolean(true),
            TokenKind::Keyword(Keyword::False) => Literal::Boolean(false),
            TokenKind::Keyword(Keyword::Null) => Literal::Null,
            TokenKind::Minus => {
                self.bump();
                return match self.peek().clone() {
                    TokenKind::Integer(value) => {
                        self.bump();
                        Ok(Literal::Integer(-value))
                    }
                    TokenKind::Float(value) => {
                        self.bump();
                        Ok(Literal::Float(-value))
                    }
                    other => Err(self.error(format!("expected number after `-`, found {other}"))),
                };
            }
            other => return Err(self.error(format!("expected literal, found {other}"))),
        };
        self.bump();
        Ok(literal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example_query() {
        let query = parse(
            "MATCH (p1:Person)-[s:studyAt]->(u:University), \
                    (p2:Person)-[:studyAt]->(u), \
                    (p1)-[e:knows*1..3]->(p2) \
             WHERE p1.gender <> p2.gender \
               AND u.name = 'Uni Leipzig' \
               AND s.classYear > 2014 \
             RETURN *",
        )
        .expect("parse");
        assert_eq!(query.patterns.len(), 3);
        let (rel, _) = &query.patterns[2].steps[0];
        assert_eq!(rel.variable.as_deref(), Some("e"));
        assert_eq!(rel.range, Some(PathRange::closed(1, 3)));
        assert!(query.where_clause.is_some());
        assert_eq!(query.return_clause.items, vec![ReturnItem::All]);
    }

    #[test]
    fn parses_label_alternation_and_incoming_edges() {
        let query = parse(
            "MATCH (person:Person)<-[:hasCreator]-(message:Comment|Post) \
             WHERE person.firstName = \"Jun\" \
             RETURN message.creationDate, message.content",
        )
        .expect("parse");
        let (rel, node) = &query.patterns[0].steps[0];
        assert_eq!(rel.direction, Direction::Incoming);
        assert_eq!(node.labels, vec!["Comment".to_string(), "Post".to_string()]);
        assert_eq!(query.return_clause.items.len(), 2);
    }

    #[test]
    fn parses_all_six_benchmark_queries() {
        let queries = [
            // Q1
            "MATCH (person:Person)<-[:hasCreator]-(message:Comment|Post)
             WHERE person.firstName = \"X\"
             RETURN message.creationDate, message.content",
            // Q2
            "MATCH (person:Person)<-[:hasCreator]-(message:Comment|Post),
                   (message)-[:replyOf*0..10]->(post:Post)
             WHERE person.firstName = \"X\"
             RETURN message.creationDate, message.content, post.creationDate, post.content",
            // Q3
            "MATCH (p1:Person)-[:knows]->(p2:Person),
                   (p2)<-[:hasCreator]-(comment:Comment),
                   (comment)-[:replyOf*1..10]->(post:Post),
                   (post)-[:hasCreator]->(p1)
             WHERE p1.firstName = \"X\"
             RETURN p1.firstName, p1.lastName, p2.firstName, p2.lastName, post.content",
            // Q4
            "MATCH (person:Person)-[:isLocatedIn]->(city:City),
                   (person)-[:hasInterest]->(tag:Tag),
                   (person)-[:studyAt]->(uni:University),
                   (person)<-[:hasMember|hasModerator]-(forum:Forum)
             RETURN person.firstName, person.lastName, city.name, tag.name, uni.name, forum.title",
            // Q5
            "MATCH (p1:Person)-[:knows]->(p2:Person),
                   (p2)-[:knows]->(p3:Person),
                   (p1)-[:knows]->(p3)
             RETURN p1.firstName, p1.lastName, p2.firstName, p2.lastName, p3.firstName, p3.lastName",
            // Q6
            "MATCH (p1:Person)-[:knows]->(p2:Person),
                   (p1)-[:hasInterest]->(t1:Tag),
                   (p2)-[:hasInterest]->(t1),
                   (p2)-[:hasInterest]->(t2:Tag)
             RETURN p1.firstName, p1.lastName, t2.name",
        ];
        for (i, text) in queries.iter().enumerate() {
            parse(text).unwrap_or_else(|e| panic!("query {}: {e}", i + 1));
        }
    }

    #[test]
    fn parses_range_forms() {
        let range = |text: &str| {
            parse(&format!("MATCH (a)-[e:knows{text}]->(b) RETURN *"))
                .expect("parse")
                .patterns[0]
                .steps[0]
                .0
                .range
        };
        assert_eq!(range("*1..3"), Some(PathRange::closed(1, 3)));
        assert_eq!(range("*0..10"), Some(PathRange::closed(0, 10)));
        assert_eq!(range("*2"), Some(PathRange::closed(2, 2)));
        assert_eq!(range("*"), Some(PathRange::open(1, DEFAULT_MAX_HOPS)));
        assert_eq!(range("*3.."), Some(PathRange::open(3, DEFAULT_MAX_HOPS)));
        // An open lower bound beyond the default cap raises the cap with it.
        assert_eq!(range("*15.."), Some(PathRange::open(15, 15)));
        assert_eq!(range("*..4"), Some(PathRange::closed(1, 4)));
        assert_eq!(range(""), None);
    }

    #[test]
    fn rejects_inverted_range() {
        let error = parse("MATCH (a)-[e:knows*3..1]->(b) RETURN *").unwrap_err();
        assert!(error.message.contains("exceeds"));
    }

    #[test]
    fn parses_undirected_and_bare_edges() {
        let q = parse("MATCH (a)--(b), (c)-->(d), (e)<--(f) RETURN *").expect("parse");
        assert_eq!(q.patterns[0].steps[0].0.direction, Direction::Undirected);
        assert_eq!(q.patterns[1].steps[0].0.direction, Direction::Outgoing);
        assert_eq!(q.patterns[2].steps[0].0.direction, Direction::Incoming);
    }

    #[test]
    fn rejects_bidirectional_edges() {
        assert!(parse("MATCH (a)<-[e]->(b) RETURN *").is_err());
    }

    #[test]
    fn parses_property_maps() {
        let q = parse("MATCH (p:Person {name: 'Alice', yob: 1984}) RETURN p").expect("parse");
        assert_eq!(
            q.patterns[0].start.properties,
            vec![
                (
                    "name".to_string(),
                    MapValue::Literal(Literal::String("Alice".into()))
                ),
                ("yob".to_string(), MapValue::Literal(Literal::Integer(1984))),
            ]
        );
    }

    #[test]
    fn parses_parameters_in_property_maps() {
        let q = parse("MATCH (p:Person {name: $n, yob: 1984})-[e {since: $s}]->(b) RETURN p")
            .expect("parse");
        assert_eq!(
            q.patterns[0].start.properties,
            vec![
                ("name".to_string(), MapValue::Parameter("n".into())),
                ("yob".to_string(), MapValue::Literal(Literal::Integer(1984))),
            ]
        );
        assert_eq!(
            q.patterns[0].steps[0].0.properties,
            vec![("since".to_string(), MapValue::Parameter("s".into()))]
        );
    }

    #[test]
    fn parses_where_precedence() {
        let q =
            parse("MATCH (a) WHERE a.x = 1 OR a.y = 2 AND NOT a.z = 3 RETURN *").expect("parse");
        // AND binds tighter than OR.
        assert_eq!(
            q.where_clause.unwrap().to_string(),
            "(a.x = 1 OR (a.y = 2 AND (NOT a.z = 3)))"
        );
    }

    #[test]
    fn parses_parameters_and_negative_literals() {
        let q = parse("MATCH (p) WHERE p.name = $firstName AND p.score > -5 RETURN count(*)")
            .expect("parse");
        assert_eq!(q.return_clause.items, vec![ReturnItem::CountStar]);
        assert!(q.where_clause.unwrap().to_string().contains("$firstName"));
    }

    #[test]
    fn parses_multiple_match_clauses() {
        let q = parse("MATCH (a)-[:x]->(b) MATCH (b)-[:y]->(c) RETURN *").expect("parse");
        assert_eq!(q.patterns.len(), 2);
    }

    #[test]
    fn parses_is_null_predicates() {
        let q = parse("MATCH (a) WHERE a.p IS NULL OR a.q IS NOT NULL RETURN *").expect("parse");
        assert_eq!(
            q.where_clause.unwrap().to_string(),
            "(a.p IS NULL OR a.q IS NOT NULL)"
        );
        // IS must be followed by [NOT] NULL.
        assert!(parse("MATCH (a) WHERE a.p IS 5 RETURN *").is_err());
        assert!(parse("MATCH (a) WHERE a.p IS NOT 5 RETURN *").is_err());
    }

    #[test]
    fn parses_return_distinct() {
        let q = parse("MATCH (a)-[e]->(b) RETURN DISTINCT a.name, b.name").expect("parse");
        assert!(q.return_clause.distinct);
        assert_eq!(q.return_clause.items.len(), 2);
        let q = parse("MATCH (a) RETURN a").expect("parse");
        assert!(!q.return_clause.distinct);
        // Pretty-printed DISTINCT survives a reparse.
        let q = parse("MATCH (a) RETURN DISTINCT *").expect("parse");
        assert_eq!(parse(&q.to_string()).expect("reparse"), q);
    }

    #[test]
    fn parses_aliases() {
        let q = parse("MATCH (p) RETURN p.name AS personName").expect("parse");
        assert_eq!(
            q.return_clause.items,
            vec![ReturnItem::Property {
                variable: "p".into(),
                key: "name".into(),
                alias: Some("personName".into()),
            }]
        );
    }

    #[test]
    fn error_messages_point_at_problem() {
        let error = parse("MATCH (p RETURN *").unwrap_err();
        assert!(error.message.contains("expected"));
        assert!(parse("MATCH (p) RETURN").is_err());
        assert!(parse("RETURN *").is_err());
        assert!(parse("MATCH (p) WHERE RETURN *").is_err());
        assert!(parse("MATCH (p)-[e]->(q) WHERE e. RETURN *").is_err());
    }

    #[test]
    fn parses_pipeline_with_all_clauses() {
        let p = parse_pipeline(
            "MATCH (a:Person)-[:knows]->(b:Person) \
             WHERE a.age > 18 \
             OPTIONAL MATCH (b)-[:studyAt]->(u:University) \
             WITH a, u, count(*) AS n \
             UNWIND [1, 2] AS x \
             RETURN a.name, n, x ORDER BY n DESC, x SKIP 1 LIMIT 5",
        )
        .expect("parse");
        assert_eq!(p.stages.len(), 4);
        assert!(matches!(p.stages[0], Stage::Match(_)));
        assert!(matches!(p.stages[1], Stage::OptionalMatch(_)));
        assert!(matches!(p.stages[2], Stage::With(_)));
        assert!(matches!(p.stages[3], Stage::Unwind(_)));
        assert_eq!(p.ret.items.len(), 3);
        assert_eq!(p.ret.order_by.len(), 2);
        assert!(p.ret.order_by[0].descending);
        assert!(!p.ret.order_by[1].descending);
        assert_eq!(p.ret.skip, Some(1));
        assert_eq!(p.ret.limit, Some(5));
    }

    #[test]
    fn parses_aggregates() {
        let p = parse_pipeline(
            "MATCH (a) RETURN count(*), count(DISTINCT a), collect(a.p) AS ps, \
             sum(a.p) AS s, min(a.p) AS lo, max(a.p) AS hi, avg(a.p) AS mean",
        )
        .expect("parse");
        assert_eq!(p.ret.items.len(), 7);
        let call = |i: usize| match &p.ret.items[i].expr {
            ProjectionExpr::Aggregate(c) => c.clone(),
            other => panic!("expected aggregate, got {other:?}"),
        };
        assert_eq!(call(0).func, AggFunc::Count);
        assert_eq!(call(0).arg, None);
        assert!(call(1).distinct);
        assert_eq!(call(1).arg, Some(AggArg::Variable("a".into())));
        assert_eq!(call(2).func, AggFunc::Collect);
        assert_eq!(call(6).func, AggFunc::Avg);
        // Non-count aggregates reject `*`.
        assert!(parse_pipeline("MATCH (a) RETURN sum(*)").is_err());
        assert!(parse_pipeline("MATCH (a) RETURN count(DISTINCT *)").is_err());
    }

    #[test]
    fn with_items_require_aliases() {
        assert!(parse_pipeline("MATCH (a) WITH a RETURN a").is_ok());
        assert!(parse_pipeline("MATCH (a) WITH a.p AS p RETURN p").is_ok());
        assert!(parse_pipeline("MATCH (a) WITH a.p RETURN *").is_err());
        assert!(parse_pipeline("MATCH (a) WITH count(*) RETURN *").is_err());
    }

    #[test]
    fn with_where_comes_after_paging() {
        let p =
            parse_pipeline("MATCH (a) WITH a ORDER BY a.p SKIP 1 LIMIT 3 WHERE a.p > 0 RETURN a")
                .expect("parse");
        let Stage::With(w) = &p.stages[1] else {
            panic!("expected WITH stage");
        };
        assert!(w.where_clause.is_some());
        assert_eq!(w.skip, Some(1));
        assert_eq!(w.limit, Some(3));
        // RETURN has no trailing WHERE.
        assert!(parse_pipeline("MATCH (a) RETURN a WHERE a.p > 0").is_err());
    }

    #[test]
    fn parses_unwind_sources() {
        let p = parse_pipeline("UNWIND [1, 'x', null] AS v RETURN v").expect("parse");
        let Stage::Unwind(u) = &p.stages[0] else {
            panic!("expected UNWIND stage");
        };
        assert_eq!(
            u.source,
            UnwindSource::List(vec![
                Literal::Integer(1),
                Literal::String("x".into()),
                Literal::Null,
            ])
        );
        assert_eq!(u.alias, "v");
        let p = parse_pipeline("MATCH (a) WITH collect(a) AS xs UNWIND xs AS x RETURN x")
            .expect("parse");
        assert!(matches!(
            &p.stages[2],
            Stage::Unwind(UnwindStage {
                source: UnwindSource::Variable(v),
                ..
            }) if v == "xs"
        ));
        assert!(parse_pipeline("UNWIND a.tags AS t RETURN t").is_ok());
        assert!(parse_pipeline("UNWIND 5 AS t RETURN t").is_err());
    }

    #[test]
    fn pipeline_rejects_leading_optional_match() {
        assert!(parse_pipeline("OPTIONAL MATCH (a) RETURN a").is_err());
        assert!(parse_pipeline("RETURN *").is_err());
    }

    #[test]
    fn as_simple_recognizes_classic_queries() {
        let simple = |text: &str| parse_pipeline(text).expect("parse").as_simple();
        let classic = simple("MATCH (a)-[e]->(b) WHERE a.p = 1 RETURN DISTINCT a.p, b").unwrap();
        assert_eq!(
            classic,
            parse("MATCH (a)-[e]->(b) WHERE a.p = 1 RETURN DISTINCT a.p, b").unwrap()
        );
        assert_eq!(
            simple("MATCH (a) RETURN count(*)")
                .unwrap()
                .return_clause
                .items,
            vec![ReturnItem::CountStar]
        );
        assert!(simple("MATCH (a) RETURN a ORDER BY a.p").is_none());
        assert!(simple("MATCH (a) RETURN a LIMIT 2").is_none());
        assert!(simple("MATCH (a) RETURN count(*) AS n").is_none());
        assert!(simple("MATCH (a) OPTIONAL MATCH (a)-[e]->(b) RETURN *").is_none());
        assert!(simple("MATCH (a) MATCH (b) RETURN *").is_none());
        assert!(simple("UNWIND [1] AS x RETURN x").is_none());
    }

    #[test]
    fn pipeline_roundtrips_through_pretty_printer() {
        let texts = [
            "MATCH (a:Person)-[:knows]->(b) WHERE a.p > 1 OPTIONAL MATCH (b)-[:x]->(c) RETURN a, c",
            "MATCH (a) WITH DISTINCT a ORDER BY a.p DESC SKIP 2 LIMIT 9 WHERE a.p > 0 RETURN a",
            "MATCH (a) WITH a, count(*) AS n MATCH (b) RETURN n, b ORDER BY n, b.q DESC LIMIT 3",
            "UNWIND [1, 2.5, 'x', true, null] AS v RETURN v",
            "MATCH (a) RETURN count(DISTINCT a), collect(a.p) AS ps, sum(a.p) AS s",
            "MATCH (a)-[e:x*2..]->(b) RETURN *",
        ];
        for text in texts {
            let first = parse_pipeline(text).expect("first parse");
            let printed = first.to_string();
            let second =
                parse_pipeline(&printed).unwrap_or_else(|e| panic!("reparse {printed:?}: {e}"));
            assert_eq!(first, second, "{printed}");
        }
    }

    #[test]
    fn roundtrips_through_pretty_printer() {
        let texts = [
            "MATCH (p1:Person)-[s:studyAt]->(u:University) WHERE s.classYear > 2014 RETURN p1.name, u.name",
            "MATCH (a:A|B)<-[e:x|y*2..5]-(b) RETURN *",
            "MATCH (p:Person {name: 'Alice'})-[e]->(q) WHERE (NOT p.a = 1) RETURN count(*)",
        ];
        for text in texts {
            let first = parse(text).expect("first parse");
            let printed = first.to_string();
            let second = parse(&printed).unwrap_or_else(|e| panic!("reparse {printed:?}: {e}"));
            assert_eq!(first, second, "{printed}");
        }
    }
}
