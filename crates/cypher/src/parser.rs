//! Recursive-descent parser for the supported Cypher subset.
//!
//! Supported grammar (the pattern-matching core of Cypher used by the
//! paper): one or more `MATCH` clauses with comma-separated path patterns,
//! node/relationship patterns with variables, `|`-alternated label
//! predicates, inline property maps, both edge directions, undirected
//! edges, variable-length path expressions `*l..u`, a `WHERE` clause with
//! comparisons, `AND`/`OR`/`NOT` and parentheses, and a `RETURN` clause
//! (`*`, variables, property accesses, `count(*)`).

use crate::ast::{
    Direction, NodePattern, PathPattern, PathRange, Query, RelPattern, ReturnClause, ReturnItem,
};
use crate::error::{ParseError, Position};
use crate::lexer::lex;
use crate::predicates::expr::{CmpOp, Expression, Literal};
use crate::token::{Keyword, Token, TokenKind};

/// Upper bound substituted for open-ended variable-length expressions
/// (`*`, `*2..`). Cypher leaves these unbounded; a distributed bulk
/// iteration needs a finite limit, so we cap at 10 hops — the largest bound
/// used by the paper's benchmark queries.
pub const DEFAULT_MAX_HOPS: usize = 10;

/// Parses a query string into an AST.
pub fn parse(input: &str) -> Result<Query, ParseError> {
    let tokens = lex(input)?;
    Parser { tokens, index: 0 }.query()
}

struct Parser {
    tokens: Vec<Token>,
    index: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.index].kind
    }

    fn position(&self) -> Position {
        self.tokens[self.index].position
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.index].kind.clone();
        if self.index + 1 < self.tokens.len() {
            self.index += 1;
        }
        kind
    }

    fn eat(&mut self, expected: &TokenKind) -> bool {
        if self.peek() == expected {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, expected: &TokenKind) -> Result<(), ParseError> {
        if self.eat(expected) {
            Ok(())
        } else {
            Err(self.error(format!("expected {expected}, found {}", self.peek())))
        }
    }

    fn expect_keyword(&mut self, keyword: Keyword) -> Result<(), ParseError> {
        if self.eat(&TokenKind::Keyword(keyword)) {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected keyword `{keyword:?}`, found {}",
                self.peek()
            )))
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.position(), message)
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.bump();
                Ok(name)
            }
            other => Err(self.error(format!("expected {what}, found {other}"))),
        }
    }

    // --- query ---------------------------------------------------------------

    fn query(&mut self) -> Result<Query, ParseError> {
        self.expect_keyword(Keyword::Match)?;
        let mut patterns = vec![self.path_pattern()?];
        loop {
            if self.eat(&TokenKind::Comma) || self.eat(&TokenKind::Keyword(Keyword::Match)) {
                patterns.push(self.path_pattern()?);
            } else {
                break;
            }
        }
        let where_clause = if self.eat(&TokenKind::Keyword(Keyword::Where)) {
            Some(self.expression()?)
        } else {
            None
        };
        self.expect_keyword(Keyword::Return)?;
        let return_clause = self.return_clause()?;
        self.expect(&TokenKind::Eof)?;
        Ok(Query {
            patterns,
            where_clause,
            return_clause,
        })
    }

    // --- patterns ------------------------------------------------------------

    fn path_pattern(&mut self) -> Result<PathPattern, ParseError> {
        let start = self.node_pattern()?;
        let mut steps = Vec::new();
        while matches!(self.peek(), TokenKind::Minus | TokenKind::Lt) {
            let rel = self.rel_pattern()?;
            let node = self.node_pattern()?;
            steps.push((rel, node));
        }
        Ok(PathPattern { start, steps })
    }

    fn node_pattern(&mut self) -> Result<NodePattern, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let variable = match self.peek() {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.bump();
                Some(name)
            }
            _ => None,
        };
        let labels = if self.eat(&TokenKind::Colon) {
            self.label_alternatives()?
        } else {
            Vec::new()
        };
        let properties = if matches!(self.peek(), TokenKind::LBrace) {
            self.property_map()?
        } else {
            Vec::new()
        };
        self.expect(&TokenKind::RParen)?;
        Ok(NodePattern {
            variable,
            labels,
            properties,
        })
    }

    fn label_alternatives(&mut self) -> Result<Vec<String>, ParseError> {
        let mut labels = vec![self.ident("label")?];
        while self.eat(&TokenKind::Pipe) {
            labels.push(self.ident("label")?);
        }
        Ok(labels)
    }

    fn property_map(&mut self) -> Result<Vec<(String, Literal)>, ParseError> {
        self.expect(&TokenKind::LBrace)?;
        let mut entries = Vec::new();
        if !matches!(self.peek(), TokenKind::RBrace) {
            loop {
                let key = self.ident("property key")?;
                self.expect(&TokenKind::Colon)?;
                let value = self.literal()?;
                entries.push((key, value));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(entries)
    }

    fn rel_pattern(&mut self) -> Result<RelPattern, ParseError> {
        let incoming = self.eat(&TokenKind::Lt);
        self.expect(&TokenKind::Minus)?;
        let mut rel = if matches!(self.peek(), TokenKind::LBracket) {
            self.rel_detail()?
        } else {
            RelPattern::default()
        };
        self.expect(&TokenKind::Minus)?;
        let outgoing = self.eat(&TokenKind::Gt);
        rel.direction = match (incoming, outgoing) {
            (true, false) => Direction::Incoming,
            (false, true) => Direction::Outgoing,
            (false, false) => Direction::Undirected,
            (true, true) => {
                return Err(self.error("a relationship cannot point both ways (`<-[..]->`)"))
            }
        };
        Ok(rel)
    }

    fn rel_detail(&mut self) -> Result<RelPattern, ParseError> {
        self.expect(&TokenKind::LBracket)?;
        let variable = match self.peek() {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.bump();
                Some(name)
            }
            _ => None,
        };
        let labels = if self.eat(&TokenKind::Colon) {
            self.label_alternatives()?
        } else {
            Vec::new()
        };
        let range = if self.eat(&TokenKind::Star) {
            Some(self.path_range()?)
        } else {
            None
        };
        let properties = if matches!(self.peek(), TokenKind::LBrace) {
            self.property_map()?
        } else {
            Vec::new()
        };
        self.expect(&TokenKind::RBracket)?;
        Ok(RelPattern {
            variable,
            labels,
            properties,
            direction: Direction::Outgoing, // fixed up by rel_pattern
            range,
        })
    }

    fn path_range(&mut self) -> Result<PathRange, ParseError> {
        // Already consumed `*`. Forms: `*`, `*n`, `*l..`, `*..u`, `*l..u`.
        let lower = match self.peek() {
            TokenKind::Integer(value) => {
                let value = *value;
                if value < 0 {
                    return Err(self.error("path bounds must be non-negative"));
                }
                self.bump();
                Some(value as usize)
            }
            _ => None,
        };
        if self.eat(&TokenKind::DotDot) {
            let upper = match self.peek() {
                TokenKind::Integer(value) => {
                    let value = *value;
                    if value < 0 {
                        return Err(self.error("path bounds must be non-negative"));
                    }
                    self.bump();
                    Some(value as usize)
                }
                _ => None,
            };
            let lower = lower.unwrap_or(1);
            let upper = upper.unwrap_or(DEFAULT_MAX_HOPS);
            if lower > upper {
                return Err(self.error(format!(
                    "path lower bound {lower} exceeds upper bound {upper}"
                )));
            }
            Ok(PathRange { lower, upper })
        } else {
            match lower {
                // `*n` — exactly n hops.
                Some(n) => Ok(PathRange { lower: n, upper: n }),
                // bare `*` — at least one hop.
                None => Ok(PathRange {
                    lower: 1,
                    upper: DEFAULT_MAX_HOPS,
                }),
            }
        }
    }

    // --- RETURN ----------------------------------------------------------------

    fn return_clause(&mut self) -> Result<ReturnClause, ParseError> {
        let distinct = self.eat(&TokenKind::Keyword(Keyword::Distinct));
        let mut items = Vec::new();
        loop {
            let item = match self.peek().clone() {
                TokenKind::Star => {
                    self.bump();
                    ReturnItem::All
                }
                TokenKind::Keyword(Keyword::Count) => {
                    self.bump();
                    self.expect(&TokenKind::LParen)?;
                    self.expect(&TokenKind::Star)?;
                    self.expect(&TokenKind::RParen)?;
                    ReturnItem::CountStar
                }
                TokenKind::Ident(variable) => {
                    self.bump();
                    if self.eat(&TokenKind::Dot) {
                        let key = self.ident("property key")?;
                        let alias = if self.eat(&TokenKind::Keyword(Keyword::As)) {
                            Some(self.ident("alias")?)
                        } else {
                            None
                        };
                        ReturnItem::Property {
                            variable,
                            key,
                            alias,
                        }
                    } else {
                        ReturnItem::Variable(variable)
                    }
                }
                other => return Err(self.error(format!("expected return item, found {other}"))),
            };
            items.push(item);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(ReturnClause { items, distinct })
    }

    // --- expressions -------------------------------------------------------------

    fn expression(&mut self) -> Result<Expression, ParseError> {
        self.or_expression()
    }

    fn or_expression(&mut self) -> Result<Expression, ParseError> {
        let mut left = self.and_expression()?;
        while self.eat(&TokenKind::Keyword(Keyword::Or)) {
            let right = self.and_expression()?;
            left = Expression::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expression(&mut self) -> Result<Expression, ParseError> {
        let mut left = self.not_expression()?;
        while self.eat(&TokenKind::Keyword(Keyword::And)) {
            let right = self.not_expression()?;
            left = Expression::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expression(&mut self) -> Result<Expression, ParseError> {
        if self.eat(&TokenKind::Keyword(Keyword::Not)) {
            let inner = self.not_expression()?;
            return Ok(Expression::Not(Box::new(inner)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expression, ParseError> {
        let left = self.primary()?;
        if self.eat(&TokenKind::Keyword(Keyword::Is)) {
            let negated = self.eat(&TokenKind::Keyword(Keyword::Not));
            self.expect_keyword(Keyword::Null)?;
            return Ok(Expression::IsNull {
                operand: Box::new(left),
                negated,
            });
        }
        let op = match self.peek() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Neq => CmpOp::Neq,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Lte => CmpOp::Lte,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Gte => CmpOp::Gte,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.primary()?;
        Ok(Expression::Comparison {
            left: Box::new(left),
            op,
            right: Box::new(right),
        })
    }

    fn primary(&mut self) -> Result<Expression, ParseError> {
        match self.peek().clone() {
            TokenKind::LParen => {
                self.bump();
                let inner = self.expression()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(variable) => {
                self.bump();
                if self.eat(&TokenKind::Dot) {
                    let key = self.ident("property key")?;
                    Ok(Expression::Property { variable, key })
                } else {
                    Ok(Expression::Variable(variable))
                }
            }
            TokenKind::Parameter(name) => {
                self.bump();
                Ok(Expression::Parameter(name))
            }
            _ => self.literal().map(Expression::Literal),
        }
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        let literal = match self.peek().clone() {
            TokenKind::String(value) => Literal::String(value),
            TokenKind::Integer(value) => Literal::Integer(value),
            TokenKind::Float(value) => Literal::Float(value),
            TokenKind::Keyword(Keyword::True) => Literal::Boolean(true),
            TokenKind::Keyword(Keyword::False) => Literal::Boolean(false),
            TokenKind::Keyword(Keyword::Null) => Literal::Null,
            TokenKind::Minus => {
                self.bump();
                return match self.peek().clone() {
                    TokenKind::Integer(value) => {
                        self.bump();
                        Ok(Literal::Integer(-value))
                    }
                    TokenKind::Float(value) => {
                        self.bump();
                        Ok(Literal::Float(-value))
                    }
                    other => Err(self.error(format!("expected number after `-`, found {other}"))),
                };
            }
            other => return Err(self.error(format!("expected literal, found {other}"))),
        };
        self.bump();
        Ok(literal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example_query() {
        let query = parse(
            "MATCH (p1:Person)-[s:studyAt]->(u:University), \
                    (p2:Person)-[:studyAt]->(u), \
                    (p1)-[e:knows*1..3]->(p2) \
             WHERE p1.gender <> p2.gender \
               AND u.name = 'Uni Leipzig' \
               AND s.classYear > 2014 \
             RETURN *",
        )
        .expect("parse");
        assert_eq!(query.patterns.len(), 3);
        let (rel, _) = &query.patterns[2].steps[0];
        assert_eq!(rel.variable.as_deref(), Some("e"));
        assert_eq!(rel.range, Some(PathRange { lower: 1, upper: 3 }));
        assert!(query.where_clause.is_some());
        assert_eq!(query.return_clause.items, vec![ReturnItem::All]);
    }

    #[test]
    fn parses_label_alternation_and_incoming_edges() {
        let query = parse(
            "MATCH (person:Person)<-[:hasCreator]-(message:Comment|Post) \
             WHERE person.firstName = \"Jun\" \
             RETURN message.creationDate, message.content",
        )
        .expect("parse");
        let (rel, node) = &query.patterns[0].steps[0];
        assert_eq!(rel.direction, Direction::Incoming);
        assert_eq!(node.labels, vec!["Comment".to_string(), "Post".to_string()]);
        assert_eq!(query.return_clause.items.len(), 2);
    }

    #[test]
    fn parses_all_six_benchmark_queries() {
        let queries = [
            // Q1
            "MATCH (person:Person)<-[:hasCreator]-(message:Comment|Post)
             WHERE person.firstName = \"X\"
             RETURN message.creationDate, message.content",
            // Q2
            "MATCH (person:Person)<-[:hasCreator]-(message:Comment|Post),
                   (message)-[:replyOf*0..10]->(post:Post)
             WHERE person.firstName = \"X\"
             RETURN message.creationDate, message.content, post.creationDate, post.content",
            // Q3
            "MATCH (p1:Person)-[:knows]->(p2:Person),
                   (p2)<-[:hasCreator]-(comment:Comment),
                   (comment)-[:replyOf*1..10]->(post:Post),
                   (post)-[:hasCreator]->(p1)
             WHERE p1.firstName = \"X\"
             RETURN p1.firstName, p1.lastName, p2.firstName, p2.lastName, post.content",
            // Q4
            "MATCH (person:Person)-[:isLocatedIn]->(city:City),
                   (person)-[:hasInterest]->(tag:Tag),
                   (person)-[:studyAt]->(uni:University),
                   (person)<-[:hasMember|hasModerator]-(forum:Forum)
             RETURN person.firstName, person.lastName, city.name, tag.name, uni.name, forum.title",
            // Q5
            "MATCH (p1:Person)-[:knows]->(p2:Person),
                   (p2)-[:knows]->(p3:Person),
                   (p1)-[:knows]->(p3)
             RETURN p1.firstName, p1.lastName, p2.firstName, p2.lastName, p3.firstName, p3.lastName",
            // Q6
            "MATCH (p1:Person)-[:knows]->(p2:Person),
                   (p1)-[:hasInterest]->(t1:Tag),
                   (p2)-[:hasInterest]->(t1),
                   (p2)-[:hasInterest]->(t2:Tag)
             RETURN p1.firstName, p1.lastName, t2.name",
        ];
        for (i, text) in queries.iter().enumerate() {
            parse(text).unwrap_or_else(|e| panic!("query {}: {e}", i + 1));
        }
    }

    #[test]
    fn parses_range_forms() {
        let range = |text: &str| {
            parse(&format!("MATCH (a)-[e:knows{text}]->(b) RETURN *"))
                .expect("parse")
                .patterns[0]
                .steps[0]
                .0
                .range
        };
        assert_eq!(range("*1..3"), Some(PathRange { lower: 1, upper: 3 }));
        assert_eq!(
            range("*0..10"),
            Some(PathRange {
                lower: 0,
                upper: 10
            })
        );
        assert_eq!(range("*2"), Some(PathRange { lower: 2, upper: 2 }));
        assert_eq!(
            range("*"),
            Some(PathRange {
                lower: 1,
                upper: DEFAULT_MAX_HOPS
            })
        );
        assert_eq!(
            range("*3.."),
            Some(PathRange {
                lower: 3,
                upper: DEFAULT_MAX_HOPS
            })
        );
        assert_eq!(range("*..4"), Some(PathRange { lower: 1, upper: 4 }));
        assert_eq!(range(""), None);
    }

    #[test]
    fn rejects_inverted_range() {
        let error = parse("MATCH (a)-[e:knows*3..1]->(b) RETURN *").unwrap_err();
        assert!(error.message.contains("exceeds"));
    }

    #[test]
    fn parses_undirected_and_bare_edges() {
        let q = parse("MATCH (a)--(b), (c)-->(d), (e)<--(f) RETURN *").expect("parse");
        assert_eq!(q.patterns[0].steps[0].0.direction, Direction::Undirected);
        assert_eq!(q.patterns[1].steps[0].0.direction, Direction::Outgoing);
        assert_eq!(q.patterns[2].steps[0].0.direction, Direction::Incoming);
    }

    #[test]
    fn rejects_bidirectional_edges() {
        assert!(parse("MATCH (a)<-[e]->(b) RETURN *").is_err());
    }

    #[test]
    fn parses_property_maps() {
        let q = parse("MATCH (p:Person {name: 'Alice', yob: 1984}) RETURN p").expect("parse");
        assert_eq!(
            q.patterns[0].start.properties,
            vec![
                ("name".to_string(), Literal::String("Alice".into())),
                ("yob".to_string(), Literal::Integer(1984)),
            ]
        );
    }

    #[test]
    fn parses_where_precedence() {
        let q =
            parse("MATCH (a) WHERE a.x = 1 OR a.y = 2 AND NOT a.z = 3 RETURN *").expect("parse");
        // AND binds tighter than OR.
        assert_eq!(
            q.where_clause.unwrap().to_string(),
            "(a.x = 1 OR (a.y = 2 AND (NOT a.z = 3)))"
        );
    }

    #[test]
    fn parses_parameters_and_negative_literals() {
        let q = parse("MATCH (p) WHERE p.name = $firstName AND p.score > -5 RETURN count(*)")
            .expect("parse");
        assert_eq!(q.return_clause.items, vec![ReturnItem::CountStar]);
        assert!(q.where_clause.unwrap().to_string().contains("$firstName"));
    }

    #[test]
    fn parses_multiple_match_clauses() {
        let q = parse("MATCH (a)-[:x]->(b) MATCH (b)-[:y]->(c) RETURN *").expect("parse");
        assert_eq!(q.patterns.len(), 2);
    }

    #[test]
    fn parses_is_null_predicates() {
        let q = parse("MATCH (a) WHERE a.p IS NULL OR a.q IS NOT NULL RETURN *").expect("parse");
        assert_eq!(
            q.where_clause.unwrap().to_string(),
            "(a.p IS NULL OR a.q IS NOT NULL)"
        );
        // IS must be followed by [NOT] NULL.
        assert!(parse("MATCH (a) WHERE a.p IS 5 RETURN *").is_err());
        assert!(parse("MATCH (a) WHERE a.p IS NOT 5 RETURN *").is_err());
    }

    #[test]
    fn parses_return_distinct() {
        let q = parse("MATCH (a)-[e]->(b) RETURN DISTINCT a.name, b.name").expect("parse");
        assert!(q.return_clause.distinct);
        assert_eq!(q.return_clause.items.len(), 2);
        let q = parse("MATCH (a) RETURN a").expect("parse");
        assert!(!q.return_clause.distinct);
        // Pretty-printed DISTINCT survives a reparse.
        let q = parse("MATCH (a) RETURN DISTINCT *").expect("parse");
        assert_eq!(parse(&q.to_string()).expect("reparse"), q);
    }

    #[test]
    fn parses_aliases() {
        let q = parse("MATCH (p) RETURN p.name AS personName").expect("parse");
        assert_eq!(
            q.return_clause.items,
            vec![ReturnItem::Property {
                variable: "p".into(),
                key: "name".into(),
                alias: Some("personName".into()),
            }]
        );
    }

    #[test]
    fn error_messages_point_at_problem() {
        let error = parse("MATCH (p RETURN *").unwrap_err();
        assert!(error.message.contains("expected"));
        assert!(parse("MATCH (p) RETURN").is_err());
        assert!(parse("RETURN *").is_err());
        assert!(parse("MATCH (p) WHERE RETURN *").is_err());
        assert!(parse("MATCH (p)-[e]->(q) WHERE e. RETURN *").is_err());
    }

    #[test]
    fn roundtrips_through_pretty_printer() {
        let texts = [
            "MATCH (p1:Person)-[s:studyAt]->(u:University) WHERE s.classYear > 2014 RETURN p1.name, u.name",
            "MATCH (a:A|B)<-[e:x|y*2..5]-(b) RETURN *",
            "MATCH (p:Person {name: 'Alice'})-[e]->(q) WHERE (NOT p.a = 1) RETURN count(*)",
        ];
        for text in texts {
            let first = parse(text).expect("first parse");
            let printed = first.to_string();
            let second = parse(&printed).unwrap_or_else(|e| panic!("reparse {printed:?}: {e}"));
            assert_eq!(first, second, "{printed}");
        }
    }
}
